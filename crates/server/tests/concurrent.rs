//! The concurrency suite: M sessions interleaving JOIN/TOPK/STATS
//! against one server must each receive replies byte-identical to a
//! solo session against a single in-process engine — and pipelined
//! request ids must map replies to requests exactly.

use ringjoin_core::{Engine, IndexKind, RcjAlgorithm, RcjPair, RcjStream};
use ringjoin_geom::{pt, Item};
use ringjoin_server::proto::Request;
use ringjoin_server::{Client, Server, ServerConfig};

fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
    ringjoin_testsupport::lcg_points(n, seed, span)
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
        .collect()
}

struct Reference {
    join: Vec<RcjPair>,
    top_k: Vec<RcjPair>,
    k: usize,
}

fn reference(ps: &[Item], qs: &[Item], k: usize) -> Reference {
    let mut engine = Engine::new();
    engine.load("p", ps.to_vec()).index(IndexKind::Rtree);
    engine.load("q", qs.to_vec()).index(IndexKind::Rtree);
    let join = engine.query().join("q", "p").collect().unwrap().pairs;
    let top_k: Vec<RcjPair> = {
        let plan = engine.query().join("q", "p").top_k(k).plan().unwrap();
        let s: RcjStream = plan.stream();
        s.collect()
    };
    Reference { join, top_k, k }
}

/// M concurrent sessions, each interleaving JOIN, TOPK and STATS:
/// every session's every answer is byte-identical to the solo
/// in-process reference, no matter how the sessions interleave.
#[test]
fn concurrent_sessions_match_a_solo_engine_byte_for_byte() {
    const SESSIONS: usize = 4;
    const ROUNDS: usize = 3;
    let ps = items(300, 71, 1800.0);
    let qs = items(300, 73, 1800.0);
    let reference = reference(&ps, &qs, 7);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 3,
        max_sessions: SESSIONS + 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut loader = Client::connect(addr).unwrap();
    loader.load("p", IndexKind::Rtree, &ps).unwrap();
    loader.load("q", IndexKind::Rtree, &qs).unwrap();

    std::thread::scope(|scope| {
        for session in 0..SESSIONS {
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    let out = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
                    assert_eq!(
                        out.pairs, reference.join,
                        "session {session} round {round}: join diverged"
                    );
                    let top = client.top_k("q", "p", reference.k).unwrap();
                    assert_eq!(
                        top.pairs, reference.top_k,
                        "session {session} round {round}: top-k diverged"
                    );
                    let stats = client.stats().unwrap();
                    assert!(stats.contains("shards 3"), "{stats}");
                }
            });
        }
    });

    loader.shutdown().unwrap();
    handle.join().unwrap();
}

/// Pipelining: a batch of heterogeneous requests sent back to back
/// comes home with in-order ids, each reply matching its request —
/// join-shaped replies equal the reference, STATS replies carry fields.
#[test]
fn pipelined_request_ids_map_replies_to_requests() {
    let ps = items(200, 79, 1200.0);
    let qs = items(200, 83, 1200.0);
    let reference = reference(&ps, &qs, 5);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.load("p", IndexKind::Rtree, &ps).unwrap();
    client.load("q", IndexKind::Rtree, &qs).unwrap();

    let join = Request::Join {
        outer: "q".to_string(),
        inner: "p".to_string(),
        algo: RcjAlgorithm::Auto,
        bounds: None,
    };
    let top_k = Request::TopK {
        outer: "q".to_string(),
        inner: "p".to_string(),
        k: reference.k,
    };
    let batch = [
        join.clone(),
        top_k.clone(),
        Request::Stats,
        join.clone(),
        top_k,
        join,
    ];

    // Low-level check: ids come back in send order.
    let mut ids = Vec::new();
    for req in &batch {
        ids.push(client.send(req).unwrap());
    }
    assert_eq!(ids.windows(2).filter(|w| w[1] != w[0] + 1).count(), 0);
    for &id in &ids {
        let (reply_id, outcome) = client.recv().unwrap();
        assert_eq!(reply_id, Some(id), "reply out of order");
        assert!(outcome.is_ok());
    }

    // High-level check: pipeline() returns decoded replies in order,
    // and each decodes to the reference answer for its request shape.
    let replies = client.pipeline(&batch).unwrap();
    assert_eq!(replies.len(), batch.len());
    for (i, reply) in replies.iter().enumerate() {
        match &batch[i] {
            Request::Join { .. } => {
                let out = Client::decode_output(reply).unwrap();
                assert_eq!(out.pairs, reference.join, "pipelined join {i}");
            }
            Request::TopK { .. } => {
                let out = Client::decode_output(reply).unwrap();
                assert_eq!(out.pairs, reference.top_k, "pipelined top-k {i}");
            }
            Request::Stats => {
                assert!(reply.field("shards").is_some());
            }
            _ => unreachable!(),
        }
    }

    // A pipelined batch with a failing request surfaces that error
    // after the batch drains — and the session remains usable.
    let bad = [
        Request::Stats,
        Request::Join {
            outer: "q".to_string(),
            inner: "missing".to_string(),
            algo: RcjAlgorithm::Auto,
            bounds: None,
        },
        Request::Stats,
    ];
    let err = client.pipeline(&bad).unwrap_err();
    assert!(err.to_string().contains("unknown dataset"), "{err}");
    let out = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(out.pairs, reference.join);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Concurrent sessions must also serialize correctly against LOAD: a
/// dataset loaded mid-stream becomes queryable by every session, while
/// queries on the already-loaded datasets keep their byte-identity.
#[test]
fn load_during_concurrent_queries_is_serialized() {
    let ps = items(220, 89, 1400.0);
    let qs = items(220, 97, 1400.0);
    let rs = items(120, 101, 1400.0);
    let reference = reference(&ps, &qs, 6);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut loader = Client::connect(addr).unwrap();
    loader.load("p", IndexKind::Rtree, &ps).unwrap();
    loader.load("q", IndexKind::Rtree, &qs).unwrap();

    std::thread::scope(|scope| {
        let reference = &reference;
        for _ in 0..3 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..4 {
                    let out = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
                    assert_eq!(out.pairs, reference.join);
                }
            });
        }
        let rs = &rs;
        scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.load("r", IndexKind::Quadtree, rs).unwrap();
            // Immediately queryable by the session that loaded it...
            let out = client.self_join("r", RcjAlgorithm::Auto, None).unwrap();
            assert!(out.stats.candidate_pairs > 0);
        });
    });

    // ...and by a session that connects afterwards.
    let mut after = Client::connect(addr).unwrap();
    let stats = after.stats().unwrap();
    assert!(stats.contains("dataset r"), "{stats}");
    assert!(stats.contains("datasets 3"), "{stats}");

    after.shutdown().unwrap();
    handle.join().unwrap();
}
