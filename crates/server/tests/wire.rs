//! End-to-end wire tests: a real `Server` on an ephemeral port, driven
//! by the blocking `Client` over TCP, checked against an in-process
//! single `Engine` — the same round trip CI's server smoke job performs
//! with the CLI.

use ringjoin_core::{Engine, IndexKind, RcjAlgorithm};
use ringjoin_geom::{pt, Item, Rect};
use ringjoin_server::{Client, RingBounds, Server, ServerConfig};

fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
    ringjoin_testsupport::lcg_points(n, seed, span)
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
        .collect()
}

/// Starts a server on an ephemeral port, returns its address and the
/// serve-thread handle (joined after SHUTDOWN).
fn start(shards: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
    })
    .expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

#[test]
fn tcp_round_trip_matches_in_process_engine() {
    let ps = items(240, 41, 1500.0);
    let qs = items(240, 43, 1500.0);
    let mut engine = Engine::new();
    engine.load("p", ps.clone()).index(IndexKind::Rtree);
    engine.load("q", qs.clone()).index(IndexKind::Rtree);
    let local = engine.query().join("q", "p").collect().unwrap();

    let (addr, handle) = start(3);
    let mut client = Client::connect(addr).unwrap();
    client.load("p", IndexKind::Rtree, &ps).unwrap();
    client.load("q", IndexKind::Rtree, &qs).unwrap();

    // JOIN: byte-identical pairs in identical order, stats agree.
    let remote = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(remote.pairs, local.pairs);
    assert_eq!(remote.stats.result_pairs, local.stats.result_pairs);
    assert_eq!(remote.stats.candidate_pairs, local.stats.candidate_pairs);
    assert!(remote.shards_queried >= 1);

    // TOPK: ascending diameter, a prefix-consistent answer.
    let k = 9usize.min(local.pairs.len());
    let top = client.top_k("q", "p", k).unwrap();
    assert_eq!(top.pairs.len(), k);
    for w in top.pairs.windows(2) {
        assert!(w[0].diameter() <= w[1].diameter());
    }

    // Bounds-restricted join: the post-filtered local answer.
    let rb = RingBounds {
        bounds: Rect::new(pt(300.0, 300.0), pt(1000.0, 1000.0)),
        max_diameter: 120.0,
    };
    let restricted = client.join("q", "p", RcjAlgorithm::Auto, Some(rb)).unwrap();
    let expect: Vec<_> = local
        .pairs
        .iter()
        .copied()
        .filter(|p| rb.admits(p))
        .collect();
    assert_eq!(restricted.pairs, expect);

    // EXPLAIN carries the plan and the sharding postscript.
    let text = client
        .explain("q", Some("p"), RcjAlgorithm::Auto, None)
        .unwrap();
    assert!(text.contains("RCJ join"), "{text}");
    assert!(text.contains("sharding: 3 shard(s)"), "{text}");

    // STATS reflects the catalog and counts our requests.
    let stats = client.stats().unwrap();
    assert!(stats.contains("shards 3"), "{stats}");
    assert!(stats.contains("dataset p"), "{stats}");
    assert!(stats.contains("dataset q"), "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn protocol_errors_do_not_kill_the_server() {
    let (addr, handle) = start(2);
    let mut client = Client::connect(addr).unwrap();
    let data = items(60, 47, 400.0);
    client.load("d", IndexKind::Quadtree, &data).unwrap();

    // Duplicate LOAD: protocol error, dataset intact, server alive.
    let err = client.load("d", IndexKind::Rtree, &data).unwrap_err();
    assert!(err.to_string().contains("already loaded"), "{err}");
    // Unknown dataset: protocol error.
    let err = client
        .join("d", "missing", RcjAlgorithm::Auto, None)
        .unwrap_err();
    assert!(err.to_string().contains("unknown dataset"), "{err}");
    // Malformed request straight through the frame layer.
    let reply = client
        .request(&ringjoin_server::proto::Request::Stats)
        .unwrap();
    assert_eq!(reply.field("datasets"), Some("1"));

    // The session still works after all those errors.
    let out = client.self_join("d", RcjAlgorithm::Auto, None).unwrap();
    let mut engine = Engine::new();
    engine.load("d", data).index(IndexKind::Quadtree);
    let local = engine.query().self_join("d").collect().unwrap();
    assert_eq!(out.pairs, local.pairs);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn sessions_can_reconnect() {
    let (addr, handle) = start(1);
    {
        let mut first = Client::connect(addr).unwrap();
        first
            .load("d", IndexKind::Rtree, &items(50, 53, 300.0))
            .unwrap();
        // Dropped without SHUTDOWN: the connection closes, the server
        // keeps running and keeps the loaded data.
    }
    let mut second = Client::connect(addr).unwrap();
    let stats = second.stats().unwrap();
    assert!(stats.contains("dataset d"), "{stats}");
    let out = second.self_join("d", RcjAlgorithm::Auto, None).unwrap();
    assert!(out.stats.result_pairs > 0);
    second.shutdown().unwrap();
    handle.join().unwrap();
}
