//! End-to-end wire tests: a real `Server` on an ephemeral port, driven
//! by the blocking `Client` over TCP, checked against an in-process
//! single `Engine` — the same round trip CI's server smoke job performs
//! with the CLI.

use ringjoin_core::{Engine, IndexKind, RcjAlgorithm};
use ringjoin_geom::{pt, Item, Rect};
use ringjoin_server::{Client, RingBounds, Server, ServerConfig};

fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
    ringjoin_testsupport::lcg_points(n, seed, span)
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
        .collect()
}

/// Starts a server on an ephemeral port, returns its address and the
/// serve-thread handle (joined after SHUTDOWN).
fn start(shards: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        ..ServerConfig::default()
    })
}

fn start_with(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

#[test]
fn tcp_round_trip_matches_in_process_engine() {
    let ps = items(240, 41, 1500.0);
    let qs = items(240, 43, 1500.0);
    let mut engine = Engine::new();
    engine.load("p", ps.clone()).index(IndexKind::Rtree);
    engine.load("q", qs.clone()).index(IndexKind::Rtree);
    let local = engine.query().join("q", "p").collect().unwrap();

    let (addr, handle) = start(3);
    let mut client = Client::connect(addr).unwrap();
    client.load("p", IndexKind::Rtree, &ps).unwrap();
    client.load("q", IndexKind::Rtree, &qs).unwrap();

    // JOIN: byte-identical pairs in identical order, stats agree.
    let remote = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(remote.pairs, local.pairs);
    assert_eq!(remote.stats.result_pairs, local.stats.result_pairs);
    assert_eq!(remote.stats.candidate_pairs, local.stats.candidate_pairs);
    assert!(remote.shards_queried >= 1);

    // TOPK: ascending diameter, a prefix-consistent answer.
    let k = 9usize.min(local.pairs.len());
    let top = client.top_k("q", "p", k).unwrap();
    assert_eq!(top.pairs.len(), k);
    for w in top.pairs.windows(2) {
        assert!(w[0].diameter() <= w[1].diameter());
    }

    // Bounds-restricted join: the post-filtered local answer.
    let rb = RingBounds {
        bounds: Rect::new(pt(300.0, 300.0), pt(1000.0, 1000.0)),
        max_diameter: 120.0,
    };
    let restricted = client.join("q", "p", RcjAlgorithm::Auto, Some(rb)).unwrap();
    let expect: Vec<_> = local
        .pairs
        .iter()
        .copied()
        .filter(|p| rb.admits(p))
        .collect();
    assert_eq!(restricted.pairs, expect);

    // EXPLAIN carries the plan and the sharding postscript.
    let text = client
        .explain("q", Some("p"), RcjAlgorithm::Auto, None)
        .unwrap();
    assert!(text.contains("RCJ join"), "{text}");
    assert!(text.contains("sharding: 3 shard(s)"), "{text}");

    // STATS reflects the catalog and counts our requests.
    let stats = client.stats().unwrap();
    assert!(stats.contains("shards 3"), "{stats}");
    assert!(stats.contains("dataset p"), "{stats}");
    assert!(stats.contains("dataset q"), "{stats}");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn tcp_updates_advance_epochs_and_match_a_mutated_engine() {
    let ps = items(160, 51, 1200.0);
    let qs = items(160, 53, 1200.0);
    // The oracle: a single engine that applies the identical history.
    let mut engine = Engine::new();
    engine.load("p", ps.clone()).index(IndexKind::Rtree);
    engine.load("q", qs.clone()).index(IndexKind::Rtree);
    engine
        .update("p")
        .insert([
            Item::new(700, pt(33.5, 44.25)),
            Item::new(701, pt(1500.0, -10.0)),
        ])
        .delete([5])
        .upsert([Item::new(9, pt(620.125, 333.5))])
        .apply()
        .unwrap();
    let local = engine.query().join("q", "p").collect().unwrap();

    let (addr, handle) = start(3);
    let mut client = Client::connect(addr).unwrap();
    client.load("p", IndexKind::Rtree, &ps).unwrap();
    client.load("q", IndexKind::Rtree, &qs).unwrap();

    // The same history over the wire, one verb per mutation kind.
    let reply = client
        .insert(
            "p",
            &[
                Item::new(700, pt(33.5, 44.25)),
                Item::new(701, pt(1500.0, -10.0)),
            ],
        )
        .unwrap();
    assert_eq!(reply.field("epoch"), Some("1"));
    assert_eq!(reply.field("applied"), Some("2"));
    let reply = client.delete("p", &[5]).unwrap();
    assert_eq!(reply.field("epoch"), Some("2"));
    let reply = client
        .upsert("p", &[Item::new(9, pt(620.125, 333.5))])
        .unwrap();
    assert_eq!(reply.field("epoch"), Some("3"));
    assert_eq!(reply.field("items"), Some("161"));

    let remote = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(remote.pairs, local.pairs);
    assert_eq!(remote.stats, local.stats);

    // Refused batches are protocol errors that move nothing.
    assert!(client.insert("p", &[Item::new(9, pt(0.0, 0.0))]).is_err());
    assert!(client.delete("p", &[999_999]).is_err());
    assert!(client
        .insert("nosuch", &[Item::new(1, pt(0.0, 0.0))])
        .is_err());

    // STATS surfaces the epoch and the lifetime update counter.
    let stats = client.stats().unwrap();
    assert!(stats.contains("updates_total 3"), "{stats}");
    assert!(
        stats
            .lines()
            .any(|l| l.starts_with("dataset p") && l.contains("epoch=3")),
        "{stats}"
    );
    assert!(
        stats
            .lines()
            .any(|l| l.starts_with("dataset q") && l.contains("epoch=0")),
        "{stats}"
    );

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn protocol_errors_do_not_kill_the_server() {
    let (addr, handle) = start(2);
    let mut client = Client::connect(addr).unwrap();
    let data = items(60, 47, 400.0);
    client.load("d", IndexKind::Quadtree, &data).unwrap();

    // Duplicate LOAD: protocol error, dataset intact, server alive.
    let err = client.load("d", IndexKind::Rtree, &data).unwrap_err();
    assert!(err.to_string().contains("already loaded"), "{err}");
    // Unknown dataset: protocol error.
    let err = client
        .join("d", "missing", RcjAlgorithm::Auto, None)
        .unwrap_err();
    assert!(err.to_string().contains("unknown dataset"), "{err}");
    // Malformed request straight through the frame layer.
    let reply = client
        .request(&ringjoin_server::proto::Request::Stats)
        .unwrap();
    assert_eq!(reply.field("datasets"), Some("1"));

    // The session still works after all those errors.
    let out = client.self_join("d", RcjAlgorithm::Auto, None).unwrap();
    let mut engine = Engine::new();
    engine.load("d", data).index(IndexKind::Quadtree);
    let local = engine.query().self_join("d").collect().unwrap();
    assert_eq!(out.pairs, local.pairs);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn sessions_can_reconnect() {
    let (addr, handle) = start(1);
    {
        let mut first = Client::connect(addr).unwrap();
        first
            .load("d", IndexKind::Rtree, &items(50, 53, 300.0))
            .unwrap();
        // Dropped without SHUTDOWN: the connection closes, the server
        // keeps running and keeps the loaded data.
    }
    let mut second = Client::connect(addr).unwrap();
    let stats = second.stats().unwrap();
    assert!(stats.contains("dataset d"), "{stats}");
    let out = second.self_join("d", RcjAlgorithm::Auto, None).unwrap();
    assert!(out.stats.result_pairs > 0);
    second.shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression (lost-shutdown bug): a client that sends `SHUTDOWN` and
/// dies before the ack can be written must still stop the server — the
/// decision is acted on before (and regardless of) ack delivery.
#[test]
fn shutdown_is_honored_even_if_the_ack_is_lost() {
    use ringjoin_server::proto::{write_frame, Request};
    let (addr, handle) = start(1);
    {
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, Request::Shutdown.encode().as_bytes()).unwrap();
        // Kill the connection immediately — never read the ack.
        raw.shutdown(std::net::Shutdown::Both).unwrap();
    }
    // The serve loop must still wind down; join would hang forever on
    // the old behavior (the harness test timeout is the failure mode).
    handle.join().unwrap();
}

/// Regression (no-socket-timeout bug): a server that accepts but never
/// replies must surface as `ServerError::Timeout`, not wedge the client
/// forever.
#[test]
fn client_times_out_instead_of_hanging() {
    use ringjoin_server::ServerError;
    // A bare listener that never answers: connects succeed (backlog),
    // frames go nowhere.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = mute.local_addr().unwrap();
    let mut client =
        Client::connect_with_timeout(addr, Some(std::time::Duration::from_millis(200))).unwrap();
    let err = client.stats().unwrap_err();
    assert!(
        matches!(err, ServerError::Timeout(_)),
        "expected Timeout, got {err:?}"
    );
}

/// Regression (stats NaN / conflated-counter bug): a fresh server
/// reports `pool_hit_rate 0.0000` (never NaN) and counts unparseable
/// frames in `requests_err`, not alongside successful requests.
#[test]
fn fresh_server_stats_are_finite_and_split_ok_from_err() {
    use ringjoin_server::proto::{read_frame, write_frame, Request};
    let (addr, handle) = start(1);
    let mut client = Client::connect(addr).unwrap();
    let reply = client.request(&Request::Stats).unwrap();
    assert_eq!(reply.field("pool_hit_rate"), Some("0.0000"));
    assert_eq!(reply.field("requests_ok"), Some("0"));
    assert_eq!(reply.field("requests_err"), Some("0"));

    // One garbage frame on a raw connection: answered ERR, server alive.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut raw, b"FROBNICATE the server").unwrap();
    let err_payload = read_frame(&mut raw).unwrap().unwrap();
    assert!(err_payload.starts_with("ERR"), "{err_payload}");
    drop(raw);

    let reply = client.request(&Request::Stats).unwrap();
    assert_eq!(reply.field("requests_err"), Some("1"));
    // The earlier STATS was a success; this one isn't counted yet
    // (counters exclude the request reporting them).
    assert_eq!(reply.field("requests_ok"), Some("1"));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Backpressure: with one admission slot and a zero-depth queue, a
/// client whose join lands while another is running gets `ERR busy`
/// plus a retry hint — never an unbounded wait.
#[test]
fn admission_queue_overflow_returns_busy() {
    use ringjoin_server::proto::Request;
    use ringjoin_server::ServerError;
    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        max_inflight: 1,
        queue_depth: 0,
        ..ServerConfig::default()
    });
    let mut loader = Client::connect(addr).unwrap();
    loader
        .load("p", IndexKind::Rtree, &items(400, 61, 1500.0))
        .unwrap();
    loader
        .load("q", IndexKind::Rtree, &items(400, 67, 1500.0))
        .unwrap();

    // The hog pipelines a burst of joins, keeping the only slot busy.
    let mut hog = Client::connect(addr).unwrap();
    let join_req = Request::Join {
        outer: "q".to_string(),
        inner: "p".to_string(),
        algo: RcjAlgorithm::Auto,
        bounds: None,
    };
    const BURST: usize = 24;
    let mut hog_ids = Vec::new();
    for _ in 0..BURST {
        hog_ids.push(hog.send(&join_req).unwrap());
    }

    // The probe keeps asking until it collides with the hog.
    let mut probe = Client::connect(addr).unwrap();
    let mut saw_busy = None;
    for _ in 0..200 {
        match probe.join("q", "p", RcjAlgorithm::Auto, None) {
            Err(ServerError::Busy { retry_after_ms }) => {
                saw_busy = Some(retry_after_ms);
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
            Ok(_) => {}
        }
    }
    let retry_after_ms = saw_busy.expect("probe never saw ERR busy during the hog's burst");
    assert!(retry_after_ms > 0, "busy must carry a retry hint");

    // The hog drains its replies: each is either a result or a busy
    // rejection (the probe may have held the slot) — in-order ids
    // either way, and the session stays usable.
    for id in hog_ids {
        let (reply_id, outcome) = hog.recv().unwrap();
        assert_eq!(reply_id, Some(id));
        match outcome {
            Ok(_) | Err(ServerError::Busy { .. }) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    let after = hog.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert!(!after.pairs.is_empty());

    loader.shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression (admission-barging bug): with one admission slot, a
/// client pipelining joins back-to-back used to re-take the freed slot
/// before any queued waiter could wake — one hot connection could
/// starve everyone else for the length of its burst. FIFO tickets make
/// an interleaved slow client progress after at most one hog request.
#[test]
fn interleaved_client_progresses_despite_a_pipelining_hog() {
    use ringjoin_server::proto::Request;
    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        max_inflight: 1,
        queue_depth: 32,
        ..ServerConfig::default()
    });
    let mut loader = Client::connect(addr).unwrap();
    loader
        .load("p", IndexKind::Rtree, &items(600, 71, 1600.0))
        .unwrap();
    loader
        .load("q", IndexKind::Rtree, &items(600, 73, 1600.0))
        .unwrap();

    // The hog pipelines a long burst on one connection.
    let mut hog = Client::connect(addr).unwrap();
    let join_req = Request::Join {
        outer: "q".to_string(),
        inner: "p".to_string(),
        algo: RcjAlgorithm::Auto,
        bounds: None,
    };
    const BURST: usize = 40;
    let mut hog_ids = Vec::new();
    for _ in 0..BURST {
        hog_ids.push(hog.send(&join_req).unwrap());
    }
    // Let the burst get going so the slow client genuinely interleaves.
    std::thread::sleep(std::time::Duration::from_millis(30));

    // One blocking join from the slow client. FIFO admission means it
    // waits behind at most the hog request ahead of it — not the burst.
    let slow = loader.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert!(!slow.pairs.is_empty());

    // STATS bypasses admission: snapshot the completed-request count
    // the instant the slow join returned. If the hog had starved the
    // slow client to the end of the burst, every one of its joins would
    // already be counted here.
    let reply = loader.request(&Request::Stats).unwrap();
    let done: u64 = reply.field("requests_ok").unwrap().parse().unwrap();
    assert!(
        done < (2 + BURST + 1) as u64,
        "slow client only finished after the hog's whole burst \
         (requests_ok = {done})"
    );

    for id in hog_ids {
        let (reply_id, outcome) = hog.recv().unwrap();
        assert_eq!(reply_id, Some(id));
        outcome.unwrap();
    }
    loader.shutdown().unwrap();
    handle.join().unwrap();
}

/// Disk-native serving end to end: a server with `on_disk` and a tight
/// `buffer_pages` budget answers byte-identically to an in-process
/// resident engine, while its pool faults pages in from the shared
/// page file and reports the residency counters on the wire.
#[test]
fn disk_native_server_round_trip_matches_resident_engine() {
    use ringjoin_server::proto::Request;
    let dir = ringjoin_testsupport::scratch_dir("wire-disk");
    let ps = items(260, 81, 1400.0);
    let qs = items(260, 83, 1400.0);
    let mut engine = Engine::new();
    engine.load("p", ps.clone()).index(IndexKind::Rtree);
    engine.load("q", qs.clone()).index(IndexKind::Rtree);
    let local = engine.query().join("q", "p").collect().unwrap();

    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        on_disk: Some(dir.join("pages.rjp")),
        buffer_pages: 8,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).unwrap();
    client.load("p", IndexKind::Rtree, &ps).unwrap();
    client.load("q", IndexKind::Rtree, &qs).unwrap();
    let remote = client.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(remote.pairs, local.pairs);
    assert_eq!(remote.stats.result_pairs, local.stats.result_pairs);

    let reply = client.request(&Request::Stats).unwrap();
    let faults: u64 = reply.field("pool_faults").unwrap().parse().unwrap();
    assert!(faults > 0, "an 8-frame pool must fault on this dataset");
    let prefetch: u64 = reply.field("pool_prefetch_hits").unwrap().parse().unwrap();
    let hits: u64 = reply.field("pool_hits").unwrap().parse().unwrap();
    assert!(prefetch <= hits, "prefetch hits are a subset of pool hits");

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The connection limit: a server with `max_sessions = 1` turns the
/// second connection away with `ERR busy` instead of accepting without
/// bound.
#[test]
fn session_limit_rejects_with_busy() {
    use ringjoin_server::ServerError;
    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let mut first = Client::connect(addr).unwrap();
    first.stats().unwrap(); // session established and serving

    let mut second = Client::connect(addr).unwrap();
    let err = second.stats().unwrap_err();
    assert!(
        matches!(err, ServerError::Busy { retry_after_ms } if retry_after_ms > 0),
        "expected Busy, got {err:?}"
    );

    // The first session keeps working; once it closes, a new session
    // gets its slot.
    first.stats().unwrap();
    drop(first);
    let mut third = loop {
        let mut candidate = Client::connect(addr).unwrap();
        match candidate.stats() {
            Ok(_) => break candidate,
            Err(ServerError::Busy { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(20))
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    };
    third.shutdown().unwrap();
    handle.join().unwrap();
}

/// `Client::request_with_retry` against a scripted peer: the first
/// attempt is shed with `ERR busy` (id echoed, connection kept open —
/// the admission-queue shape), the retry gets the real answer. One
/// client, one connection, deterministic schedule.
#[test]
fn shed_request_is_retried_on_the_same_connection() {
    use ringjoin_server::proto::{read_frame, write_frame, Reply, Request};
    use std::io::{BufReader, BufWriter};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let id_of = |payload: &str| {
            payload
                .strip_prefix('#')
                .and_then(|rest| rest.split_whitespace().next())
                .and_then(|tok| tok.parse::<u64>().ok())
        };
        // First request: shed it, keep the connection.
        let first = read_frame(&mut reader).unwrap().unwrap();
        let busy = Reply::encode_busy(id_of(&first), 10, "scripted shed");
        write_frame(&mut writer, busy.as_bytes()).unwrap();
        // Retry: answer it for real.
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert!(second.contains("STATS"), "retry resent the request");
        let ok = Reply::encode_ok(id_of(&second), &[("shards", "1".to_string())], "");
        write_frame(&mut writer, ok.as_bytes()).unwrap();
    });

    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .request_with_retry(&ringjoin_server::proto::Request::Stats, 3)
        .expect("shed request must succeed on retry");
    assert_eq!(reply.field("shards"), Some("1"));
    let _ = &Request::Stats; // silence unused-import pedantry if grammar shifts
    fake.join().unwrap();
}

/// `Client::request_with_retry` against a real server over its session
/// limit: the shed closes the connection, so the retry must reconnect.
/// Once the occupying session leaves, the retried request succeeds —
/// the caller never sees the `Busy`.
#[test]
fn session_limit_shed_succeeds_on_retry_after_reconnect() {
    use ringjoin_server::proto::Request;
    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let mut holder = Client::connect(addr).unwrap();
    holder.stats().unwrap(); // the only session slot is now taken

    let vacate = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(250));
        drop(holder);
    });

    let mut probe = Client::connect(addr).unwrap();
    let reply = probe
        .request_with_retry(&Request::Stats, 40)
        .expect("retries must outlast the squatting session");
    assert_eq!(reply.field("shards"), Some("1"));
    vacate.join().unwrap();

    probe.shutdown().unwrap();
    handle.join().unwrap();
}

/// A client spanning a coordinator restart sees at most retryable
/// errors, never a hang: the first request on the dead socket fails
/// fast, every connect during the down window is refused, and
/// `request_with_retry`'s bounded reconnect/backoff rides it out until
/// the restarted — and WAL-recovered — coordinator answers.
#[test]
fn retry_rides_out_a_coordinator_restart_window() {
    use ringjoin_server::proto::Request;
    let dir = std::env::temp_dir().join(format!("ringjoin-wire-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = start_with(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut probe = Client::connect(addr).unwrap();
    probe
        .load("p", IndexKind::Rtree, &items(50, 47, 800.0))
        .unwrap();
    probe.shutdown().unwrap();
    handle.join().unwrap();

    // Restart on the SAME port after a real down window, so the probe's
    // retries first hit a dead socket, then connection-refused, then the
    // recovered server. (std listeners set SO_REUSEADDR on Unix, so the
    // rebind succeeds immediately once the thread wakes.)
    let rebind = dir.clone();
    let restarter = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(600));
        start_with(ServerConfig {
            addr: addr.to_string(),
            shards: 2,
            data_dir: Some(rebind),
            ..ServerConfig::default()
        })
    });

    let reply = probe
        .request_with_retry(&Request::Stats, 12)
        .expect("retries must span the restart window");
    assert_eq!(reply.field("shards"), Some("2"));
    assert_eq!(reply.field("recovered_epochs"), Some("1"));

    let (_, handle2) = restarter.join().unwrap();
    probe.shutdown().unwrap();
    handle2.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
