//! Cross-process shard workers: the worker-side TCP server
//! ([`ShardWorkerServer`]) and the coordinator-side backends that
//! reach it — [`RemoteShard`] for a connection to a running worker,
//! [`SpawnedShard`] for a child process the coordinator launches (and
//! relaunches) itself.
//!
//! The worker speaks the shard grammar of [`proto`](crate::proto)
//! (`HELLO`/`SLOAD`/`SJOIN`/`STOPK`/`SEXPLAIN`/`SHUTDOWN`) over the
//! same length-prefixed frames as the client protocol. Join replies
//! carry **leaf-tagged** pairs: merge keys are global outer-leaf
//! indices, so the coordinator's deterministic merge — and with it
//! byte-identity to a local run — survives the process hop.
//!
//! Failure semantics: any socket-level failure (reset, EOF, deadline)
//! surfaces as [`ShardFault::Gone`] after bounded in-place reconnect
//! attempts, which makes the topology fail the query over to a sibling
//! replica and hand the slot to the supervisor. A worker-reported
//! `ERR` is [`ShardFault::Request`]: the worker is alive, the request
//! is wrong, and no failover would change the answer. Whole-request
//! retries are safe because every worker operation is idempotent —
//! `SLOAD` *replaces* a dataset the worker already holds, and
//! `SUPDATE` carries the epoch it must produce (a worker already at
//! the target epoch answers without re-applying) — which is also what
//! makes the supervisor's replay log idempotent.

use crate::proto::{
    encode_pairs, encode_rect, encode_stats_fields, encode_tagged_pairs, parse_pairs, parse_rect,
    parse_tagged_pairs, read_frame, read_frame_idle, stats_from_reply, write_frame, FrameRead,
    Reply, ShardRequest,
};
use crate::sharded::{
    spawn_worker, ExplainReq, JoinReq, LoadReq, ShardMsg, SpillSpec, TopKReq, UpdateReq,
};
use crate::topology::{
    ExplainCall, JoinCall, LoadCall, LoadOutcome, ShardBackend, ShardFault, TopKCall, UpdateCall,
};
use crate::ServerError;
use ringjoin_core::planner::DatasetSummary;
use ringjoin_core::{RcjPair, RcjStats};
use ringjoin_geom::Rect;
use ringjoin_storage::BufferPool;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Idle-poll granularity of worker sessions (mirrors the coordinator
/// server's tick).
const IDLE_TICK: Duration = Duration::from_millis(100);

/// In-place reconnect attempts of [`RemoteShard`] before a request is
/// declared [`ShardFault::Gone`] and the slot fails over.
const RECONNECT_ATTEMPTS: u32 = 3;

/// Base backoff between reconnect attempts (doubled each retry).
const RECONNECT_BACKOFF: Duration = Duration::from_millis(25);

// ---------------------------------------------------------------------
// Worker side: the shard worker server
// ---------------------------------------------------------------------

/// Everything worker session threads share.
struct WorkerShared {
    /// The worker engine's mailbox (the same worker loop the local
    /// backend uses, behind TCP instead of process-local channels).
    tx: Sender<ShardMsg>,
    /// When set, `SLOAD`s whose cell misses this rectangle are
    /// rejected — the `--shard-of <rect>` placement contract.
    accepts: Option<Rect>,
    /// Fault injection: a killed worker stops replying and drops its
    /// sockets, exactly like a SIGKILLed process as seen from the
    /// coordinator.
    dead: AtomicBool,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// A clonable control handle onto a running [`ShardWorkerServer`] —
/// the fault-injection hook of in-process wire tests.
#[derive(Clone)]
pub struct WorkerHandle {
    shared: Arc<WorkerShared>,
}

impl WorkerHandle {
    /// The worker's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Simulates a SIGKILL: the worker stops replying, drops every
    /// session socket without a farewell frame, and stops accepting.
    /// The coordinator observes exactly what a killed process looks
    /// like — a dead transport mid-request.
    pub fn kill(&self) {
        self.shared.dead.store(true, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake so it observes the flag.
        let _ = TcpStream::connect(self.shared.addr);
    }
}

/// A shard worker process's serving half: one engine-owning worker
/// thread (identical to an in-process shard worker) behind a TCP
/// listener speaking the shard grammar. This is what
/// `ringjoin serve --shard-of <cell-spec>` runs.
pub struct ShardWorkerServer {
    listener: TcpListener,
    shared: Arc<WorkerShared>,
    engine_thread: Option<std::thread::JoinHandle<()>>,
}

impl ShardWorkerServer {
    /// Binds the worker listener and starts its engine thread.
    /// `accepts` restricts which partition cells this worker will
    /// `SLOAD` (`None` = any); `buffer_pages` bounds its private
    /// buffer pool (`0` = effectively unbounded).
    pub fn bind(
        addr: &str,
        accepts: Option<Rect>,
        buffer_pages: usize,
    ) -> Result<ShardWorkerServer, ServerError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServerError::Io(format!("cannot bind {addr}: {e}")))?;
        let bound = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("bound listener has no address: {e}")))?;
        let pool = BufferPool::new(if buffer_pages == 0 {
            usize::MAX / 2
        } else {
            buffer_pages
        });
        let (tx, engine_thread) = spawn_worker(pool);
        Ok(ShardWorkerServer {
            listener,
            shared: Arc::new(WorkerShared {
                tx,
                accepts,
                dead: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                addr: bound,
            }),
            engine_thread: Some(engine_thread),
        })
    }

    /// The bound address (the actual port when `bind` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A control handle usable from other threads (fault injection,
    /// orderly remote stop).
    pub fn handle(&self) -> WorkerHandle {
        WorkerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves coordinator connections until `SHUTDOWN` (or
    /// [`WorkerHandle::kill`]), then drains the engine thread.
    pub fn serve(mut self) -> std::io::Result<()> {
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _peer) = self.listener.accept()?;
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            sessions.retain(|h| !h.is_finished());
            let shared = Arc::clone(&self.shared);
            sessions.push(std::thread::spawn(move || {
                let _ = serve_worker_session(stream, &shared);
            }));
        }
        for handle in sessions {
            let _ = handle.join();
        }
        let _ = self.shared.tx.send(ShardMsg::Shutdown);
        if let Some(handle) = self.engine_thread.take() {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One coordinator connection: frames in, shard requests through the
/// engine thread, frames out. A killed worker drops the socket
/// without a reply.
fn serve_worker_session(mut stream: TcpStream, shared: &WorkerShared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(IDLE_TICK))?;
    loop {
        if shared.stop.load(Ordering::SeqCst) || shared.dead.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame_idle(&mut stream)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::Idle => continue,
            FrameRead::Frame(payload) => payload,
        };
        let (reply, stop) = match ShardRequest::parse(&payload) {
            Ok(req) => handle_shard_request(req, shared),
            Err(e) => (Reply::encode_err(&e.to_string()), false),
        };
        // The kill switch may have flipped while the engine worked:
        // a dead worker never writes another byte.
        if shared.dead.load(Ordering::SeqCst) {
            return Ok(());
        }
        write_frame(&mut stream, reply.as_bytes())?;
        if stop {
            shared.stop.store(true, Ordering::SeqCst);
            // Poke the accept loop awake.
            let _ = TcpStream::connect(shared.addr);
            return Ok(());
        }
    }
}

/// Dispatches one parsed shard request against the worker engine.
/// Returns `(reply payload, stop after replying)`.
fn handle_shard_request(req: ShardRequest, shared: &WorkerShared) -> (String, bool) {
    let reply = match req {
        ShardRequest::Hello => {
            let accepts = match shared.accepts {
                Some(rect) => encode_rect(rect),
                None => "any".to_string(),
            };
            Ok(Reply::encode(
                &[("role", "shard".to_string()), ("accepts", accepts)],
                "",
            ))
        }
        ShardRequest::Shutdown => {
            return (Reply::encode(&[("bye", "1".to_string())], ""), true);
        }
        ShardRequest::Load {
            name,
            kind,
            cell,
            spill,
            writer,
            items,
        } => {
            if let Some(accepts) = shared.accepts {
                if !accepts.intersects(cell) {
                    return (
                        Reply::encode_err(&format!(
                            "worker accepts cell {} only, got {}",
                            encode_rect(accepts),
                            encode_rect(cell)
                        )),
                        false,
                    );
                }
            }
            let (reply, rx) = channel();
            let msg = ShardMsg::Load(LoadReq {
                name,
                kind,
                items,
                cell,
                spill: spill.map(|path| SpillSpec {
                    path: PathBuf::from(path),
                    writer,
                }),
                reply,
            });
            engine_round_trip(shared, msg, rx).map(|(leaves, extent, summary)| {
                Reply::encode(
                    &[
                        ("leaves", leaves.to_string()),
                        ("extent", encode_rect(extent)),
                        ("items", summary.items.to_string()),
                        ("pages", summary.pages.to_string()),
                        ("leaf_pages", summary.leaf_pages.to_string()),
                        ("kind", summary.kind.to_string()),
                    ],
                    "",
                )
            })
        }
        ShardRequest::Update {
            name,
            target_epoch,
            ops,
        } => {
            let (reply, rx) = channel();
            let msg = ShardMsg::Update(UpdateReq {
                name,
                ops: Arc::new(ops),
                target_epoch,
                reply,
            });
            engine_round_trip(shared, msg, rx).map(|(leaves, extent, summary)| {
                Reply::encode(
                    &[
                        ("leaves", leaves.to_string()),
                        ("extent", encode_rect(extent)),
                        ("items", summary.items.to_string()),
                        ("pages", summary.pages.to_string()),
                        ("leaf_pages", summary.leaf_pages.to_string()),
                        ("kind", summary.kind.to_string()),
                    ],
                    "",
                )
            })
        }
        ShardRequest::Join {
            outer,
            inner,
            algo,
            bounds,
        } => {
            let (reply, rx) = channel();
            let msg = ShardMsg::Join(JoinReq {
                outer,
                inner,
                algo,
                bounds,
                reply,
            });
            engine_round_trip(shared, msg, rx).map(|(tagged, stats)| {
                let mut fields = vec![("pairs", tagged.len().to_string())];
                fields.extend(encode_stats_fields(&stats).map(|(k, v)| (k, v)));
                Reply::encode(&fields, &encode_tagged_pairs(&tagged))
            })
        }
        ShardRequest::TopK { outer, inner, k } => {
            let (reply, rx) = channel();
            let msg = ShardMsg::TopK(TopKReq {
                outer,
                inner,
                k,
                reply,
            });
            engine_round_trip(shared, msg, rx).map(|(pairs, stats)| {
                let mut fields = vec![("pairs", pairs.len().to_string())];
                fields.extend(encode_stats_fields(&stats).map(|(k, v)| (k, v)));
                Reply::encode(&fields, &encode_pairs(&pairs))
            })
        }
        ShardRequest::Explain {
            outer,
            inner,
            algo,
            k,
        } => {
            let (reply, rx) = channel();
            let msg = ShardMsg::Explain(ExplainReq {
                outer,
                inner,
                algo,
                top_k: k,
                reply,
            });
            engine_round_trip(shared, msg, rx).map(|plan| Reply::encode(&[], &plan))
        }
    };
    match reply {
        Ok(payload) => (payload, false),
        Err(msg) => (Reply::encode_err(&msg), false),
    }
}

/// One round-trip through the worker engine thread.
fn engine_round_trip<T>(
    shared: &WorkerShared,
    msg: ShardMsg,
    rx: std::sync::mpsc::Receiver<Result<T, String>>,
) -> Result<T, String> {
    shared
        .tx
        .send(msg)
        .map_err(|_| "worker engine thread is gone".to_string())?;
    rx.recv()
        .map_err(|_| "worker engine thread died mid-request".to_string())?
}

// ---------------------------------------------------------------------
// Coordinator side: the remote backend
// ---------------------------------------------------------------------

/// A [`ShardBackend`] over a TCP connection to a shard worker, with
/// per-request socket deadlines and bounded in-place reconnects. See
/// the module docs for the failure semantics.
pub(crate) struct RemoteShard {
    addr: String,
    stream: Option<TcpStream>,
    timeout: Duration,
}

impl RemoteShard {
    /// Connects and handshakes eagerly, so a topology construction (or
    /// respawn) fails fast on an unreachable or mis-roled address.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<RemoteShard, String> {
        let mut shard = RemoteShard {
            addr: addr.to_string(),
            stream: None,
            timeout,
        };
        shard.ensure_connected()?;
        Ok(shard)
    }

    /// (Re)establishes the connection, including the `HELLO` role
    /// handshake: connecting a coordinator to another coordinator (or
    /// anything else speaking the protocol) is a configuration error
    /// caught here, not a hang later.
    fn ensure_connected(&mut self) -> Result<(), String> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to worker {}: {e}", self.addr))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let mut stream = stream;
        let reply =
            Self::round_trip_on(&mut stream, &ShardRequest::Hello).map_err(|f| match f {
                ShardFault::Gone(m) | ShardFault::Request(m) => m,
            })?;
        match reply.field("role") {
            Some("shard") => {}
            other => {
                return Err(format!(
                    "peer {} is not a shard worker (role={})",
                    self.addr,
                    other.unwrap_or("?")
                ))
            }
        }
        self.stream = Some(stream);
        Ok(())
    }

    /// One request/response exchange on an established stream.
    fn round_trip_on(stream: &mut TcpStream, req: &ShardRequest) -> Result<Reply, ShardFault> {
        write_frame(stream, req.encode().as_bytes())
            .map_err(|e| ShardFault::Gone(format!("worker write failed: {e}")))?;
        let payload = read_frame(stream)
            .map_err(|e| ShardFault::Gone(format!("worker read failed: {e}")))?
            .ok_or_else(|| ShardFault::Gone("worker closed the connection".into()))?;
        Reply::parse(&payload).map_err(|e| ShardFault::Request(e.to_string()))
    }

    /// Sends one request with bounded whole-request retries. Safe
    /// because every shard operation is idempotent (see module docs);
    /// a worker-reported `ERR` is never retried.
    fn request(&mut self, req: &ShardRequest) -> Result<Reply, ShardFault> {
        let mut last = String::new();
        for attempt in 0..RECONNECT_ATTEMPTS {
            if attempt > 0 {
                // Deterministic jitter (no RNG dependency) keeps
                // concurrent retries from stampeding in lockstep.
                let jitter = (attempt as u64 * 13) % 11;
                std::thread::sleep(
                    RECONNECT_BACKOFF * 2u32.saturating_pow(attempt - 1)
                        + Duration::from_millis(jitter),
                );
            }
            if let Err(e) = self.ensure_connected() {
                last = e;
                continue;
            }
            let stream = self.stream.as_mut().expect("just connected");
            match Self::round_trip_on(stream, req) {
                Ok(reply) => return Ok(reply),
                Err(ShardFault::Request(msg)) => return Err(ShardFault::Request(msg)),
                Err(ShardFault::Gone(msg)) => {
                    // Drop the stream; the next attempt reconnects.
                    self.stream = None;
                    last = msg;
                }
            }
        }
        Err(ShardFault::Gone(last))
    }
}

/// Maps a wire `kind` back to the static name the planner summary
/// carries.
fn static_kind(kind: &str) -> Result<&'static str, ShardFault> {
    match kind {
        "rtree" => Ok("rtree"),
        "quadtree" => Ok("quadtree"),
        other => Err(ShardFault::Request(format!(
            "worker reported unknown index kind {other:?}"
        ))),
    }
}

fn field_u64(reply: &Reply, key: &str) -> Result<u64, ShardFault> {
    reply
        .field(key)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ShardFault::Request(format!("worker reply lacks {key}=")))
}

/// Parses the shared `SLOAD`/`SUPDATE` reply shape (leaf count, owned
/// extent, dataset summary) back into a [`LoadOutcome`].
fn load_outcome_from_reply(reply: &Reply) -> Result<LoadOutcome, ShardFault> {
    let extent = reply
        .field("extent")
        .ok_or_else(|| ShardFault::Request("worker reply lacks extent=".into()))
        .and_then(|s| parse_rect(s).map_err(|e| ShardFault::Request(e.to_string())))?;
    let kind = static_kind(
        reply
            .field("kind")
            .ok_or_else(|| ShardFault::Request("worker reply lacks kind=".into()))?,
    )?;
    Ok(LoadOutcome {
        leaves: field_u64(reply, "leaves")? as usize,
        extent,
        summary: DatasetSummary {
            kind,
            items: field_u64(reply, "items")?,
            pages: field_u64(reply, "pages")?,
            leaf_pages: field_u64(reply, "leaf_pages")?,
        },
    })
}

impl ShardBackend for RemoteShard {
    fn load(&mut self, call: &LoadCall) -> Result<LoadOutcome, ShardFault> {
        let spill = match &call.spill {
            None => None,
            Some((path, _)) => {
                let path = path.to_str().ok_or_else(|| {
                    ShardFault::Request(format!("spill path {} is not valid UTF-8", path.display()))
                })?;
                if path.chars().any(char::is_whitespace) {
                    return Err(ShardFault::Request(format!(
                        "spill path {path:?} contains whitespace (paths are wire tokens)"
                    )));
                }
                Some(path.to_string())
            }
        };
        let req = ShardRequest::Load {
            name: call.name.clone(),
            kind: call.kind,
            cell: call.cell,
            spill,
            writer: call.spill.as_ref().is_some_and(|(_, w)| *w),
            items: call.items.as_ref().clone(),
        };
        let reply = self.request(&req)?;
        load_outcome_from_reply(&reply)
    }

    fn update(&mut self, call: &UpdateCall) -> Result<LoadOutcome, ShardFault> {
        let req = ShardRequest::Update {
            name: call.name.clone(),
            target_epoch: call.target_epoch,
            ops: call.ops.as_ref().clone(),
        };
        let reply = self.request(&req)?;
        load_outcome_from_reply(&reply)
    }

    fn join(&mut self, call: &JoinCall) -> Result<(Vec<(usize, RcjPair)>, RcjStats), ShardFault> {
        let req = ShardRequest::Join {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            algo: call.algo,
            bounds: call.bounds,
        };
        let reply = self.request(&req)?;
        let tagged = parse_tagged_pairs(&reply.body)
            .map_err(|e| ShardFault::Request(format!("bad tagged pair rows: {e}")))?;
        Ok((tagged, stats_from_reply(&reply)))
    }

    fn top_k(&mut self, call: &TopKCall) -> Result<(Vec<RcjPair>, RcjStats), ShardFault> {
        let req = ShardRequest::TopK {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            k: call.k,
        };
        let reply = self.request(&req)?;
        let pairs = parse_pairs(&reply.body)
            .map_err(|e| ShardFault::Request(format!("bad pair rows: {e}")))?;
        Ok((pairs, stats_from_reply(&reply)))
    }

    fn explain(&mut self, call: &ExplainCall) -> Result<String, ShardFault> {
        let req = ShardRequest::Explain {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            algo: call.algo,
            k: call.k,
        };
        Ok(self.request(&req)?.body)
    }

    fn shutdown(&mut self) {
        // Best effort, no reconnect: a worker that is already gone
        // needs no farewell.
        if let Some(mut stream) = self.stream.take() {
            let _ = Self::round_trip_on(&mut stream, &ShardRequest::Shutdown);
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator side: self-spawned worker processes
// ---------------------------------------------------------------------

/// Distinguishes concurrently launched workers' address files within
/// one coordinator process.
static SPAWN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// How long a spawned worker gets to bind and report its address.
const SPAWN_DEADLINE: Duration = Duration::from_secs(10);

/// How long an orderly `SHUTDOWN` gets before the child is killed.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// A [`ShardBackend`] whose worker is a child process this
/// coordinator launched: `<program> serve --shard-of auto` on an
/// ephemeral loopback port, discovered through an address file. The
/// topology's supervisor respawns by simply launching another child —
/// always on a fresh port, which sidesteps `TIME_WAIT` rebinding.
pub(crate) struct SpawnedShard {
    child: std::process::Child,
    remote: RemoteShard,
}

impl SpawnedShard {
    /// Launches the worker and connects to it.
    pub(crate) fn launch(program: &Path, timeout: Duration) -> Result<SpawnedShard, String> {
        let addr_file = std::env::temp_dir().join(format!(
            "ringjoin-worker-{}-{}.addr",
            std::process::id(),
            SPAWN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&addr_file);
        let mut child = std::process::Command::new(program)
            .args([
                "serve",
                "--shard-of",
                "auto",
                "--addr",
                "127.0.0.1:0",
                "--addr-file",
            ])
            .arg(&addr_file)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning worker {}: {e}", program.display()))?;
        let addr = match Self::await_addr(&addr_file, &mut child) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                let _ = std::fs::remove_file(&addr_file);
                return Err(e);
            }
        };
        let _ = std::fs::remove_file(&addr_file);
        let remote = match RemoteShard::connect(&addr, timeout) {
            Ok(remote) => remote,
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(e);
            }
        };
        Ok(SpawnedShard { child, remote })
    }

    /// Polls the address file (newline-terminated by the worker once
    /// it is bound and serving) while watching for early child death.
    fn await_addr(addr_file: &Path, child: &mut std::process::Child) -> Result<String, String> {
        let deadline = Instant::now() + SPAWN_DEADLINE;
        loop {
            if let Ok(contents) = std::fs::read_to_string(addr_file) {
                if let Some(addr) = contents.strip_suffix('\n') {
                    return Ok(addr.trim().to_string());
                }
            }
            if let Ok(Some(status)) = child.try_wait() {
                return Err(format!("worker exited during startup: {status}"));
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "worker never reported its address to {}",
                    addr_file.display()
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl ShardBackend for SpawnedShard {
    fn load(&mut self, call: &LoadCall) -> Result<LoadOutcome, ShardFault> {
        self.remote.load(call)
    }

    fn update(&mut self, call: &UpdateCall) -> Result<LoadOutcome, ShardFault> {
        self.remote.update(call)
    }

    fn join(&mut self, call: &JoinCall) -> Result<(Vec<(usize, RcjPair)>, RcjStats), ShardFault> {
        self.remote.join(call)
    }

    fn top_k(&mut self, call: &TopKCall) -> Result<(Vec<RcjPair>, RcjStats), ShardFault> {
        self.remote.top_k(call)
    }

    fn explain(&mut self, call: &ExplainCall) -> Result<String, ShardFault> {
        self.remote.explain(call)
    }

    fn shutdown(&mut self) {
        self.remote.shutdown();
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        while Instant::now() < deadline {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn pid(&self) -> Option<u32> {
        Some(self.child.id())
    }
}

impl Drop for SpawnedShard {
    fn drop(&mut self) {
        // A dropped backend (failover path) must not leak a child.
        if !matches!(self.child.try_wait(), Ok(Some(_))) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ExplainCall, JoinCall, LoadCall, TopKCall};
    use ringjoin_core::{IndexKind, RcjAlgorithm};
    use ringjoin_geom::{pt, Item};

    fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        ringjoin_testsupport::lcg_points(n, seed, span)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
            .collect()
    }

    /// Binds a worker on an ephemeral port, serving on its own thread.
    fn start_worker() -> (WorkerHandle, String) {
        let server = ShardWorkerServer::bind("127.0.0.1:0", None, 0).unwrap();
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        std::thread::spawn(move || {
            let _ = server.serve();
        });
        (handle, addr)
    }

    #[test]
    fn remote_worker_round_trips_load_join_topk_explain() {
        let (_handle, addr) = start_worker();
        let mut shard = RemoteShard::connect(&addr, Duration::from_secs(10)).unwrap();
        let everything = Rect::new(
            pt(f64::NEG_INFINITY, f64::NEG_INFINITY),
            pt(f64::INFINITY, f64::INFINITY),
        );
        let out = shard
            .load(&LoadCall {
                name: "d".into(),
                kind: IndexKind::Rtree,
                items: Arc::new(items(150, 3, 800.0)),
                cell: everything,
                spill: None,
            })
            .unwrap();
        assert!(out.leaves > 0);
        assert_eq!(out.summary.items, 150);
        assert_eq!(out.summary.kind, "rtree");

        let (tagged, stats) = shard
            .join(&JoinCall {
                outer: "d".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                bounds: None,
            })
            .unwrap();
        assert_eq!(stats.result_pairs as usize, tagged.len());
        // Tagged rows arrive in leaf order, ready for the global merge.
        assert!(tagged.windows(2).all(|w| w[0].0 <= w[1].0));

        let (pairs, _) = shard
            .top_k(&TopKCall {
                outer: "d".into(),
                inner: None,
                k: 5,
            })
            .unwrap();
        assert!(pairs.len() <= 5);

        let plan = shard
            .explain(&ExplainCall {
                outer: "d".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                k: None,
            })
            .unwrap();
        assert!(plan.contains("self-join"), "{plan}");
        shard.shutdown();
    }

    #[test]
    fn worker_rejects_loads_outside_its_cell_and_wrong_roles_fail_fast() {
        let accepts = Rect::new(pt(0.0, 0.0), pt(100.0, 100.0));
        let server = ShardWorkerServer::bind("127.0.0.1:0", Some(accepts), 0).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        std::thread::spawn(move || {
            let _ = server.serve();
        });
        let mut shard = RemoteShard::connect(&addr, Duration::from_secs(10)).unwrap();
        let far = Rect::new(pt(500.0, 500.0), pt(600.0, 600.0));
        let err = shard.load(&LoadCall {
            name: "d".into(),
            kind: IndexKind::Rtree,
            items: Arc::new(items(10, 5, 50.0)),
            cell: far,
            spill: None,
        });
        assert!(matches!(err, Err(ShardFault::Request(_))));
        handle.kill();
    }

    #[test]
    fn killed_worker_surfaces_gone_after_bounded_retries() {
        let (handle, addr) = start_worker();
        let mut shard = RemoteShard::connect(&addr, Duration::from_secs(2)).unwrap();
        handle.kill();
        let err = shard.explain(&ExplainCall {
            outer: "d".into(),
            inner: None,
            algo: RcjAlgorithm::Auto,
            k: None,
        });
        assert!(matches!(err, Err(ShardFault::Gone(_))), "want Gone");
    }
}
