//! The self-healing shard topology: replicated worker slots behind
//! round-robin routing, health-aware failover, and a supervisor that
//! respawns dead workers and replays the coordinator's LOAD log.
//!
//! # Slots, cells and replicas
//!
//! A topology serves `cells` partition cells with `replicas` workers
//! each: slot `cell * replicas + rep` is replica `rep` of cell `cell`
//! (flat **cell-major** order — the same order `STATS` reports
//! `shard<i>_state` in). Every replica of a cell is interchangeable:
//! replicas hold identical replicated indexes and own the same outer
//! leaves, so answers are byte-identical no matter which replica a
//! query lands on — which is precisely what makes failover invisible.
//!
//! # Routing and failover
//!
//! [`Topology::call`] picks a starting replica round-robin (per cell)
//! and walks the cell's replicas until one answers. A replica whose
//! transport dies mid-call ([`ShardFault::Gone`]) is marked down,
//! handed to the supervisor, and the call moves on to the next replica
//! — the client never sees the loss while a sibling lives. Only when
//! every replica of the cell is unavailable does the call surface
//! [`ServerError::ShardGone`]. A *request* error from a live worker
//! ([`ShardFault::Request`]) is returned as-is: the worker is healthy,
//! the request is not, and failing over would just repeat it.
//!
//! # Healing
//!
//! The supervisor thread receives down slot indices, re-creates the
//! backend through the topology's factory (bounded attempts with
//! exponential backoff), and runs the heal function the
//! [`ShardedEngine`](crate::ShardedEngine) provides — which replays
//! every logged `LOAD` into the fresh worker under the catalog's read
//! lock and only then installs it as up. Because installation happens
//! under that lock, a healing slot can never miss a concurrent `LOAD`:
//! either the slot is up before the load takes the write lock (and is
//! fanned out to), or the load's record is already in the log the
//! replay reads.

use crate::ServerError;
use ringjoin_core::planner::DatasetSummary;
use ringjoin_core::{IndexKind, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_geom::{Item, Rect};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sharded::{Mutation, RingBounds};

// ---------------------------------------------------------------------
// Backend-facing call shapes
// ---------------------------------------------------------------------

/// One dataset registration, as a backend sees it: the full item set
/// (the index is replicated), the half-open partition cell this worker
/// owns, and the disk-mode spill instruction `(path, writer)`.
pub(crate) struct LoadCall {
    pub name: String,
    pub kind: IndexKind,
    pub items: Arc<Vec<Item>>,
    pub cell: Rect,
    pub spill: Option<(PathBuf, bool)>,
}

/// One mutation batch, as a backend sees it: the ordered operations
/// plus the dataset epoch the batch produces. The target epoch is what
/// makes delivery **idempotent**: a worker already at `target_epoch`
/// acknowledges without re-applying (the previous delivery's reply was
/// lost in transit), and a worker at any epoch other than
/// `target_epoch - 1` refuses — it has diverged and must be rebuilt
/// from the log.
pub(crate) struct UpdateCall {
    pub name: String,
    pub ops: Arc<Vec<Mutation>>,
    pub target_epoch: u64,
}

/// A leaf-driven join against one worker.
pub(crate) struct JoinCall {
    pub outer: String,
    pub inner: Option<String>,
    pub algo: RcjAlgorithm,
    pub bounds: Option<RingBounds>,
}

/// A cell-restricted diameter-ordered top-k against one worker.
pub(crate) struct TopKCall {
    pub outer: String,
    pub inner: Option<String>,
    pub k: usize,
}

/// A plan-display request against one worker.
pub(crate) struct ExplainCall {
    pub outer: String,
    pub inner: Option<String>,
    pub algo: RcjAlgorithm,
    pub k: Option<usize>,
}

/// What one worker reports back for a [`LoadCall`]: owned leaf count,
/// the union of its owned leaf regions, and the planner summary.
pub(crate) struct LoadOutcome {
    pub leaves: usize,
    pub extent: Rect,
    pub summary: DatasetSummary,
}

/// How a backend call failed — the distinction that drives failover.
#[derive(Debug)]
pub(crate) enum ShardFault {
    /// The transport to the worker is dead (closed channel, reset or
    /// timed-out socket, killed process): the slot goes down, the
    /// supervisor respawns it, and the call fails over to a sibling
    /// replica.
    Gone(String),
    /// The worker is alive but rejected the request. No failover — a
    /// sibling replica would answer the same way.
    Request(String),
}

impl ShardFault {
    /// The human-readable message either way.
    pub(crate) fn message(self) -> String {
        match self {
            ShardFault::Gone(m) | ShardFault::Request(m) => m,
        }
    }
}

/// One shard worker the topology can route to — an in-process worker
/// thread, a TCP connection to a worker process, or a mock in tests.
/// Implementations are owned by their slot's mutex, so calls take
/// `&mut self` and need no internal locking.
pub(crate) trait ShardBackend: Send {
    fn load(&mut self, call: &LoadCall) -> Result<LoadOutcome, ShardFault>;
    /// Applies one mutation batch; the outcome carries the worker's
    /// recomputed owned-leaf count, extent and summary (the same shape a
    /// load reports — updates move leaves between cells).
    fn update(&mut self, call: &UpdateCall) -> Result<LoadOutcome, ShardFault>;
    fn join(&mut self, call: &JoinCall) -> Result<(Vec<(usize, RcjPair)>, RcjStats), ShardFault>;
    fn top_k(&mut self, call: &TopKCall) -> Result<(Vec<RcjPair>, RcjStats), ShardFault>;
    fn explain(&mut self, call: &ExplainCall) -> Result<String, ShardFault>;
    /// Best-effort orderly stop (the topology is shutting down).
    fn shutdown(&mut self) {}
    /// The worker's OS process id, when it has one of its own.
    fn pid(&self) -> Option<u32> {
        None
    }
}

/// Creates the backend for `(cell, replica)` — used for initial
/// construction and for every respawn.
pub(crate) type BackendFactory =
    Arc<dyn Fn(usize, usize) -> Result<Box<dyn ShardBackend>, String> + Send + Sync>;

/// Replays the LOAD log into a fresh backend for `cell` and, on
/// success, installs it into the slot (flipping it up) — all under
/// whatever catalog lock the engine needs to exclude concurrent loads.
/// Returns how many datasets were replayed.
pub(crate) type HealFn =
    Arc<dyn Fn(usize, Box<dyn ShardBackend>, &Slot) -> Result<u64, String> + Send + Sync>;

/// Bounds the supervisor's respawn loop per down event.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RespawnPolicy {
    /// Spawn-and-heal attempts before the slot is parked down (a later
    /// routed call kicks it again).
    pub attempts: u32,
    /// Base backoff between attempts, doubled each retry.
    pub backoff: Duration,
}

impl Default for RespawnPolicy {
    fn default() -> Self {
        RespawnPolicy {
            attempts: 5,
            backoff: Duration::from_millis(100),
        }
    }
}

// ---------------------------------------------------------------------
// Slots
// ---------------------------------------------------------------------

const UP: u8 = 0;
const DOWN: u8 = 1;
const RESPAWNING: u8 = 2;

/// One replica's mailbox: the backend (when alive) behind a mutex,
/// plus lock-free health state and a request counter. Lock order is
/// catalog lock → slot mutex everywhere (queries, loads, heals), so
/// the two can never deadlock.
pub(crate) struct Slot {
    backend: Mutex<Option<Box<dyn ShardBackend>>>,
    state: AtomicU8,
    requests: AtomicU64,
}

impl Slot {
    fn new(backend: Box<dyn ShardBackend>) -> Slot {
        Slot {
            backend: Mutex::new(Some(backend)),
            state: AtomicU8::new(UP),
            requests: AtomicU64::new(0),
        }
    }

    /// Installs a healed backend and flips the slot up. Called by the
    /// heal function under the engine's catalog lock — see the module
    /// docs for why that ordering closes the missed-LOAD race.
    pub(crate) fn install(&self, backend: Box<dyn ShardBackend>) {
        *self.backend.lock().expect("slot lock poisoned") = Some(backend);
        self.state.store(UP, Ordering::SeqCst);
    }

    fn state_name(&self) -> &'static str {
        match self.state.load(Ordering::SeqCst) {
            UP => "up",
            RESPAWNING => "respawning",
            _ => "down",
        }
    }
}

// ---------------------------------------------------------------------
// The topology
// ---------------------------------------------------------------------

/// The routing fabric of a [`ShardedEngine`](crate::ShardedEngine):
/// `cells * replicas` slots, round-robin replica selection with
/// failover, and the self-healing supervisor. See the module docs.
pub(crate) struct Topology {
    replicas: usize,
    slots: Vec<Arc<Slot>>,
    /// Per-cell round-robin cursors (load-balancing across replicas).
    rr: Vec<AtomicUsize>,
    respawn_tx: Option<Sender<usize>>,
    supervisor: Option<JoinHandle<()>>,
    replays_total: Arc<AtomicU64>,
}

impl Topology {
    /// Builds the full topology strictly: every `(cell, replica)` slot
    /// must spawn, or construction fails. The supervisor thread starts
    /// immediately.
    pub(crate) fn new(
        cells: usize,
        replicas: usize,
        factory: BackendFactory,
        heal: HealFn,
        policy: RespawnPolicy,
    ) -> Result<Topology, ServerError> {
        if cells == 0 || replicas == 0 {
            return Err(ServerError::InvalidShards);
        }
        let mut slots = Vec::with_capacity(cells * replicas);
        for cell in 0..cells {
            for rep in 0..replicas {
                let backend = factory(cell, rep).map_err(|e| {
                    ServerError::Internal(format!("spawning shard {cell} replica {rep}: {e}"))
                })?;
                slots.push(Arc::new(Slot::new(backend)));
            }
        }
        let (respawn_tx, respawn_rx) = channel::<usize>();
        let replays_total = Arc::new(AtomicU64::new(0));
        let supervisor = {
            let slots: Vec<Arc<Slot>> = slots.clone();
            let replays_total = Arc::clone(&replays_total);
            std::thread::spawn(move || {
                while let Ok(idx) = respawn_rx.recv() {
                    let slot = &slots[idx];
                    // Duplicate kicks for an already-healed slot are
                    // no-ops; only a down slot enters respawning.
                    if slot
                        .state
                        .compare_exchange(DOWN, RESPAWNING, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue;
                    }
                    let cell = idx / replicas;
                    let rep = idx % replicas;
                    let mut healed = false;
                    for attempt in 0..policy.attempts {
                        if attempt > 0 {
                            // Exponential backoff with a small
                            // deterministic jitter (no RNG dependency)
                            // so sibling respawns don't stampede.
                            let jitter = (idx as u64 * 31 + attempt as u64 * 17) % 23;
                            std::thread::sleep(
                                policy.backoff * 2u32.saturating_pow(attempt - 1)
                                    + Duration::from_millis(jitter),
                            );
                        }
                        let backend = match factory(cell, rep) {
                            Ok(b) => b,
                            Err(_) => continue,
                        };
                        match heal(cell, backend, slot) {
                            Ok(replayed) => {
                                replays_total.fetch_add(replayed, Ordering::Relaxed);
                                healed = true;
                                break;
                            }
                            Err(_) => continue,
                        }
                    }
                    if !healed {
                        // Park the slot down; the next routed call that
                        // probes it kicks the supervisor again.
                        slot.state.store(DOWN, Ordering::SeqCst);
                    }
                }
            })
        };
        Ok(Topology {
            replicas,
            slots,
            rr: (0..cells).map(|_| AtomicUsize::new(0)).collect(),
            respawn_tx: Some(respawn_tx),
            supervisor: Some(supervisor),
            replays_total,
        })
    }

    /// Number of partition cells.
    pub(crate) fn cells(&self) -> usize {
        self.rr.len()
    }

    /// Replicas per cell.
    pub(crate) fn replicas(&self) -> usize {
        self.replicas
    }

    /// Lifetime count of datasets replayed into respawned workers.
    pub(crate) fn replays_total(&self) -> u64 {
        self.replays_total.load(Ordering::Relaxed)
    }

    fn kick(&self, idx: usize) {
        if let Some(tx) = &self.respawn_tx {
            let _ = tx.send(idx);
        }
    }

    /// Marks a slot down after a transport fault and wakes the
    /// supervisor. Idempotent: only an up slot transitions.
    fn mark_down(&self, idx: usize) {
        if self.slots[idx]
            .state
            .compare_exchange(UP, DOWN, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.kick(idx);
        }
    }

    /// Routes one query call to `cell`: starts at the round-robin
    /// replica, fails over across siblings on [`ShardFault::Gone`]
    /// (marking the faulty slot down), and surfaces
    /// [`ServerError::ShardGone`] only when no replica of the cell can
    /// answer. [`ShardFault::Request`] returns immediately as an
    /// internal error — the worker is healthy, so a sibling would
    /// answer the same way.
    pub(crate) fn call<T>(
        &self,
        cell: usize,
        op: impl Fn(&mut dyn ShardBackend) -> Result<T, ShardFault>,
    ) -> Result<T, ServerError> {
        let start = self.rr[cell].fetch_add(1, Ordering::Relaxed);
        for probe in 0..self.replicas {
            let idx = cell * self.replicas + (start + probe) % self.replicas;
            let slot = &self.slots[idx];
            match slot.state.load(Ordering::SeqCst) {
                UP => {}
                DOWN => {
                    // A parked slot (respawn attempts exhausted) gets
                    // another chance as soon as traffic probes it.
                    self.kick(idx);
                    continue;
                }
                _ => continue,
            }
            let mut guard = slot.backend.lock().expect("slot lock poisoned");
            let Some(backend) = guard.as_mut() else {
                continue;
            };
            slot.requests.fetch_add(1, Ordering::Relaxed);
            match op(backend.as_mut()) {
                Ok(out) => return Ok(out),
                Err(ShardFault::Gone(_)) => {
                    // Drop the dead transport with the lock held, then
                    // hand the slot to the supervisor and fail over.
                    *guard = None;
                    drop(guard);
                    self.mark_down(idx);
                }
                Err(ShardFault::Request(msg)) => return Err(ServerError::Internal(msg)),
            }
        }
        Err(ServerError::ShardGone(cell))
    }

    /// Fans one `LOAD` into a specific slot. `None` means the slot was
    /// not up (or its transport died mid-load — it is then marked down
    /// for healing, whose replay will deliver this very load);
    /// `Some(Err)` is a hard request error that must fail the `LOAD`.
    pub(crate) fn load_slot(
        &self,
        idx: usize,
        call: &LoadCall,
    ) -> Option<Result<LoadOutcome, String>> {
        let slot = &self.slots[idx];
        match slot.state.load(Ordering::SeqCst) {
            UP => {}
            DOWN => {
                self.kick(idx);
                return None;
            }
            _ => return None,
        }
        let mut guard = slot.backend.lock().expect("slot lock poisoned");
        let backend = guard.as_mut()?;
        slot.requests.fetch_add(1, Ordering::Relaxed);
        match backend.load(call) {
            Ok(out) => Some(Ok(out)),
            Err(ShardFault::Gone(_)) => {
                *guard = None;
                drop(guard);
                self.mark_down(idx);
                None
            }
            Err(ShardFault::Request(msg)) => Some(Err(msg)),
        }
    }

    /// Fans one mutation batch into a specific slot. `None` means the
    /// slot was not up (or its transport died mid-update — it is then
    /// marked down for healing, whose log replay delivers this very
    /// batch); `Some(Err)` is a hard refusal from a live worker.
    /// Coordinator-side validation makes refusals unreachable for a
    /// worker in sync, so a refusing worker has **diverged** — its
    /// backend is dropped and the slot handed to the supervisor, whose
    /// full-log replay rebuilds it into a consistent state.
    pub(crate) fn update_slot(
        &self,
        idx: usize,
        call: &UpdateCall,
    ) -> Option<Result<LoadOutcome, String>> {
        let slot = &self.slots[idx];
        match slot.state.load(Ordering::SeqCst) {
            UP => {}
            DOWN => {
                self.kick(idx);
                return None;
            }
            _ => return None,
        }
        let mut guard = slot.backend.lock().expect("slot lock poisoned");
        let backend = guard.as_mut()?;
        slot.requests.fetch_add(1, Ordering::Relaxed);
        match backend.update(call) {
            Ok(out) => Some(Ok(out)),
            Err(ShardFault::Gone(_)) => {
                *guard = None;
                drop(guard);
                self.mark_down(idx);
                None
            }
            Err(ShardFault::Request(msg)) => {
                *guard = None;
                drop(guard);
                self.mark_down(idx);
                Some(Err(msg))
            }
        }
    }

    /// Tears a slot down for rebuild: drops its backend and hands it to
    /// the supervisor, whose replay reconstructs the worker from the
    /// log. Used when a worker's *state* can no longer be trusted (it
    /// applied a mutation batch the coordinator had to abandon), not
    /// just its transport.
    pub(crate) fn quarantine(&self, idx: usize) {
        let slot = &self.slots[idx];
        *slot.backend.lock().expect("slot lock poisoned") = None;
        self.mark_down(idx);
    }

    /// Per-slot `(state, requests)` in flat cell-major slot order — the
    /// `STATS` health rows.
    pub(crate) fn health(&self) -> Vec<(&'static str, u64)> {
        self.slots
            .iter()
            .map(|s| (s.state_name(), s.requests.load(Ordering::Relaxed)))
            .collect()
    }

    /// Polls until every slot is up (true) or the timeout lapses
    /// (false). Test and CI convenience — production callers rely on
    /// per-call failover instead.
    pub(crate) fn wait_healthy(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .slots
                .iter()
                .all(|s| s.state.load(Ordering::SeqCst) == UP)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Each slot's worker process id (`None` for in-process workers and
    /// down slots), in flat cell-major slot order.
    pub(crate) fn pids(&self) -> Vec<Option<u32>> {
        self.slots
            .iter()
            .map(|s| {
                s.backend
                    .lock()
                    .expect("slot lock poisoned")
                    .as_ref()
                    .and_then(|b| b.pid())
            })
            .collect()
    }

    /// Stops the supervisor, then shuts every live backend down.
    pub(crate) fn shutdown(&mut self) {
        // Closing the channel ends the supervisor's recv loop; join it
        // *before* tearing down backends so no heal races the shutdown.
        self.respawn_tx.take();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        for slot in &self.slots {
            if let Some(mut backend) = slot.backend.lock().expect("slot lock poisoned").take() {
                backend.shutdown();
            }
        }
    }
}

impl Drop for Topology {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A scriptable backend: answers `explain` with its label, or
    /// reports its transport dead when `gone` is set.
    struct Mock {
        label: String,
        gone: Arc<AtomicBool>,
    }

    impl ShardBackend for Mock {
        fn load(&mut self, _call: &LoadCall) -> Result<LoadOutcome, ShardFault> {
            if self.gone.load(Ordering::SeqCst) {
                return Err(ShardFault::Gone("mock transport dead".into()));
            }
            Ok(LoadOutcome {
                leaves: 1,
                extent: Rect::empty(),
                summary: DatasetSummary::new("rtree", 1, 1, 1),
            })
        }
        fn update(&mut self, _call: &UpdateCall) -> Result<LoadOutcome, ShardFault> {
            if self.gone.load(Ordering::SeqCst) {
                return Err(ShardFault::Gone("mock transport dead".into()));
            }
            Ok(LoadOutcome {
                leaves: 1,
                extent: Rect::empty(),
                summary: DatasetSummary::new("rtree", 1, 1, 1),
            })
        }
        fn join(
            &mut self,
            _call: &JoinCall,
        ) -> Result<(Vec<(usize, RcjPair)>, RcjStats), ShardFault> {
            Err(ShardFault::Request("mock has no join".into()))
        }
        fn top_k(&mut self, _call: &TopKCall) -> Result<(Vec<RcjPair>, RcjStats), ShardFault> {
            Err(ShardFault::Request("mock has no top-k".into()))
        }
        fn explain(&mut self, _call: &ExplainCall) -> Result<String, ShardFault> {
            if self.gone.load(Ordering::SeqCst) {
                return Err(ShardFault::Gone("mock transport dead".into()));
            }
            Ok(self.label.clone())
        }
    }

    fn explain_call() -> ExplainCall {
        ExplainCall {
            outer: "d".into(),
            inner: None,
            algo: RcjAlgorithm::Auto,
            k: None,
        }
    }

    /// Factory + heal that build healthy mocks and count replays.
    fn fixture(kill_switches: Arc<Mutex<Vec<Arc<AtomicBool>>>>) -> (BackendFactory, HealFn) {
        let factory: BackendFactory = Arc::new(move |cell, rep| {
            let gone = Arc::new(AtomicBool::new(false));
            kill_switches.lock().unwrap().push(Arc::clone(&gone));
            Ok(Box::new(Mock {
                label: format!("cell{cell}-rep{rep}"),
                gone,
            }) as Box<dyn ShardBackend>)
        });
        let heal: HealFn = Arc::new(|_cell, backend, slot: &Slot| {
            slot.install(backend);
            Ok(2)
        });
        (factory, heal)
    }

    #[test]
    fn failover_hides_a_dead_replica_and_supervisor_heals_it() {
        let switches = Arc::new(Mutex::new(Vec::new()));
        let (factory, heal) = fixture(Arc::clone(&switches));
        let topo = Topology::new(1, 2, factory, heal, RespawnPolicy::default()).unwrap();
        // Kill replica 0's transport: the next calls must still answer
        // (replica 1) without ever surfacing an error.
        switches.lock().unwrap()[0].store(true, Ordering::SeqCst);
        for _ in 0..4 {
            let text = topo.call(0, |b| b.explain(&explain_call())).unwrap();
            assert_eq!(text, "cell0-rep1");
        }
        // The supervisor respawns slot 0 (the factory hands out a fresh
        // healthy mock) and counts the heal's replays.
        assert!(topo.wait_healthy(Duration::from_secs(5)));
        assert_eq!(topo.replays_total(), 2);
        assert_eq!(topo.health().len(), 2);
        assert!(topo.health().iter().all(|(state, _)| *state == "up"));
        // Round-robin reaches the healed replica again.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..4 {
            seen.insert(topo.call(0, |b| b.explain(&explain_call())).unwrap());
        }
        assert!(seen.contains("cell0-rep0"));
    }

    #[test]
    fn single_replica_loss_is_a_clean_shard_gone_then_heals() {
        let switches = Arc::new(Mutex::new(Vec::new()));
        let (factory, heal) = fixture(Arc::clone(&switches));
        let topo = Topology::new(2, 1, factory, heal, RespawnPolicy::default()).unwrap();
        switches.lock().unwrap()[1].store(true, Ordering::SeqCst);
        // Cell 1 has no sibling: the loss surfaces as ShardGone(1).
        let err = topo.call(1, |b| b.explain(&explain_call()));
        assert!(matches!(err, Err(ServerError::ShardGone(1))), "{err:?}");
        // Cell 0 is untouched.
        assert_eq!(
            topo.call(0, |b| b.explain(&explain_call())).unwrap(),
            "cell0-rep0"
        );
        // ...and the supervisor brings cell 1 back.
        assert!(topo.wait_healthy(Duration::from_secs(5)));
        assert_eq!(
            topo.call(1, |b| b.explain(&explain_call())).unwrap(),
            "cell1-rep0"
        );
    }

    #[test]
    fn request_errors_do_not_fail_over() {
        let switches = Arc::new(Mutex::new(Vec::new()));
        let (factory, heal) = fixture(Arc::clone(&switches));
        let topo = Topology::new(1, 2, factory, heal, RespawnPolicy::default()).unwrap();
        let err = topo.call(0, |b| {
            b.join(&JoinCall {
                outer: "d".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                bounds: None,
            })
        });
        assert!(matches!(err, Err(ServerError::Internal(_))), "{err:?}");
        // Both replicas stay up: a bad request is not a bad worker.
        assert!(topo.health().iter().all(|(state, _)| *state == "up"));
        // Exactly one replica was charged the request.
        let total: u64 = topo.health().iter().map(|(_, r)| r).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn load_slot_skips_down_slots_and_reports_hard_errors() {
        let switches = Arc::new(Mutex::new(Vec::new()));
        let (factory, heal) = fixture(Arc::clone(&switches));
        let topo = Topology::new(1, 2, factory, heal, RespawnPolicy::default()).unwrap();
        let call = LoadCall {
            name: "d".into(),
            kind: IndexKind::Rtree,
            items: Arc::new(Vec::new()),
            cell: Rect::empty(),
            spill: None,
        };
        assert!(matches!(topo.load_slot(0, &call), Some(Ok(_))));
        // Kill slot 1 mid-load: the fan-out sees None (the heal's
        // replay owns delivering this dataset), not an error.
        switches.lock().unwrap()[1].store(true, Ordering::SeqCst);
        assert!(topo.load_slot(1, &call).is_none());
        assert!(topo.wait_healthy(Duration::from_secs(5)));
    }

    #[test]
    fn zero_sized_topologies_are_rejected() {
        let switches = Arc::new(Mutex::new(Vec::new()));
        let (factory, heal) = fixture(switches);
        assert!(matches!(
            Topology::new(
                0,
                1,
                Arc::clone(&factory),
                Arc::clone(&heal),
                RespawnPolicy::default()
            ),
            Err(ServerError::InvalidShards)
        ));
        assert!(matches!(
            Topology::new(1, 0, factory, heal, RespawnPolicy::default()),
            Err(ServerError::InvalidShards)
        ));
    }
}
