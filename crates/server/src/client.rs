//! The blocking client of the wire protocol: one TCP connection, one
//! in-flight request at a time.

use crate::proto::{parse_pairs, read_frame, write_frame, Reply, Request};
use crate::sharded::RingBounds;
use crate::ServerError;
use ringjoin_core::{IndexKind, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_geom::Item;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking wire-protocol client. Every method sends one request
/// frame and waits for the matching response; `ERR` responses surface
/// as [`ServerError::Remote`].
pub struct Client {
    stream: TcpStream,
}

/// A join-shaped answer as received over the wire: the pairs (exactly
/// the server's merge order, coordinates bit-exact) plus the counters
/// the server reported on the status line.
#[derive(Clone, Debug)]
pub struct RemoteOutput {
    /// Result pairs in the server's deterministic merge order.
    pub pairs: Vec<RcjPair>,
    /// Counters parsed from the status line (fields the server did not
    /// send stay zero).
    pub stats: RcjStats,
    /// How many shards the server queried for this request.
    pub shards_queried: usize,
}

fn field_u64(reply: &Reply, key: &str) -> u64 {
    reply
        .field(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or_default()
}

impl Client {
    /// Connects to a server (e.g. `"127.0.0.1:4815"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServerError::Io(format!("cannot connect: {e}")))?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one request and parses the response.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ServerError> {
        write_frame(&mut self.stream, req.encode().as_bytes())
            .map_err(|e| ServerError::Io(format!("send failed: {e}")))?;
        let payload = read_frame(&mut self.stream)
            .map_err(|e| ServerError::Io(format!("receive failed: {e}")))?
            .ok_or_else(|| ServerError::Io("server closed the connection".into()))?;
        Reply::parse(&payload)
    }

    /// Registers a dataset on the server (every shard builds the chosen
    /// index over it). Errors if the name is already loaded.
    pub fn load(
        &mut self,
        name: &str,
        kind: IndexKind,
        items: &[Item],
    ) -> Result<Reply, ServerError> {
        self.request(&Request::Load {
            name: name.to_string(),
            kind,
            items: items.to_vec(),
        })
    }

    fn join_shaped(&mut self, req: &Request) -> Result<RemoteOutput, ServerError> {
        let reply = self.request(req)?;
        let pairs = parse_pairs(&reply.body)?;
        let stats = RcjStats {
            candidate_pairs: field_u64(&reply, "candidates"),
            result_pairs: field_u64(&reply, "result_pairs"),
            filter_heap_pops: 0,
            filter_node_reads: field_u64(&reply, "filter_node_reads"),
            verify_node_visits: field_u64(&reply, "verify_node_visits"),
        };
        Ok(RemoteOutput {
            pairs,
            stats,
            shards_queried: field_u64(&reply, "shards_queried") as usize,
        })
    }

    /// Runs a bichromatic join; the answer is byte-identical to a local
    /// single-engine run over the same data.
    pub fn join(
        &mut self,
        outer: &str,
        inner: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::Join {
            outer: outer.to_string(),
            inner: inner.to_string(),
            algo,
            bounds,
        })
    }

    /// Runs a self-join; see [`Client::join`].
    pub fn self_join(
        &mut self,
        dataset: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::SelfJoin {
            dataset: dataset.to_string(),
            algo,
            bounds,
        })
    }

    /// The `k` most compact pairs in ascending ring diameter.
    pub fn top_k(
        &mut self,
        outer: &str,
        inner: &str,
        k: usize,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::TopK {
            outer: outer.to_string(),
            inner: inner.to_string(),
            k,
        })
    }

    /// The server's resolved plan plus sharding postscript.
    pub fn explain(
        &mut self,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        k: Option<usize>,
    ) -> Result<String, ServerError> {
        let reply = self.request(&Request::Explain {
            outer: outer.to_string(),
            inner: inner.map(str::to_string),
            algo,
            k,
        })?;
        Ok(reply.body)
    }

    /// The server's catalog and request counters, as human-readable
    /// text (status-line fields first, then the body lines).
    pub fn stats(&mut self) -> Result<String, ServerError> {
        let reply = self.request(&Request::Stats)?;
        let mut out = String::new();
        for (k, v) in &reply.fields {
            out.push_str(&format!("{k} {v}\n"));
        }
        out.push_str(&reply.body);
        Ok(out)
    }

    /// Asks the server to stop after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
