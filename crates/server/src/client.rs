//! The blocking client of the wire protocol: one TCP connection,
//! requests answered in order — one at a time through the typed
//! helpers, or several in flight through [`Client::send`] /
//! [`Client::recv`] pipelining.
//!
//! Every request is stamped with an auto-incrementing `#<id>` token and
//! the echoed id is checked on receive, so a pipelining client knows
//! each reply really answers the request it thinks it does. Sockets
//! carry read/write timeouts ([`DEFAULT_TIMEOUT`] unless configured),
//! so a hung server surfaces as [`ServerError::Timeout`] instead of
//! wedging the caller forever.

use crate::proto::{parse_pairs, read_frame, write_frame, Reply, Request};
use crate::sharded::RingBounds;
use crate::ServerError;
use ringjoin_core::{IndexKind, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_geom::Item;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket read/write deadline applied by [`Client::connect`]. Generous
/// because joins genuinely take a while — the deadline is for *hung*
/// servers, not slow ones.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking wire-protocol client. Every typed method sends one
/// request frame and waits for the matching response; `ERR` responses
/// surface as [`ServerError::Remote`] (overload as
/// [`ServerError::Busy`], hangs as [`ServerError::Timeout`]).
pub struct Client {
    stream: TcpStream,
    /// Peer address captured at connect time — a shed session's socket
    /// is already disconnected by the time a retry needs to know where
    /// to reconnect.
    peer: std::net::SocketAddr,
    next_id: u64,
}

/// A join-shaped answer as received over the wire: the pairs (exactly
/// the server's merge order, coordinates bit-exact) plus the counters
/// the server reported on the status line.
#[derive(Clone, Debug)]
pub struct RemoteOutput {
    /// Result pairs in the server's deterministic merge order.
    pub pairs: Vec<RcjPair>,
    /// Counters parsed from the status line (fields the server did not
    /// send stay zero).
    pub stats: RcjStats,
    /// How many shards the server queried for this request.
    pub shards_queried: usize,
}

fn field_u64(reply: &Reply, key: &str) -> u64 {
    reply
        .field(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or_default()
}

fn io_error(context: &str, e: std::io::Error) -> ServerError {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        ServerError::Timeout(format!("{context}: {e}"))
    } else {
        ServerError::Io(format!("{context}: {e}"))
    }
}

impl Client {
    /// Connects to a server (e.g. `"127.0.0.1:4815"`) with
    /// [`DEFAULT_TIMEOUT`] socket deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        Self::connect_with_timeout(addr, Some(DEFAULT_TIMEOUT))
    }

    /// Connects with an explicit socket deadline (`None` = block
    /// forever, the pre-timeout behavior).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServerError::Io(format!("cannot connect: {e}")))?;
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map_err(|e| ServerError::Io(format!("connected socket has no peer: {e}")))?;
        let mut client = Client {
            stream,
            peer,
            next_id: 1,
        };
        client.set_timeout(timeout)?;
        Ok(client)
    }

    /// Reconfigures the socket read/write deadline.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServerError> {
        self.stream
            .set_read_timeout(timeout)
            .and_then(|()| self.stream.set_write_timeout(timeout))
            .map_err(|e| ServerError::Io(format!("cannot set socket timeout: {e}")))
    }

    /// Sends one request frame without waiting for the reply, returning
    /// the request id stamped on it. Pair with [`Client::recv`]:
    /// several sends back to back pipeline on the connection.
    pub fn send(&mut self, req: &Request) -> Result<u64, ServerError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = crate::proto::encode_request_id(id, &req.encode());
        write_frame(&mut self.stream, payload.as_bytes())
            .map_err(|e| io_error("send failed", e))?;
        Ok(id)
    }

    /// Receives one reply: the echoed request id (if any) and the
    /// parsed outcome. The outer `Result` is transport failure; the
    /// inner one is the server's verdict on that request.
    #[allow(clippy::type_complexity)]
    pub fn recv(&mut self) -> Result<(Option<u64>, Result<Reply, ServerError>), ServerError> {
        let payload = read_frame(&mut self.stream)
            .map_err(|e| io_error("receive failed", e))?
            .ok_or_else(|| ServerError::Io("server closed the connection".into()))?;
        Ok(Reply::parse_with_id(&payload))
    }

    /// Sends like [`Client::send`], but when the write fails because
    /// the peer already closed the connection, drains one pending reply
    /// first: a server that sheds a session writes its `ERR busy` frame
    /// *before* closing, and that verdict beats a raw broken pipe.
    fn send_or_pending_err(&mut self, req: &Request) -> Result<u64, ServerError> {
        match self.send(req) {
            Ok(id) => Ok(id),
            Err(send_err) => {
                if let Ok((_, Err(server_err))) = self.recv() {
                    return Err(server_err);
                }
                Err(send_err)
            }
        }
    }

    /// Sends one request and parses the response, checking that the
    /// echoed id matches.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ServerError> {
        let id = self.send_or_pending_err(req)?;
        let (reply_id, outcome) = self.recv()?;
        let reply = outcome?;
        if reply_id != Some(id) {
            return Err(ServerError::BadRequest(format!(
                "reply id {reply_id:?} does not match request id {id}"
            )));
        }
        Ok(reply)
    }

    /// [`Client::request`] with bounded, hint-honoring retries on
    /// overload *and* connection loss. A server that sheds a request
    /// from its *admission queue* answers `ERR busy retry_after_ms=<ms>`
    /// and keeps the connection open, so the retry reuses it; a server
    /// over its *session* limit closes the connection after the same
    /// verdict, and a server that is down entirely — e.g. a durable
    /// coordinator mid-restart — surfaces as an I/O error (broken pipe,
    /// reset, connection refused), in which case the retry reconnects
    /// to the peer address first, sleeping an exponentially growing
    /// backoff (25 ms doubling to a 1.6 s cap) so a client spanning a
    /// coordinator restart window rides it out instead of hanging or
    /// failing fast. Each sleep adds a small deterministic jitter
    /// (derived from the request id and attempt number — no RNG
    /// dependency) so a herd of displaced clients does not return in
    /// lockstep. Every other error, including `Timeout` and server-side
    /// `ERR` verdicts, passes through untouched.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        max_attempts: u32,
    ) -> Result<Reply, ServerError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let before = self.next_id;
            let jitter = (before.wrapping_mul(31).wrapping_add(attempt as u64 * 17)) % 23;
            match self.request(req) {
                Err(ServerError::Busy { retry_after_ms }) if attempt < max_attempts => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms + jitter));
                }
                // The connection died: session-limit shed, coordinator
                // crash, or restart window. Back off, then revive the
                // connection best-effort — if the listener is not back
                // yet the next attempt fails fast on the dead socket
                // and lands here again, charging the budget each time.
                Err(ServerError::Io(_)) if attempt < max_attempts => {
                    let backoff = (25u64 << (attempt.min(7) - 1)).min(1600);
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                    let _ = self.reconnect();
                }
                outcome => return outcome,
            }
        }
    }

    /// Replaces the connection with a fresh one to the same peer,
    /// preserving the socket deadlines (and the id counter — reply
    /// matching keeps working across the swap).
    fn reconnect(&mut self) -> Result<(), ServerError> {
        let fresh = TcpStream::connect(self.peer)
            .map_err(|e| ServerError::Io(format!("cannot reconnect: {e}")))?;
        fresh.set_nodelay(true).ok();
        let timeout = self.stream.read_timeout().ok().flatten();
        fresh
            .set_read_timeout(timeout)
            .and_then(|()| fresh.set_write_timeout(timeout))
            .map_err(|e| ServerError::Io(format!("cannot set socket timeout: {e}")))?;
        self.stream = fresh;
        Ok(())
    }

    /// Pipelines `reqs`: all requests are written before any reply is
    /// read, then the in-order replies are matched to their request ids.
    /// The first server-side `ERR` aborts with that request's error
    /// (later replies of the batch are drained first, keeping the
    /// connection usable).
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Reply>, ServerError> {
        let mut ids = Vec::with_capacity(reqs.len());
        for req in reqs {
            ids.push(self.send_or_pending_err(req)?);
        }
        let mut replies = Vec::with_capacity(reqs.len());
        let mut first_err = None;
        for &id in &ids {
            let (reply_id, outcome) = self.recv()?;
            match outcome {
                // An ERR with no id is unsolicited — the server shed
                // this *session* (e.g. over the session limit), not one
                // request of the batch; nothing more is coming.
                Err(e) if reply_id.is_none() => return Err(e),
                Err(e) if reply_id == Some(id) => first_err = first_err.or(Some(e)),
                Ok(reply) if reply_id == Some(id) => replies.push(reply),
                _ => {
                    return Err(ServerError::BadRequest(format!(
                        "pipelined reply id {reply_id:?} does not match request id {id}"
                    )))
                }
            }
        }
        match first_err {
            None => Ok(replies),
            Some(e) => Err(e),
        }
    }

    /// Registers a dataset on the server (every shard builds the chosen
    /// index over it). Errors if the name is already loaded.
    pub fn load(
        &mut self,
        name: &str,
        kind: IndexKind,
        items: &[Item],
    ) -> Result<Reply, ServerError> {
        self.request(&Request::Load {
            name: name.to_string(),
            kind,
            items: items.to_vec(),
        })
    }

    /// Inserts new points into a live dataset; the whole batch is
    /// refused if any id is already present. The `OK` reply carries the
    /// dataset's new `epoch=`.
    pub fn insert(&mut self, name: &str, items: &[Item]) -> Result<Reply, ServerError> {
        self.request(&Request::Insert {
            name: name.to_string(),
            items: items.to_vec(),
        })
    }

    /// Deletes points from a live dataset by id; the whole batch is
    /// refused if any id is absent.
    pub fn delete(&mut self, name: &str, ids: &[u64]) -> Result<Reply, ServerError> {
        self.request(&Request::Delete {
            name: name.to_string(),
            ids: ids.to_vec(),
        })
    }

    /// Inserts-or-replaces points in a live dataset; never refused.
    pub fn upsert(&mut self, name: &str, items: &[Item]) -> Result<Reply, ServerError> {
        self.request(&Request::Upsert {
            name: name.to_string(),
            items: items.to_vec(),
        })
    }

    /// Decodes a join-shaped reply (`JOIN`/`SELFJOIN`/`TOPK`) into a
    /// [`RemoteOutput`] — public so pipelining callers can decode the
    /// replies [`Client::pipeline`] hands back.
    pub fn decode_output(reply: &Reply) -> Result<RemoteOutput, ServerError> {
        let pairs = parse_pairs(&reply.body)?;
        let stats = RcjStats {
            candidate_pairs: field_u64(reply, "candidates"),
            result_pairs: field_u64(reply, "result_pairs"),
            filter_heap_pops: field_u64(reply, "heap_pops"),
            filter_node_reads: field_u64(reply, "filter_node_reads"),
            verify_node_visits: field_u64(reply, "verify_node_visits"),
        };
        Ok(RemoteOutput {
            pairs,
            stats,
            shards_queried: field_u64(reply, "shards_queried") as usize,
        })
    }

    fn join_shaped(&mut self, req: &Request) -> Result<RemoteOutput, ServerError> {
        let reply = self.request(req)?;
        Self::decode_output(&reply)
    }

    /// Runs a bichromatic join; the answer is byte-identical to a local
    /// single-engine run over the same data.
    pub fn join(
        &mut self,
        outer: &str,
        inner: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::Join {
            outer: outer.to_string(),
            inner: inner.to_string(),
            algo,
            bounds,
        })
    }

    /// Runs a self-join; see [`Client::join`].
    pub fn self_join(
        &mut self,
        dataset: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::SelfJoin {
            dataset: dataset.to_string(),
            algo,
            bounds,
        })
    }

    /// The `k` most compact pairs in ascending ring diameter.
    pub fn top_k(
        &mut self,
        outer: &str,
        inner: &str,
        k: usize,
    ) -> Result<RemoteOutput, ServerError> {
        self.join_shaped(&Request::TopK {
            outer: outer.to_string(),
            inner: inner.to_string(),
            k,
        })
    }

    /// The server's resolved plan plus sharding postscript.
    pub fn explain(
        &mut self,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        k: Option<usize>,
    ) -> Result<String, ServerError> {
        let reply = self.request(&Request::Explain {
            outer: outer.to_string(),
            inner: inner.map(str::to_string),
            algo,
            k,
        })?;
        Ok(reply.body)
    }

    /// The server's catalog and request counters, as human-readable
    /// text (status-line fields first, then the body lines).
    pub fn stats(&mut self) -> Result<String, ServerError> {
        let reply = self.request(&Request::Stats)?;
        let mut out = String::new();
        for (k, v) in &reply.fields {
            if k == "id" {
                continue; // transport detail, not a statistic
            }
            out.push_str(&format!("{k} {v}\n"));
        }
        out.push_str(&reply.body);
        Ok(out)
    }

    /// Asks the server to stop after acknowledging.
    pub fn shutdown(&mut self) -> Result<(), ServerError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
