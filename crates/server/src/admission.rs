//! Admission control for the serving front door: a bounded queue of
//! permits in front of the shard workers.
//!
//! Engine-bound requests (loads, joins, top-k) must [`Admission::admit`]
//! before they touch the [`ShardedEngine`](crate::ShardedEngine). At
//! most `max_inflight` requests run at once; up to `queue_depth` more
//! wait their turn; everything beyond that is rejected immediately with
//! [`Busy`], which the server turns into an `ERR busy` frame carrying a
//! retry hint. The queue is *bounded by construction* — an overload can
//! delay clients but can never grow server memory without limit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// The admission queue is full: the request should be bounced back to
/// the client with a retry hint, not enqueued.
#[derive(Clone, Copy, Debug)]
pub struct Busy;

struct Gate {
    /// Requests currently holding a permit.
    active: usize,
    /// Requests blocked in [`Admission::admit`] waiting for a permit.
    waiting: usize,
}

/// The bounded admission queue. Cheap to share behind the server's
/// `Arc`; one instance fronts all sessions.
pub struct Admission {
    gate: Mutex<Gate>,
    turnstile: Condvar,
    max_inflight: usize,
    queue_depth: usize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// An admitted request's slot, released on drop.
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Admission {
    /// `max_inflight >= 1` requests run concurrently; `queue_depth`
    /// more may wait.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            gate: Mutex::new(Gate {
                active: 0,
                waiting: 0,
            }),
            turnstile: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Takes a permit, blocking in the queue if the server is at
    /// capacity — or fails fast with [`Busy`] if the queue itself is
    /// full.
    pub fn admit(&self) -> Result<Permit<'_>, Busy> {
        let mut gate = self.gate.lock().expect("admission gate poisoned");
        if gate.active >= self.max_inflight {
            if gate.waiting >= self.queue_depth {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(Busy);
            }
            gate.waiting += 1;
            while gate.active >= self.max_inflight {
                gate = self.turnstile.wait(gate).expect("admission gate poisoned");
            }
            gate.waiting -= 1;
        }
        gate.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit { admission: self })
    }

    /// Lifetime counters: `(admitted, rejected_busy)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut gate = self.admission.gate.lock().expect("admission gate poisoned");
        gate.active -= 1;
        drop(gate);
        self.admission.turnstile.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_concurrency_and_queue_overflow_is_busy() {
        let adm = Admission::new(1, 0);
        let held = adm.admit().unwrap();
        // Slot taken, zero queue: the next request is shed immediately.
        assert!(adm.admit().is_err());
        assert_eq!(adm.stats(), (1, 1));
        drop(held);
        // Released: the slot is available again.
        let again = adm.admit().unwrap();
        drop(again);
        assert_eq!(adm.stats(), (2, 1));
    }

    #[test]
    fn queued_requests_run_after_the_active_one_releases() {
        use std::sync::Arc;
        let adm = Arc::new(Admission::new(1, 4));
        let held = adm.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let adm = Arc::clone(&adm);
            handles.push(std::thread::spawn(move || {
                let permit = adm.admit().expect("within queue depth");
                drop(permit);
            }));
        }
        // Give the waiters time to enqueue, then open the turnstile.
        while adm.gate.lock().unwrap().waiting < 3 {
            std::thread::yield_now();
        }
        drop(held);
        for h in handles {
            h.join().unwrap();
        }
        let (admitted, rejected) = adm.stats();
        assert_eq!(admitted, 4);
        assert_eq!(rejected, 0);
        assert_eq!(adm.gate.lock().unwrap().active, 0);
    }
}
