//! Admission control for the serving front door: a bounded queue of
//! permits in front of the shard workers.
//!
//! Engine-bound requests (loads, joins, top-k) must [`Admission::admit`]
//! before they touch the [`ShardedEngine`](crate::ShardedEngine). At
//! most `max_inflight` requests run at once; up to `queue_depth` more
//! wait their turn; everything beyond that is rejected immediately with
//! [`Busy`], which the server turns into an `ERR busy` frame carrying a
//! retry hint. The queue is *bounded by construction* — an overload can
//! delay clients but can never grow server memory without limit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// The admission queue is full: the request should be bounced back to
/// the client with a retry hint, not enqueued.
#[derive(Clone, Copy, Debug)]
pub struct Busy;

struct Gate {
    /// Requests currently holding a permit.
    active: usize,
    /// Next ticket to hand out to an arriving request.
    next_ticket: u64,
    /// Lowest ticket not yet granted a permit. Requests are admitted
    /// strictly in ticket order (`next_ticket - now_serving` is the
    /// queue length), so a client that pipelines requests back-to-back
    /// re-enters at the *end* of the queue each time — it can keep the
    /// server busy, but it can no longer starve a waiter that arrived
    /// before its next request.
    now_serving: u64,
}

impl Gate {
    fn waiting(&self) -> usize {
        (self.next_ticket - self.now_serving) as usize
    }
}

/// The bounded admission queue. Cheap to share behind the server's
/// `Arc`; one instance fronts all sessions.
pub struct Admission {
    gate: Mutex<Gate>,
    turnstile: Condvar,
    max_inflight: usize,
    queue_depth: usize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// An admitted request's slot, released on drop.
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Admission {
    /// `max_inflight >= 1` requests run concurrently; `queue_depth`
    /// more may wait.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            gate: Mutex::new(Gate {
                active: 0,
                next_ticket: 0,
                now_serving: 0,
            }),
            turnstile: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Takes a permit, blocking in the queue if the server is at
    /// capacity — or fails fast with [`Busy`] if the queue itself is
    /// full. Waiters are granted permits in strict FIFO ticket order: a
    /// request that arrives while others wait queues behind them
    /// instead of barging into a freshly freed slot (the old behaviour,
    /// under which one client pipelining requests on a hot connection
    /// could re-take the slot forever and starve every queued waiter).
    pub fn admit(&self) -> Result<Permit<'_>, Busy> {
        let mut gate = self.gate.lock().expect("admission gate poisoned");
        if gate.active >= self.max_inflight || gate.waiting() > 0 {
            if gate.waiting() >= self.queue_depth {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(Busy);
            }
            let ticket = gate.next_ticket;
            gate.next_ticket += 1;
            while gate.now_serving < ticket || gate.active >= self.max_inflight {
                gate = self.turnstile.wait(gate).expect("admission gate poisoned");
            }
            gate.now_serving += 1;
            // More than one slot may be free (max_inflight > 1): let the
            // next ticket holder re-check instead of waiting for a drop.
            self.turnstile.notify_all();
        }
        gate.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(Permit { admission: self })
    }

    /// Lifetime counters: `(admitted, rejected_busy)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.admitted.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut gate = self.admission.gate.lock().expect("admission gate poisoned");
        gate.active -= 1;
        drop(gate);
        // notify_all, not notify_one: only the holder of `now_serving`
        // may proceed, and notify_one could wake a later ticket that
        // just re-sleeps — losing the wakeup and deadlocking the queue.
        self.admission.turnstile.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_concurrency_and_queue_overflow_is_busy() {
        let adm = Admission::new(1, 0);
        let held = adm.admit().unwrap();
        // Slot taken, zero queue: the next request is shed immediately.
        assert!(adm.admit().is_err());
        assert_eq!(adm.stats(), (1, 1));
        drop(held);
        // Released: the slot is available again.
        let again = adm.admit().unwrap();
        drop(again);
        assert_eq!(adm.stats(), (2, 1));
    }

    #[test]
    fn queued_requests_run_after_the_active_one_releases() {
        use std::sync::Arc;
        let adm = Arc::new(Admission::new(1, 4));
        let held = adm.admit().unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let adm = Arc::clone(&adm);
            handles.push(std::thread::spawn(move || {
                let permit = adm.admit().expect("within queue depth");
                drop(permit);
            }));
        }
        // Give the waiters time to enqueue, then open the turnstile.
        while adm.gate.lock().unwrap().waiting() < 3 {
            std::thread::yield_now();
        }
        drop(held);
        for h in handles {
            h.join().unwrap();
        }
        let (admitted, rejected) = adm.stats();
        assert_eq!(admitted, 4);
        assert_eq!(rejected, 0);
        assert_eq!(adm.gate.lock().unwrap().active, 0);
    }

    #[test]
    fn waiters_are_granted_in_fifo_ticket_order() {
        use std::sync::Arc;
        let adm = Arc::new(Admission::new(1, 8));
        let held = adm.admit().unwrap();
        let grant_order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..5 {
            let adm = Arc::clone(&adm);
            let grant_order = Arc::clone(&grant_order);
            // Enqueue strictly one at a time so arrival order is known.
            while adm.gate.lock().unwrap().waiting() < i {
                std::thread::yield_now();
            }
            handles.push(std::thread::spawn(move || {
                let permit = adm.admit().expect("within queue depth");
                grant_order.lock().unwrap().push(i);
                drop(permit);
            }));
        }
        while adm.gate.lock().unwrap().waiting() < 5 {
            std::thread::yield_now();
        }
        drop(held);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *grant_order.lock().unwrap(),
            vec![0, 1, 2, 3, 4],
            "permits must be granted in arrival order"
        );
    }

    #[test]
    fn a_barger_queues_behind_existing_waiters() {
        use std::sync::Arc;
        let adm = Arc::new(Admission::new(1, 4));
        let held = adm.admit().unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || {
            let permit = adm2.admit().expect("within queue depth");
            drop(permit);
        });
        while adm.gate.lock().unwrap().waiting() < 1 {
            std::thread::yield_now();
        }
        drop(held);
        // The slot was just freed, but the queued waiter owns the next
        // ticket: a new arrival joins the queue rather than barging.
        let barger = adm.admit().expect("within queue depth");
        waiter.join().unwrap();
        drop(barger);
        assert_eq!(adm.stats(), (3, 0));
    }
}
