//! The sharded RCJ session: one [`Engine`] per shard behind a space
//! partition, with deterministic cross-shard merges.
//!
//! # Why shards replicate the index
//!
//! The ring constraint is **global**: a pair qualifies only if its
//! circle is empty of *every* point of `P ∪ Q`, so no shard can verify
//! a pair from a fragment of the data alone. The sharding that
//! preserves exact semantics therefore partitions the **work**, not the
//! data: each shard owns one half-open cell of a longest-axis
//! median-split [`SpacePartition`] and drives the join for the outer
//! leaf groups whose region centers fall in its cell, against a full
//! (read-only) index replica it can filter and verify on locally. This
//! is the classic replicated-index / partitioned-query serving layout —
//! on a multi-node deployment each shard engine is a node.
//!
//! # Determinism
//!
//! * **Join / self-join** — shards emit pairs tagged with the global
//!   outer-leaf index ([`Plan::run_leaves`]); the merge orders tagged
//!   pairs by `(leaf index, shard id)` (the shard id can never tie —
//!   each leaf is owned by exactly one shard), reproducing the
//!   single-engine output *byte for byte*, with per-shard [`RcjStats`]
//!   merging to the sequential totals.
//! * **Top-k** — shards run diameter-ordered streams restricted to
//!   their cell ([`Plan::stream_by_diameter_in`]), each limited to `k`,
//!   and a k-bounded heap merge keeps the `k` smallest overall — the
//!   early exit survives sharding. Exact diameter ties are ordered by
//!   pair key — the same canonical tie order the single-engine
//!   diameter stream emits — so byte-identity holds even through
//!   duplicate coordinates. (Top-k *stats* do depend on the partition,
//!   since partition-shaped work is precisely what early exit avoids.)
//!
//! Shard workers are long-lived threads owning their engines, so index
//! construction is paid once per `LOAD` and queries are message
//! round-trips — the in-process shape of the wire protocol the
//! [`Server`](crate::Server) speaks.

use crate::partition::SpacePartition;
use crate::plan_cache::{PlanCache, QueryShape};
use crate::remote::{RemoteShard, SpawnedShard};
use crate::topology::{
    BackendFactory, ExplainCall, HealFn, JoinCall, LoadCall, LoadOutcome, RespawnPolicy,
    ShardBackend, ShardFault, TopKCall, Topology, UpdateCall,
};
use crate::ServerError;
use ringjoin_core::planner::{DatasetSummary, JoinCostModel};
use ringjoin_core::{Engine, IndexKind, Plan, QueryBuilder, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_geom::{Item, Point, Rect};
use ringjoin_storage::{BufferPool, Wal};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// A region-of-interest restriction on a join: report only pairs whose
/// ring (the pair's circle) intersects `bounds` and whose diameter is at
/// most `max_diameter`.
///
/// The pair's `q` then necessarily lies within
/// `bounds.inflate(max_diameter)` — the **ring-expanded bounds** — which
/// is what routes the request to the subset of shards (and outer leaf
/// groups) that can contribute.
#[derive(Clone, Copy, Debug)]
pub struct RingBounds {
    /// The region of interest the ring must intersect.
    pub bounds: Rect,
    /// Upper bound on the ring diameter of reported pairs (must be
    /// non-negative and finite).
    pub max_diameter: f64,
}

impl RingBounds {
    /// The ring-expanded routing rectangle.
    pub fn inflated(&self) -> Rect {
        self.bounds.inflate(self.max_diameter)
    }

    /// Does `pair` satisfy the restriction? (Circle-rectangle
    /// intersection: the circle meets `bounds` iff the center is within
    /// one radius of it.)
    pub fn admits(&self, pair: &RcjPair) -> bool {
        pair.diameter() <= self.max_diameter
            && self.bounds.mindist_sq(pair.center()) <= pair.radius() * pair.radius()
    }
}

/// What a sharded query returns: the merged pairs, the merged run
/// counters, and how many shards participated.
#[derive(Clone, Debug)]
pub struct ShardedOutput {
    /// Merged result pairs (leaf order for joins, ascending ring
    /// diameter for top-k).
    pub pairs: Vec<RcjPair>,
    /// Per-shard [`RcjStats`] merged component-wise.
    pub stats: RcjStats,
    /// Number of shards the request fanned out to.
    pub shards_queried: usize,
}

/// Catalog description of one loaded dataset, as reported by
/// [`ShardedEngine::load`] and [`ShardedEngine::dataset`].
#[derive(Clone, Debug)]
pub struct DatasetInfo {
    /// Registered name.
    pub name: String,
    /// Index kind every shard built.
    pub kind: IndexKind,
    /// Total points.
    pub items: u64,
    /// Mutation epoch: `0` at load, `+1` per applied update batch.
    pub epoch: u64,
    /// Outer leaf groups owned by each shard (sums to the dataset's
    /// leaf-group count).
    pub leaves_per_shard: Vec<usize>,
    /// Points located in each shard's cell.
    pub items_per_shard: Vec<u64>,
}

/// One live-update operation against a served dataset. A batch
/// ([`ShardedEngine::update`]) applies its operations in order,
/// atomically: validation runs against the coordinator's catalog
/// pointset with earlier operations simulated, so a failing batch is
/// rejected before any worker sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation {
    /// Add a new point; its id must not exist yet.
    Insert(Item),
    /// Remove a point by id; the id must exist.
    Delete(u64),
    /// Insert-or-replace; never fails validation.
    Upsert(Item),
}

/// What [`ShardedEngine::update`] reports for one applied batch.
#[derive(Clone, Debug)]
pub struct UpdateInfo {
    /// The mutated dataset.
    pub name: String,
    /// The dataset's new mutation epoch.
    pub epoch: u64,
    /// How many operations the batch carried.
    pub applied: usize,
    /// Total points after the batch.
    pub items: u64,
}

// ---------------------------------------------------------------------
// Worker-side request/reply messages
// ---------------------------------------------------------------------

/// Disk-mode instruction riding on a `LoadReq`: where the shared page
/// file lives and whether this shard materializes it. Exactly one shard
/// per `LOAD` is the writer (shard 0, which loads *first*); the others
/// attach to the file it wrote. Replicas are built identically, so
/// their page-id spaces coincide with the file's byte for byte.
pub(crate) struct SpillSpec {
    pub(crate) path: PathBuf,
    pub(crate) writer: bool,
}

/// What a shard returns for one load: (owned leaf count, union of owned
/// leaf regions, catalog summary).
pub(crate) type LoadReply = Result<(usize, Rect, DatasetSummary), String>;

pub(crate) struct LoadReq {
    pub(crate) name: String,
    pub(crate) kind: IndexKind,
    pub(crate) items: Vec<Item>,
    pub(crate) cell: Rect,
    pub(crate) spill: Option<SpillSpec>,
    pub(crate) reply: Sender<LoadReply>,
}

/// What a shard returns for one join request: leaf-tagged pairs plus
/// its run counters.
pub(crate) type ShardJoinReply = (Vec<(usize, RcjPair)>, RcjStats);

pub(crate) struct JoinReq {
    pub(crate) outer: String,
    /// `None` = self-join of `outer`.
    pub(crate) inner: Option<String>,
    pub(crate) algo: RcjAlgorithm,
    pub(crate) bounds: Option<RingBounds>,
    pub(crate) reply: Sender<Result<ShardJoinReply, String>>,
}

/// One mutation batch bound for a worker; the reply is load-shaped
/// because an update moves leaves and shifts extents the same way a
/// load establishes them.
pub(crate) struct UpdateReq {
    pub(crate) name: String,
    pub(crate) ops: Arc<Vec<Mutation>>,
    pub(crate) target_epoch: u64,
    pub(crate) reply: Sender<LoadReply>,
}

pub(crate) struct TopKReq {
    pub(crate) outer: String,
    pub(crate) inner: Option<String>,
    pub(crate) k: usize,
    pub(crate) reply: Sender<Result<(Vec<RcjPair>, RcjStats), String>>,
}

pub(crate) struct ExplainReq {
    pub(crate) outer: String,
    pub(crate) inner: Option<String>,
    pub(crate) algo: RcjAlgorithm,
    pub(crate) top_k: Option<usize>,
    pub(crate) reply: Sender<Result<String, String>>,
}

pub(crate) enum ShardMsg {
    Load(LoadReq),
    Update(UpdateReq),
    Join(JoinReq),
    TopK(TopKReq),
    Explain(ExplainReq),
    Shutdown,
}

// ---------------------------------------------------------------------
// The worker: one long-lived thread owning one Engine
// ---------------------------------------------------------------------

struct WorkerDataset {
    cell: Rect,
    leaf_regions: Vec<Rect>,
    owned: Vec<usize>,
}

struct ShardWorker {
    engine: Engine,
    datasets: BTreeMap<String, WorkerDataset>,
    /// The pool shared by **every** shard worker of this
    /// [`ShardedEngine`]. Replicas are built identically, so their
    /// page-id spaces coincide — inner-tree pages one shard's join
    /// faults in are warm for every other shard's, instead of each
    /// replica re-faulting its private engine buffer.
    pool: BufferPool,
}

impl ShardWorker {
    fn run(mut self, rx: Receiver<ShardMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                ShardMsg::Load(req) => {
                    let out = self.load(req.name, req.kind, req.items, req.cell, req.spill);
                    let _ = req.reply.send(out);
                }
                ShardMsg::Update(req) => {
                    let out = self.update(&req.name, &req.ops, req.target_epoch);
                    let _ = req.reply.send(out);
                }
                ShardMsg::Join(req) => {
                    let out = self.join(&req.outer, req.inner.as_deref(), req.algo, req.bounds);
                    let _ = req.reply.send(out);
                }
                ShardMsg::TopK(req) => {
                    let out = self.top_k(&req.outer, req.inner.as_deref(), req.k);
                    let _ = req.reply.send(out);
                }
                ShardMsg::Explain(req) => {
                    let out = self.explain(&req.outer, req.inner.as_deref(), req.algo, req.top_k);
                    let _ = req.reply.send(out);
                }
                ShardMsg::Shutdown => break,
            }
        }
    }

    fn load(
        &mut self,
        name: String,
        kind: IndexKind,
        items: Vec<Item>,
        cell: Rect,
        spill: Option<SpillSpec>,
    ) -> Result<(usize, Rect, DatasetSummary), String> {
        let handle = self.engine.load(name.clone(), items).index(kind);
        let summary = handle.summary();
        if let Some(spill) = spill {
            let pager = self.engine.pager();
            if spill.writer {
                // Shard 0 materializes the page file; its pager becomes
                // disk-native (write-through keeps the file current for
                // later loads, where the same-path spill is a no-op).
                pager
                    .borrow_mut()
                    .spill_to(&spill.path)
                    .map_err(|e| format!("spilling pages to {}: {e}", spill.path.display()))?;
            } else {
                // Replicas were built identically, so the writer's page
                // file *is* their page space: attach without copying.
                pager.borrow_mut().attach_store(&spill.path);
            }
        }
        let (owned_count, extent) = self.reindex_ownership(&name, cell)?;
        Ok((owned_count, extent, summary))
    }

    /// Recomputes which leaf groups this worker owns for `name` (their
    /// regions changed under a load or a mutation batch) and records
    /// them, returning the owned count and extent the coordinator's
    /// routing catalog wants.
    fn reindex_ownership(&mut self, name: &str, cell: Rect) -> Result<(usize, Rect), String> {
        let leaf_regions = self.engine.leaf_regions(name).map_err(|e| e.to_string())?;
        let owned: Vec<usize> = leaf_regions
            .iter()
            .enumerate()
            .filter(|(_, r)| cell.contains_point_half_open(r.center()))
            .map(|(i, _)| i)
            .collect();
        let mut extent = Rect::empty();
        for &i in &owned {
            extent.expand_rect(leaf_regions[i]);
        }
        let owned_count = owned.len();
        self.datasets.insert(
            name.to_string(),
            WorkerDataset {
                cell,
                leaf_regions,
                owned,
            },
        );
        Ok((owned_count, extent))
    }

    /// Applies one mutation batch, keyed by its **target epoch** for
    /// idempotent delivery: a worker already at `target_epoch` applied
    /// this very batch on a previous delivery whose reply was lost —
    /// it re-answers without re-applying — and any epoch other than
    /// `target_epoch - 1` is a hard refusal (the worker has diverged
    /// and must be rebuilt from the log).
    ///
    /// The engine applies with `version_store(false)`: the coordinator
    /// serializes updates against every query under its catalog write
    /// lock, so no reader needs the retired epoch's page file. A worker
    /// *attached* to a shared page file detaches afterwards — its local
    /// pages are now ahead of anything the (possibly dead) writer wrote
    /// through — and serves resident from its own page space.
    fn update(
        &mut self,
        name: &str,
        ops: &[Mutation],
        target_epoch: u64,
    ) -> Result<(usize, Rect, DatasetSummary), String> {
        let current = self
            .engine
            .dataset(name)
            .ok_or_else(|| format!("shard has no dataset {name:?}"))?
            .epoch();
        if current + 1 == target_epoch {
            let mut batch = self.engine.update(name.to_string()).version_store(false);
            for op in ops {
                batch = match op {
                    Mutation::Insert(it) => batch.insert([*it]),
                    Mutation::Delete(id) => batch.delete([*id]),
                    Mutation::Upsert(it) => batch.upsert([*it]),
                };
            }
            let handle = batch.apply().map_err(|e| e.to_string())?;
            debug_assert_eq!(handle.epoch(), target_epoch);
            self.engine.pager().borrow_mut().detach_unowned_store();
        } else if current != target_epoch {
            return Err(format!(
                "dataset {name:?} is at epoch {current}, cannot apply batch for epoch {target_epoch}"
            ));
        }
        let summary = self
            .engine
            .dataset(name)
            .ok_or_else(|| format!("shard has no dataset {name:?}"))?
            .summary();
        let cell = self
            .datasets
            .get(name)
            .ok_or_else(|| format!("shard has no cell recorded for {name:?}"))?
            .cell;
        let (owned_count, extent) = self.reindex_ownership(name, cell)?;
        Ok((owned_count, extent, summary))
    }

    fn plan<'e>(
        engine: &'e Engine,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        top_k: Option<usize>,
    ) -> Result<Plan<'e>, String> {
        let mut q: QueryBuilder<'e> = match inner {
            Some(inner) => engine.query().join(outer, inner),
            None => engine.query().self_join(outer),
        };
        q = q.algorithm(algo);
        if let Some(k) = top_k {
            q = q.top_k(k);
        }
        q.plan().map_err(|e| e.to_string())
    }

    fn join(
        &mut self,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<ShardJoinReply, String> {
        let ds = self
            .datasets
            .get(outer)
            .ok_or_else(|| format!("shard has no dataset {outer:?}"))?;
        let positions: Vec<usize> = match &bounds {
            None => ds.owned.clone(),
            Some(rb) => {
                let inflated = rb.inflated();
                ds.owned
                    .iter()
                    .copied()
                    .filter(|&i| ds.leaf_regions[i].intersects(inflated))
                    .collect()
            }
        };
        let plan = Self::plan(&self.engine, outer, inner, algo, None)?;
        let mut tagged: Vec<(usize, RcjPair)> = Vec::new();
        let mut stats = plan.run_leaves_pooled(&positions, &self.pool, &mut tagged);
        if let Some(rb) = bounds {
            tagged.retain(|(_, pr)| rb.admits(pr));
            stats.result_pairs = tagged.len() as u64;
        }
        Ok((tagged, stats))
    }

    fn top_k(
        &mut self,
        outer: &str,
        inner: Option<&str>,
        k: usize,
    ) -> Result<(Vec<RcjPair>, RcjStats), String> {
        let ds = self
            .datasets
            .get(outer)
            .ok_or_else(|| format!("shard has no dataset {outer:?}"))?;
        let cell = ds.cell;
        let plan = Self::plan(&self.engine, outer, inner, RcjAlgorithm::Auto, Some(k))?;
        let mut stream = plan.stream_by_diameter_in(cell);
        let pairs: Vec<RcjPair> = stream.by_ref().collect();
        Ok((pairs, stream.stats()))
    }

    fn explain(
        &mut self,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        top_k: Option<usize>,
    ) -> Result<String, String> {
        let plan = Self::plan(&self.engine, outer, inner, algo, top_k)?;
        Ok(plan.to_string())
    }
}

// ---------------------------------------------------------------------
// Local backend: the worker thread behind the ShardBackend trait
// ---------------------------------------------------------------------

/// Spawns one shard worker thread accounting through `pool` and
/// returns its mailbox. The engine is built *inside* the thread: its
/// pager is single-threaded by design (`Rc`-shared) and never leaves
/// the thread that owns it — workers only exchange plain-data
/// messages. Shared by the in-process backend below and the
/// [`remote`](crate::remote) worker server, which puts the same worker
/// loop behind a TCP listener.
pub(crate) fn spawn_worker(pool: BufferPool) -> (Sender<ShardMsg>, JoinHandle<()>) {
    let (tx, rx) = channel();
    let handle = std::thread::spawn(move || {
        let worker = ShardWorker {
            engine: Engine::new(),
            datasets: BTreeMap::new(),
            pool,
        };
        worker.run(rx);
    });
    (tx, handle)
}

/// The in-process [`ShardBackend`]: one worker thread reached over
/// channels. A closed channel (the worker thread died) surfaces as
/// [`ShardFault::Gone`], so even thread workers are respawned and
/// replayed by the topology's supervisor.
struct LocalShard {
    tx: Sender<ShardMsg>,
    handle: Option<JoinHandle<()>>,
}

impl LocalShard {
    fn spawn(pool: BufferPool) -> LocalShard {
        let (tx, handle) = spawn_worker(pool);
        LocalShard {
            tx,
            handle: Some(handle),
        }
    }

    /// One message round-trip; channel loss on either leg is a
    /// transport fault, a worker-reported error a request fault.
    fn round_trip<T>(
        &self,
        msg: ShardMsg,
        rx: Receiver<Result<T, String>>,
    ) -> Result<T, ShardFault> {
        self.tx
            .send(msg)
            .map_err(|_| ShardFault::Gone("worker thread hung up".into()))?;
        rx.recv()
            .map_err(|_| ShardFault::Gone("worker thread died mid-request".into()))?
            .map_err(ShardFault::Request)
    }

    fn stop(&mut self) {
        let _ = self.tx.send(ShardMsg::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl ShardBackend for LocalShard {
    fn load(&mut self, call: &LoadCall) -> Result<LoadOutcome, ShardFault> {
        let (reply, rx) = channel();
        let msg = ShardMsg::Load(LoadReq {
            name: call.name.clone(),
            kind: call.kind,
            items: call.items.as_ref().clone(),
            cell: call.cell,
            spill: call
                .spill
                .clone()
                .map(|(path, writer)| SpillSpec { path, writer }),
            reply,
        });
        self.round_trip(msg, rx)
            .map(|(leaves, extent, summary)| LoadOutcome {
                leaves,
                extent,
                summary,
            })
    }

    fn update(&mut self, call: &UpdateCall) -> Result<LoadOutcome, ShardFault> {
        let (reply, rx) = channel();
        let msg = ShardMsg::Update(UpdateReq {
            name: call.name.clone(),
            ops: Arc::clone(&call.ops),
            target_epoch: call.target_epoch,
            reply,
        });
        self.round_trip(msg, rx)
            .map(|(leaves, extent, summary)| LoadOutcome {
                leaves,
                extent,
                summary,
            })
    }

    fn join(&mut self, call: &JoinCall) -> Result<(Vec<(usize, RcjPair)>, RcjStats), ShardFault> {
        let (reply, rx) = channel();
        let msg = ShardMsg::Join(JoinReq {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            algo: call.algo,
            bounds: call.bounds,
            reply,
        });
        self.round_trip(msg, rx)
    }

    fn top_k(&mut self, call: &TopKCall) -> Result<(Vec<RcjPair>, RcjStats), ShardFault> {
        let (reply, rx) = channel();
        let msg = ShardMsg::TopK(TopKReq {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            k: call.k,
            reply,
        });
        self.round_trip(msg, rx)
    }

    fn explain(&mut self, call: &ExplainCall) -> Result<String, ShardFault> {
        let (reply, rx) = channel();
        let msg = ShardMsg::Explain(ExplainReq {
            outer: call.outer.clone(),
            inner: call.inner.clone(),
            algo: call.algo,
            top_k: call.k,
            reply,
        });
        self.round_trip(msg, rx)
    }

    fn shutdown(&mut self) {
        self.stop();
    }
}

impl Drop for LocalShard {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------
// Topology configuration
// ---------------------------------------------------------------------

/// Where a topology's shard workers live.
#[derive(Clone)]
pub enum WorkerSpec {
    /// In-process worker threads sharing the coordinator's buffer pool
    /// (the PR-4 serving shape, and the default).
    Local,
    /// Pre-started worker processes at these `host:port` addresses, in
    /// flat cell-major order — the list length must equal
    /// `shards * replicas`.
    Remote(Vec<String>),
    /// Child worker processes the coordinator spawns (and respawns)
    /// itself by running `<program> serve --shard-of auto` on loopback.
    Spawn {
        /// The worker binary — normally the serving binary itself.
        program: PathBuf,
    },
    /// A callback that provisions (or re-provisions) the worker for
    /// `(cell, replica)` and returns its address — the test hook for
    /// in-process TCP workers, and the seam a cluster scheduler plugs
    /// into.
    Provision(Arc<dyn Fn(usize, usize) -> Result<String, String> + Send + Sync>),
}

impl std::fmt::Debug for WorkerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerSpec::Local => write!(f, "Local"),
            WorkerSpec::Remote(addrs) => f.debug_tuple("Remote").field(addrs).finish(),
            WorkerSpec::Spawn { program } => {
                f.debug_struct("Spawn").field("program", program).finish()
            }
            WorkerSpec::Provision(_) => write!(f, "Provision(..)"),
        }
    }
}

/// Full construction knobs of a [`ShardedEngine`] topology.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Partition cells (the shard count; must be at least 1).
    pub shards: usize,
    /// Workers per cell (must be at least 1). Replicas answer
    /// byte-identically, so reads round-robin across them and fail
    /// over on loss.
    pub replicas: usize,
    /// Where the workers live.
    pub workers: WorkerSpec,
    /// Disk-native serving: the shared page file every `LOAD` spills
    /// to. With remote workers this requires a shared filesystem (the
    /// loopback deployments of the CLI and CI qualify).
    pub on_disk: Option<PathBuf>,
    /// Buffer-pool frame budget (`0` = effectively unbounded). Local
    /// workers share the coordinator's pool; each worker process has
    /// its own.
    pub buffer_pages: usize,
    /// Per-request socket deadline for remote workers.
    pub request_timeout: Duration,
    /// Supervisor respawn attempts per down event.
    pub respawn_attempts: u32,
    /// Base supervisor backoff between respawn attempts (doubled each
    /// retry).
    pub respawn_backoff: Duration,
    /// Durable coordinator state: when set, every LOAD and update batch
    /// is appended to a write-ahead log under `<data_dir>/wal` and
    /// fsynced **before** the fan-out, and construction replays the log
    /// so a restarted coordinator re-drives every shard/replica back to
    /// the logged epochs. `None` (the default) keeps the replay log in
    /// memory only — the pre-durability behavior.
    pub data_dir: Option<PathBuf>,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            shards: 1,
            replicas: 1,
            workers: WorkerSpec::Local,
            on_disk: None,
            buffer_pages: 0,
            request_timeout: Duration::from_secs(30),
            respawn_attempts: 5,
            respawn_backoff: Duration::from_millis(100),
            data_dir: None,
        }
    }
}

// ---------------------------------------------------------------------
// The sharded engine: router + catalog over the topology
// ---------------------------------------------------------------------

struct CatalogEntry {
    kind: IndexKind,
    items: u64,
    /// Mutation epoch: `0` at load, `+1` per applied update batch —
    /// always equal to every live worker's engine-level epoch for this
    /// dataset (the fan-out keeps them in lockstep; a worker that
    /// drifts is quarantined and rebuilt from the log).
    epoch: u64,
    /// The current pointset, id → point. This is what update batches
    /// validate against — the same simulate-then-apply rules as
    /// [`Engine::update`], run **once** at the coordinator so a
    /// rejected batch provably never reaches a worker — and what
    /// `items_per_shard` is recomputed from after a mutation.
    points: BTreeMap<u64, Point>,
    /// The dataset's partition cells (fixed at load; updates move
    /// points between existing cells but never re-partition).
    cells: Vec<Rect>,
    /// Leaf groups owned by each shard.
    leaves: Vec<usize>,
    /// Points located in each shard's cell.
    item_counts: Vec<u64>,
    /// Union of each shard's owned leaf regions — the shard extent
    /// ring-expanded bounds are routed against. Empty for shards that
    /// own nothing.
    extents: Vec<Rect>,
    /// The planner-facing summary (identical across shards — every
    /// replica is built the same way), kept in the catalog so the
    /// front door can resolve `Auto` without asking a worker.
    summary: DatasetSummary,
}

type Catalog = BTreeMap<String, CatalogEntry>;

/// One replayable `LOAD`: everything a respawned worker needs to
/// rebuild its replica — the full item set (kept alive by the log;
/// workers do not retain raw items after indexing) and every cell of
/// the dataset's partition.
struct LoadRecord {
    name: String,
    kind: IndexKind,
    items: Arc<Vec<Item>>,
    /// Per-cell partition rectangles (index = cell).
    cells: Vec<Rect>,
}

/// One replayable mutation batch: the operations in order plus the
/// epoch the batch produced. Replay applies records in log order, so a
/// respawned worker reconstructs exactly the live epoch — bulk load at
/// epoch 0, then every batch in sequence.
struct UpdateRecord {
    name: String,
    ops: Arc<Vec<Mutation>>,
    target_epoch: u64,
}

/// The mutation log: loads and update batches in application order.
enum LogRecord {
    Load(LoadRecord),
    Update(UpdateRecord),
}

// ---------------------------------------------------------------------
// Durable log codec + crash-fault injection
// ---------------------------------------------------------------------

/// One decoded WAL record, ready to re-drive through the public
/// [`ShardedEngine::load`] / [`ShardedEngine::update`] entry points.
/// The WAL stores the *logical* history only — no partition cells —
/// so recovery recomputes the partition deterministically and adapts
/// to a changed shard count; epochs (the replayed-history contract)
/// are shard-count-invariant.
enum WalReplay {
    Load {
        name: String,
        kind: IndexKind,
        items: Vec<Item>,
    },
    Update {
        name: String,
        target_epoch: u64,
        ops: Vec<Mutation>,
    },
}

/// Encodes a LOAD batch as a WAL payload. Text, one line per item —
/// Rust's `f64` `Display` is shortest-round-trip, the same property the
/// CLI's replay-log grammar already leans on, so decode reproduces the
/// coordinates bit for bit.
fn wal_encode_load(name: &str, kind: IndexKind, items: &[Item]) -> Vec<u8> {
    use std::fmt::Write;
    let mut out = format!("LOAD {} {} {name}\n", kind.name(), items.len());
    for it in items {
        writeln!(out, "{} {} {}", it.id, it.point.x, it.point.y).expect("string write");
    }
    out.into_bytes()
}

/// Encodes one mutation batch as a WAL payload (`+` insert, `-` delete,
/// `^` upsert — the CLI's mutation-log grammar).
fn wal_encode_update(name: &str, target_epoch: u64, ops: &[Mutation]) -> Vec<u8> {
    use std::fmt::Write;
    let mut out = format!("UPDATE {target_epoch} {} {name}\n", ops.len());
    for op in ops {
        match op {
            Mutation::Insert(it) => writeln!(out, "+ {} {} {}", it.id, it.point.x, it.point.y),
            Mutation::Delete(id) => writeln!(out, "- {id}"),
            Mutation::Upsert(it) => writeln!(out, "^ {} {} {}", it.id, it.point.x, it.point.y),
        }
        .expect("string write");
    }
    out.into_bytes()
}

fn wal_parse_item(line: &str) -> Result<Item, String> {
    let mut fields = line.split_whitespace();
    let mut next = |what: &str| -> Result<&str, String> {
        fields
            .next()
            .ok_or_else(|| format!("WAL item line {line:?} is missing its {what}"))
    };
    let id: u64 = next("id")?
        .parse()
        .map_err(|_| format!("bad id in WAL item line {line:?}"))?;
    let x: f64 = next("x")?
        .parse()
        .map_err(|_| format!("bad x in WAL item line {line:?}"))?;
    let y: f64 = next("y")?
        .parse()
        .map_err(|_| format!("bad y in WAL item line {line:?}"))?;
    Ok(Item::new(id, Point { x, y }))
}

/// Decodes one CRC-valid WAL payload. A decode failure here means a
/// record that passed its checksum but does not parse — not a torn
/// tail but genuine corruption (or a version skew), so recovery
/// surfaces it as an error instead of truncating silently.
fn wal_decode(payload: &[u8]) -> Result<WalReplay, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "WAL record is not UTF-8".to_string())?;
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| "empty WAL record".to_string())?;
    let mut fields = header.splitn(4, ' ');
    let tag = fields.next().unwrap_or_default();
    match tag {
        "LOAD" => {
            let kind = match fields.next() {
                Some("rtree") => IndexKind::Rtree,
                Some("quadtree") => IndexKind::Quadtree,
                other => return Err(format!("unknown index kind {other:?} in WAL LOAD")),
            };
            let n: usize = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad item count in WAL LOAD header {header:?}"))?;
            let name = fields
                .next()
                .ok_or_else(|| format!("missing dataset name in WAL LOAD header {header:?}"))?
                .to_string();
            let mut items = Vec::new();
            for _ in 0..n {
                let line = lines
                    .next()
                    .ok_or_else(|| "WAL LOAD record is shorter than its item count".to_string())?;
                items.push(wal_parse_item(line)?);
            }
            Ok(WalReplay::Load { name, kind, items })
        }
        "UPDATE" => {
            let target_epoch: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad target epoch in WAL UPDATE header {header:?}"))?;
            let n: usize = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad op count in WAL UPDATE header {header:?}"))?;
            let name = fields
                .next()
                .ok_or_else(|| format!("missing dataset name in WAL UPDATE header {header:?}"))?
                .to_string();
            let mut ops = Vec::new();
            for _ in 0..n {
                let line = lines
                    .next()
                    .ok_or_else(|| "WAL UPDATE record is shorter than its op count".to_string())?;
                let (sym, rest) = line
                    .split_once(' ')
                    .ok_or_else(|| format!("bad WAL mutation line {line:?}"))?;
                match sym {
                    "+" => ops.push(Mutation::Insert(wal_parse_item(rest)?)),
                    "^" => ops.push(Mutation::Upsert(wal_parse_item(rest)?)),
                    "-" => ops.push(Mutation::Delete(
                        rest.trim()
                            .parse()
                            .map_err(|_| format!("bad id in WAL delete line {line:?}"))?,
                    )),
                    _ => return Err(format!("unknown WAL mutation {sym:?}")),
                }
            }
            Ok(WalReplay::Update {
                name,
                target_epoch,
                ops,
            })
        }
        _ => Err(format!("unknown WAL record tag {tag:?} in {header:?}")),
    }
}

/// Crash-fault injection hook: aborts the process (no unwinding, no
/// flushing — the closest in-process stand-in for SIGKILL) when the
/// `RINGJOIN_CRASH_POINT` environment variable names this point. A
/// `point:N` spec skips the first `N` hits of the point first, so a
/// test can let some batches land durably and crash mid-stream. The
/// recovery tests and the CI crash-smoke job drive it with
/// `wal-pre-sync`, `wal-post-sync` and `mid-fanout`.
fn crash_point(point: &str) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    let Ok(spec) = std::env::var("RINGJOIN_CRASH_POINT") else {
        return;
    };
    let (armed, skip) = match spec.split_once(':') {
        Some((p, n)) => (p, n.parse().unwrap_or(0)),
        None => (spec.as_str(), 0u64),
    };
    if armed == point && HITS.fetch_add(1, Ordering::SeqCst) >= skip {
        eprintln!("crash-fault injection: aborting at {point}");
        std::process::abort();
    }
}

/// Appends `payload` to the durable log (if one is configured) and
/// fsyncs it — the log-*durably*-before-fan-out point. A no-op without
/// a `data_dir`.
fn wal_append(st: &mut CatalogState, payload: &[u8]) -> Result<(), ServerError> {
    if let Some(wal) = st.wal.as_mut() {
        wal.append(payload)
            .map_err(|e| ServerError::Internal(format!("WAL append failed: {e}")))?;
        crash_point("wal-pre-sync");
        wal.sync()
            .map_err(|e| ServerError::Internal(format!("WAL fsync failed: {e}")))?;
        crash_point("wal-post-sync");
    }
    Ok(())
}

/// Mirrors an `st.log.pop()` on the durable log: truncates the record
/// appended for a batch whose fan-out was abandoned, so a restart does
/// not replay it. Best-effort — the in-memory pop is authoritative for
/// the running process.
fn wal_abort(st: &mut CatalogState) {
    if let Some(wal) = st.wal.as_mut() {
        if let Err(e) = wal.abort_last() {
            eprintln!(
                "warning: WAL abort-last failed ({e}); a restart may replay an abandoned batch"
            );
        }
    }
}

/// The routing catalog and the mutation replay log behind **one**
/// lock. One lock, not two, is load-bearing: the heal function replays
/// the log and flips its slot up under the read lock, and
/// `load`/`update` append and fan out under the write lock, so a
/// healing slot can never land between "missed the fan-out" and
/// "missed the log".
#[derive(Default)]
struct CatalogState {
    catalog: Catalog,
    log: Vec<LogRecord>,
    /// The durable image of `log` (`None` without a `data_dir`). Living
    /// behind the same lock, it appends exactly when the in-memory log
    /// pushes and truncates exactly when it pops — the two can never
    /// disagree about which batches exist.
    wal: Option<Wal>,
}

/// A sharded RCJ session: shard workers (in-process threads or worker
/// processes, `replicas` of each) behind a per-dataset
/// [`SpacePartition`], answering joins, self-joins and top-k queries
/// with output byte-identical to a single [`Engine`]. See the module
/// docs for the architecture and the determinism contract, and the
/// `topology` module for routing, failover and self-healing.
///
/// Every method takes `&self`, so one engine can serve **concurrent
/// sessions** behind an `Arc`: queries hold the catalog's read lock
/// across their fan-out and merge, while [`ShardedEngine::load`] takes
/// the write lock — a `LOAD` is serialized against every in-flight
/// join and can never swap the catalog under one.
pub struct ShardedEngine {
    topology: Topology,
    state: Arc<RwLock<CatalogState>>,
    /// Resolved-algorithm cache keyed on (outer, inner, shape,
    /// requested algorithm); see the `plan_cache` module.
    plans: PlanCache,
    /// The one buffer pool all *local* shard workers account through
    /// (see [`ShardedEngine::pool_stats`]); worker processes run their
    /// own.
    pool: BufferPool,
    /// Disk-native serving: the shared page file every `LOAD` spills to
    /// (the first live worker writes it, everyone else attaches).
    /// `None` = resident serving.
    on_disk: Option<PathBuf>,
    /// Lifetime count of applied update batches, across all datasets —
    /// what `STATS` reports as `updates_total`.
    updates: AtomicU64,
    /// How many durable-log records construction replayed (LOADs
    /// re-establishing epoch 0 plus update batches advancing one epoch
    /// each) — `0` for a fresh or non-durable engine; what `STATS`
    /// reports as `recovered_epochs`.
    recovered: AtomicU64,
}

impl ShardedEngine {
    /// Spawns `shards >= 1` shard workers (rejecting `0` — a shard
    /// *count* must be at least one, mirroring the `--threads`
    /// validation of the executor). All workers share **one** buffer
    /// pool: sized effectively unbounded like each engine's default
    /// buffer, it exists so replicas warm pages for each other and so
    /// cache behavior is observable per serving process.
    pub fn new(shards: usize) -> Result<ShardedEngine, ServerError> {
        Self::with_storage(shards, None, 0)
    }

    /// [`ShardedEngine::new`] with the residency knobs of disk-native
    /// serving: when `on_disk` is set, every `LOAD` spills the page
    /// space to that file (shard 0 writes it; the replicas — whose
    /// page-id spaces coincide because they are built identically —
    /// attach to it), and the shared pool's frames become the only RAM
    /// residency of the join read path. `buffer_pages` bounds the pool
    /// (`0` = effectively unbounded, the resident default), so a served
    /// dataset several times larger than the budget still joins,
    /// faulting pages through the one shared pool.
    pub fn with_storage(
        shards: usize,
        on_disk: Option<PathBuf>,
        buffer_pages: usize,
    ) -> Result<ShardedEngine, ServerError> {
        Self::with_topology(TopologyConfig {
            shards,
            on_disk,
            buffer_pages,
            ..TopologyConfig::default()
        })
    }

    /// The fully general constructor: every knob of the topology —
    /// worker placement, replicas per cell, storage residency, request
    /// deadlines and the respawn policy. [`ShardedEngine::new`] and
    /// [`ShardedEngine::with_storage`] are thin wrappers over this.
    pub fn with_topology(cfg: TopologyConfig) -> Result<ShardedEngine, ServerError> {
        if cfg.shards == 0 || cfg.replicas == 0 {
            return Err(ServerError::InvalidShards);
        }
        let pool = BufferPool::new(if cfg.buffer_pages == 0 {
            usize::MAX / 2
        } else {
            cfg.buffer_pages
        });
        let state: Arc<RwLock<CatalogState>> = Arc::new(RwLock::new(CatalogState::default()));
        let factory: BackendFactory = match &cfg.workers {
            WorkerSpec::Local => {
                let pool = pool.clone();
                Arc::new(move |_cell, _rep| {
                    Ok(Box::new(LocalShard::spawn(pool.clone())) as Box<dyn ShardBackend>)
                })
            }
            WorkerSpec::Remote(addrs) => {
                if addrs.len() != cfg.shards * cfg.replicas {
                    return Err(ServerError::BadRequest(format!(
                        "worker list has {} address(es), need shards x replicas = {}",
                        addrs.len(),
                        cfg.shards * cfg.replicas
                    )));
                }
                let addrs = addrs.clone();
                let replicas = cfg.replicas;
                let timeout = cfg.request_timeout;
                Arc::new(move |cell, rep| {
                    RemoteShard::connect(&addrs[cell * replicas + rep], timeout)
                        .map(|b| Box::new(b) as Box<dyn ShardBackend>)
                })
            }
            WorkerSpec::Spawn { program } => {
                let program = program.clone();
                let timeout = cfg.request_timeout;
                Arc::new(move |_cell, _rep| {
                    SpawnedShard::launch(&program, timeout)
                        .map(|b| Box::new(b) as Box<dyn ShardBackend>)
                })
            }
            WorkerSpec::Provision(provision) => {
                let provision = Arc::clone(provision);
                let timeout = cfg.request_timeout;
                Arc::new(move |cell, rep| {
                    let addr = provision(cell, rep)?;
                    RemoteShard::connect(&addr, timeout)
                        .map(|b| Box::new(b) as Box<dyn ShardBackend>)
                })
            }
        };
        let heal: HealFn = {
            let state = Arc::clone(&state);
            let on_disk = cfg.on_disk.clone();
            Arc::new(move |cell, mut backend, slot| {
                // Catalog READ lock: excludes a concurrent LOAD's write
                // lock, so the replay plus the up flip are atomic with
                // respect to new datasets (see the topology module
                // docs for the race this closes).
                let st = state.read().expect("catalog lock poisoned");
                let mut replayed = 0u64;
                for rec in &st.log {
                    match rec {
                        LogRecord::Load(rec) => backend
                            .load(&LoadCall {
                                name: rec.name.clone(),
                                kind: rec.kind,
                                items: Arc::clone(&rec.items),
                                cell: rec.cells[cell],
                                // The page file already exists: attach.
                                spill: on_disk.clone().map(|path| (path, false)),
                            })
                            .map_err(ShardFault::message)?,
                        LogRecord::Update(rec) => backend
                            .update(&UpdateCall {
                                name: rec.name.clone(),
                                ops: Arc::clone(&rec.ops),
                                target_epoch: rec.target_epoch,
                            })
                            .map_err(ShardFault::message)?,
                    };
                    replayed += 1;
                }
                slot.install(backend);
                Ok(replayed)
            })
        };
        let topology = Topology::new(
            cfg.shards,
            cfg.replicas,
            factory,
            heal,
            RespawnPolicy {
                attempts: cfg.respawn_attempts,
                backoff: cfg.respawn_backoff,
            },
        )?;
        let engine = ShardedEngine {
            topology,
            state,
            plans: PlanCache::new(),
            pool,
            on_disk: cfg.on_disk,
            updates: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        };
        if let Some(dir) = &cfg.data_dir {
            engine.recover(dir)?;
        }
        Ok(engine)
    }

    /// Opens the durable log under `<data_dir>/wal`, re-drives every
    /// recovered record through the normal [`ShardedEngine::load`] /
    /// [`ShardedEngine::update`] paths (the WAL is installed only
    /// *afterwards*, so replay does not re-append what it reads), and
    /// verifies each update batch lands on exactly the epoch the log
    /// recorded. Runs inside construction — before the server binds its
    /// listener — so no session ever observes a half-recovered catalog.
    fn recover(&self, data_dir: &std::path::Path) -> Result<(), ServerError> {
        let (payloads, wal) = Wal::open(data_dir.join("wal"))
            .map_err(|e| ServerError::Internal(format!("WAL open failed: {e}")))?;
        let mut replayed = 0u64;
        for payload in &payloads {
            match wal_decode(payload)
                .map_err(|e| ServerError::Internal(format!("WAL record {replayed} corrupt: {e}")))?
            {
                WalReplay::Load { name, kind, items } => {
                    self.load(&name, items, kind)?;
                }
                WalReplay::Update {
                    name,
                    target_epoch,
                    ops,
                } => {
                    let info = self.update(&name, ops)?;
                    if info.epoch != target_epoch {
                        return Err(ServerError::Internal(format!(
                            "recovery drove dataset {name:?} to epoch {} but the log recorded {target_epoch}",
                            info.epoch
                        )));
                    }
                }
            }
            replayed += 1;
        }
        self.recovered.store(replayed, Ordering::Relaxed);
        // The replayed-and-truncated log now becomes the live one:
        // every batch from here on appends after the recovered prefix.
        self.state.write().expect("catalog lock poisoned").wal = Some(wal);
        Ok(())
    }

    /// Number of shards (partition cells).
    pub fn shard_count(&self) -> usize {
        self.topology.cells()
    }

    /// Workers per cell.
    pub fn replicas(&self) -> usize {
        self.topology.replicas()
    }

    /// Per-slot `(state, lifetime requests)` in flat cell-major slot
    /// order (slot `cell * replicas + rep`) — what `STATS` reports as
    /// `shard<i>_state` / `shard<i>_requests`.
    pub fn shard_health(&self) -> Vec<(&'static str, u64)> {
        self.topology.health()
    }

    /// Lifetime count of datasets replayed into respawned workers.
    pub fn replays_total(&self) -> u64 {
        self.topology.replays_total()
    }

    /// Lifetime count of applied update batches across all datasets
    /// (batches replayed from the durable log at startup included —
    /// recovery applies them through the same path).
    pub fn updates_total(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Durable-log counters `(records, bytes)`: valid records currently
    /// in the WAL and their total framed size on disk. `(0, 0)` when the
    /// engine runs without a `data_dir` — what `STATS` reports as
    /// `wal_records` / `wal_bytes`.
    pub fn wal_stats(&self) -> (u64, u64) {
        self.read_state()
            .wal
            .as_ref()
            .map_or((0, 0), |w| (w.records(), w.bytes()))
    }

    /// How many durable-log records startup recovery replayed into the
    /// fleet (`0` for a fresh directory or a non-durable engine) — what
    /// `STATS` reports as `recovered_epochs`, and what the CI crash-
    /// smoke job polls to confirm a restarted coordinator healed.
    pub fn recovered_epochs(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Polls until every worker slot is up, or `timeout` lapses.
    /// Returns whether full health was reached — the test and CI hook
    /// for "the supervisor has finished healing".
    pub fn wait_healthy(&self, timeout: Duration) -> bool {
        self.topology.wait_healthy(timeout)
    }

    /// Each worker slot's OS process id in flat cell-major slot order
    /// (`None` for in-process workers and down slots) — the
    /// fault-injection hook: tests SIGKILL a real worker pid and watch
    /// the topology heal.
    pub fn worker_pids(&self) -> Vec<Option<u32>> {
        self.topology.pids()
    }

    /// Lifetime counters of the pool shared by every shard worker:
    /// `(hits, faults, prefetch hits, hit rate)` — prefetch hits are the
    /// subset of hits served from frames a prefetcher staged ahead of
    /// the workers (always `0` in resident serving). Surfaced on the
    /// wire by the `STATS` response, so cache behavior is observable
    /// end to end.
    pub fn pool_stats(&self) -> (u64, u64, u64, f64) {
        (
            self.pool.hits(),
            self.pool.faults(),
            self.pool.prefetch_hits(),
            self.pool.hit_rate(),
        )
    }

    /// Lifetime counters of the plan cache: `(hits, misses)`.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plans.stats()
    }

    fn read_state(&self) -> RwLockReadGuard<'_, CatalogState> {
        self.state.read().expect("catalog lock poisoned")
    }

    /// Names of all loaded datasets (sorted).
    pub fn dataset_names(&self) -> Vec<String> {
        self.read_state().catalog.keys().cloned().collect()
    }

    /// Catalog description of one loaded dataset.
    pub fn dataset(&self, name: &str) -> Option<DatasetInfo> {
        self.read_state().catalog.get(name).map(|e| DatasetInfo {
            name: name.to_string(),
            kind: e.kind,
            items: e.items,
            epoch: e.epoch,
            leaves_per_shard: e.leaves.clone(),
            items_per_shard: e.item_counts.clone(),
        })
    }

    /// The exact pointset of a dataset's current epoch, sorted by id —
    /// what a rebuild-from-scratch oracle bulk-loads to reproduce this
    /// sharded engine's query answers.
    pub fn dataset_items(&self, name: &str) -> Result<Vec<Item>, ServerError> {
        let st = self.read_state();
        let entry = Self::require(&st.catalog, name)?;
        Ok(entry
            .points
            .iter()
            .map(|(&id, &point)| Item::new(id, point))
            .collect())
    }

    /// Loads a dataset on every shard: computes the dataset's space
    /// partition, hands each worker the full item set (the index is
    /// replicated — see the module docs) plus its cell, and records the
    /// routing catalog. Rejects a name that is already loaded with a
    /// protocol-level error instead of silently replacing the dataset
    /// (a serving process must not swap data under a running client).
    ///
    /// Holds the catalog's **write** lock for the whole load, so a
    /// `LOAD` waits for in-flight joins (which hold read locks) and
    /// joins admitted after it wait for the load — no query ever sees a
    /// half-registered dataset.
    pub fn load(
        &self,
        name: &str,
        items: Vec<Item>,
        kind: IndexKind,
    ) -> Result<DatasetInfo, ServerError> {
        let mut st = self.state.write().expect("catalog lock poisoned");
        if st.catalog.contains_key(name) {
            return Err(ServerError::DuplicateDataset(name.to_string()));
        }
        let cells_n = self.topology.cells();
        let replicas = self.topology.replicas();
        let total = cells_n * replicas;
        let points: Vec<_> = items.iter().map(|it| it.point).collect();
        let partition = SpacePartition::build(&points, cells_n);
        let mut item_counts = vec![0u64; cells_n];
        for p in &points {
            item_counts[partition.locate(*p)] += 1;
        }
        let cells: Vec<Rect> = (0..cells_n).map(|i| partition.cell(i)).collect();
        let items = Arc::new(items);
        // The record enters the log BEFORE the fan-out (and is popped
        // on failure): a slot healing concurrently cannot flip up while
        // we hold the write lock, so it replays a log that already
        // includes this load — down replicas catch up through replay.
        st.log.push(LogRecord::Load(LoadRecord {
            name: name.to_string(),
            kind,
            items: Arc::clone(&items),
            cells: cells.clone(),
        }));
        // ... and is durable before it: the WAL fsync happens here, so
        // every batch a worker ever sees is already on disk.
        if let Err(e) = wal_append(&mut st, &wal_encode_load(name, kind, &items)) {
            st.log.pop();
            return Err(e);
        }
        let call = |cell: usize, writer: bool| LoadCall {
            name: name.to_string(),
            kind,
            items: Arc::clone(&items),
            cell: cells[cell],
            spill: self.on_disk.clone().map(|path| (path, writer)),
        };
        // Per-cell successful outcomes (identical across a cell's
        // replicas — every replica builds the same index).
        let mut successes: Vec<Vec<LoadOutcome>> = (0..cells_n).map(|_| Vec::new()).collect();
        let mut hard_err: Option<String> = None;
        let mut writer_slot = None;
        if self.on_disk.is_some() {
            // Disk-native: the first live slot (cell-major) loads
            // synchronously as the writer and materializes the shared
            // page file; everyone else attaches afterwards — never to
            // a file that is still being written.
            for idx in 0..total {
                match self.topology.load_slot(idx, &call(idx / replicas, true)) {
                    Some(Ok(out)) => {
                        successes[idx / replicas].push(out);
                        writer_slot = Some(idx);
                        break;
                    }
                    Some(Err(msg)) => {
                        hard_err = Some(msg);
                        break;
                    }
                    None => continue,
                }
            }
            if writer_slot.is_none() && hard_err.is_none() {
                st.log.pop();
                wal_abort(&mut st);
                return Err(ServerError::ShardGone(0));
            }
        }
        if hard_err.is_none() {
            // Fan out to every remaining slot concurrently (attach
            // loads in disk mode — the writer above already ran).
            let topo = &self.topology;
            let calls: Vec<Option<LoadCall>> = (0..total)
                .map(|idx| (Some(idx) != writer_slot).then(|| call(idx / replicas, false)))
                .collect();
            let outcomes: Vec<Option<Result<LoadOutcome, String>>> = std::thread::scope(|s| {
                let handles: Vec<_> = calls
                    .iter()
                    .enumerate()
                    .map(|(idx, c)| {
                        s.spawn(move || c.as_ref().and_then(|c| topo.load_slot(idx, c)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load fan-out thread panicked"))
                    .collect()
            });
            for (idx, out) in outcomes.into_iter().enumerate() {
                match out {
                    Some(Ok(out)) => successes[idx / replicas].push(out),
                    Some(Err(msg)) => {
                        hard_err = Some(msg);
                        break;
                    }
                    // Not up (or died mid-load): the supervisor's
                    // replay delivers this very record later.
                    None => {}
                }
            }
        }
        if let Some(msg) = hard_err {
            st.log.pop();
            wal_abort(&mut st);
            return Err(ServerError::Internal(msg));
        }
        // Every cell needs at least one live replica holding the data;
        // a fully dark cell cannot answer queries, so the LOAD fails.
        if let Some(cell) = successes.iter().position(|s| s.is_empty()) {
            st.log.pop();
            wal_abort(&mut st);
            return Err(ServerError::ShardGone(cell));
        }
        let mut leaves = Vec::with_capacity(cells_n);
        let mut extents = Vec::with_capacity(cells_n);
        let mut summary = None;
        for outcomes in &successes {
            leaves.push(outcomes[0].leaves);
            extents.push(outcomes[0].extent);
            summary = Some(outcomes[0].summary);
        }
        let summary = summary.expect("at least one cell");
        let points: BTreeMap<u64, Point> = items.iter().map(|it| (it.id, it.point)).collect();
        st.catalog.insert(
            name.to_string(),
            CatalogEntry {
                kind,
                items: items.len() as u64,
                epoch: 0,
                points,
                cells,
                leaves: leaves.clone(),
                item_counts: item_counts.clone(),
                extents,
                summary,
            },
        );
        Ok(DatasetInfo {
            name: name.to_string(),
            kind,
            items: items.len() as u64,
            epoch: 0,
            leaves_per_shard: leaves,
            items_per_shard: item_counts,
        })
    }

    /// Applies a mutation batch to a live dataset on every shard,
    /// advancing its epoch by one. Like [`ShardedEngine::load`] this
    /// holds the catalog's **write** lock end to end: in-flight joins
    /// (read locks) drain first, and every query admitted afterwards
    /// plans and routes against the new epoch — no query ever observes
    /// a half-applied batch.
    ///
    /// The whole batch is validated *here*, against the coordinator's
    /// authoritative pointset, under exactly the engine's rules
    /// (`INSERT` of a present id and `DELETE` of an absent id refuse the
    /// whole batch; `UPSERT` never fails). Workers therefore only see
    /// batches that must succeed — a worker-side refusal means its
    /// state has diverged from the log, and the topology layer tears it
    /// down for a rebuild. If the batch cannot land on at least one
    /// replica of every cell, it is abandoned: the log record is
    /// popped and every worker that *did* apply it is quarantined (it
    /// sits one epoch ahead of the log and would otherwise silently
    /// diverge on the next batch).
    pub fn update(&self, name: &str, ops: Vec<Mutation>) -> Result<UpdateInfo, ServerError> {
        if ops.is_empty() {
            return Err(ServerError::BadRequest(
                "an update batch needs at least one mutation".to_string(),
            ));
        }
        let mut st = self.state.write().expect("catalog lock poisoned");
        let target_epoch = {
            let entry = Self::require(&st.catalog, name)?;
            // Whole-batch simulation over the live id set — the same
            // validation the engine itself runs, so a batch accepted
            // here cannot fail on any in-sync worker.
            let mut sim: BTreeSet<u64> = entry.points.keys().copied().collect();
            for op in &ops {
                match op {
                    Mutation::Insert(it) => {
                        if !sim.insert(it.id) {
                            return Err(ServerError::BadRequest(format!(
                                "INSERT of duplicate id {} into dataset {name:?}",
                                it.id
                            )));
                        }
                    }
                    Mutation::Delete(id) => {
                        if !sim.remove(id) {
                            return Err(ServerError::BadRequest(format!(
                                "DELETE of missing id {id} from dataset {name:?}"
                            )));
                        }
                    }
                    Mutation::Upsert(it) => {
                        sim.insert(it.id);
                    }
                }
            }
            entry.epoch + 1
        };
        let ops = Arc::new(ops);
        // Log before fan-out, exactly like LOAD: a slot healing
        // concurrently replays a log that already carries this batch.
        st.log.push(LogRecord::Update(UpdateRecord {
            name: name.to_string(),
            ops: Arc::clone(&ops),
            target_epoch,
        }));
        if let Err(e) = wal_append(&mut st, &wal_encode_update(name, target_epoch, &ops)) {
            st.log.pop();
            return Err(e);
        }
        let cells_n = self.topology.cells();
        let replicas = self.topology.replicas();
        let total = cells_n * replicas;
        let topo = &self.topology;
        let call = UpdateCall {
            name: name.to_string(),
            ops: Arc::clone(&ops),
            target_epoch,
        };
        let outcomes: Vec<Option<Result<LoadOutcome, String>>> = std::thread::scope(|s| {
            let call = &call;
            let handles: Vec<_> = (0..total)
                .map(|idx| {
                    s.spawn(move || {
                        let out = topo.update_slot(idx, call);
                        if idx == 0 {
                            // Slot 0 has applied the batch; the rest of
                            // the fleet may not have — the genuinely
                            // partial state a recovery must heal.
                            crash_point("mid-fanout");
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("update fan-out thread panicked"))
                .collect()
        });
        let mut successes: Vec<Vec<LoadOutcome>> = (0..cells_n).map(|_| Vec::new()).collect();
        let mut applied_slots: Vec<usize> = Vec::new();
        let mut hard_err: Option<String> = None;
        for (idx, out) in outcomes.into_iter().enumerate() {
            match out {
                Some(Ok(out)) => {
                    successes[idx / replicas].push(out);
                    applied_slots.push(idx);
                }
                // A refusal: update_slot already tore the slot down.
                // Keep draining so applied_slots is complete.
                Some(Err(msg)) => hard_err = Some(msg),
                // Down (or died mid-apply): replay delivers this very
                // record when the supervisor heals the slot.
                None => {}
            }
        }
        let dark_cell = successes.iter().position(|s| s.is_empty());
        if hard_err.is_some() || dark_cell.is_some() {
            st.log.pop();
            wal_abort(&mut st);
            for idx in applied_slots {
                self.topology.quarantine(idx);
            }
            return Err(match hard_err {
                Some(msg) => ServerError::Internal(msg),
                None => ServerError::ShardGone(dark_cell.expect("checked above")),
            });
        }
        // Unanimous: refresh the routing catalog from the fan-out and
        // the authoritative pointset from the batch itself.
        let entry = st.catalog.get_mut(name).expect("validated above");
        for op in ops.iter() {
            match op {
                Mutation::Insert(it) | Mutation::Upsert(it) => {
                    entry.points.insert(it.id, it.point);
                }
                Mutation::Delete(id) => {
                    entry.points.remove(id);
                }
            }
        }
        entry.items = entry.points.len() as u64;
        entry.epoch = target_epoch;
        let mut item_counts = vec![0u64; cells_n];
        for p in entry.points.values() {
            let cell = entry
                .cells
                .iter()
                .position(|c| c.contains_point_half_open(*p))
                .expect("partition cells tile the plane");
            item_counts[cell] += 1;
        }
        entry.item_counts = item_counts;
        let mut leaves = Vec::with_capacity(cells_n);
        let mut extents = Vec::with_capacity(cells_n);
        let mut summary = entry.summary;
        for outcomes in &successes {
            leaves.push(outcomes[0].leaves);
            extents.push(outcomes[0].extent);
            summary = outcomes[0].summary;
        }
        entry.leaves = leaves;
        entry.extents = extents;
        entry.summary = summary;
        self.updates.fetch_add(1, Ordering::Relaxed);
        Ok(UpdateInfo {
            name: name.to_string(),
            epoch: target_epoch,
            applied: ops.len(),
            items: entry.items,
        })
    }

    fn require<'c>(catalog: &'c Catalog, name: &str) -> Result<&'c CatalogEntry, ServerError> {
        catalog
            .get(name)
            .ok_or_else(|| ServerError::UnknownDataset(name.to_string()))
    }

    /// Resolves the algorithm the shards will run, through the plan
    /// cache: `Auto` is decided once per query shape by the cost model
    /// over the outer dataset's catalog summary; concrete requests pass
    /// through (and are cached all the same, making repeats observable).
    fn resolve_algo(
        &self,
        outer: &str,
        outer_epoch: u64,
        inner: Option<(&str, u64)>,
        requested: RcjAlgorithm,
        summary: DatasetSummary,
    ) -> RcjAlgorithm {
        let shape = match inner {
            Some(_) => QueryShape::Join,
            None => QueryShape::SelfJoin,
        };
        self.plans.resolve(
            outer,
            outer_epoch,
            inner,
            shape,
            requested,
            || match requested {
                RcjAlgorithm::Auto => JoinCostModel::default().choose(&summary),
                concrete => concrete,
            },
        )
    }

    /// Shards a bichromatic join across the outer dataset's partition
    /// and merges the per-shard streams back into the exact
    /// single-engine answer (same pairs, same order, same merged
    /// [`RcjStats`]). With `bounds`, only pairs whose ring intersects
    /// the bounds (and is at most `max_diameter` wide) are computed, and
    /// only the shards whose extent meets the ring-expanded bounds are
    /// queried.
    pub fn join(
        &self,
        outer: &str,
        inner: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<ShardedOutput, ServerError> {
        let st = self.read_state();
        Self::require(&st.catalog, inner)?;
        self.join_locked(&st.catalog, outer, Some(inner), algo, bounds)
    }

    /// Sharded self-join; see [`ShardedEngine::join`].
    pub fn self_join(
        &self,
        dataset: &str,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<ShardedOutput, ServerError> {
        let st = self.read_state();
        self.join_locked(&st.catalog, dataset, None, algo, bounds)
    }

    /// Runs `op` for every participating cell — concurrently when more
    /// than one participates — and returns the results in cell order
    /// (which downstream merges rely on for byte-identity).
    fn fan_out<T: Send>(
        &self,
        cells: &[usize],
        op: impl Fn(usize) -> Result<T, ServerError> + Sync,
    ) -> Result<Vec<T>, ServerError> {
        match cells {
            [] => Ok(Vec::new()),
            [cell] => Ok(vec![op(*cell)?]),
            _ => std::thread::scope(|s| {
                let op = &op;
                let handles: Vec<_> = cells
                    .iter()
                    .map(|&cell| s.spawn(move || op(cell)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("query fan-out thread panicked"))
                    .collect()
            }),
        }
    }

    /// The shared join fan-out, run under the catalog's read lock (held
    /// by the caller through `catalog`): routing, the cache-resolved
    /// algorithm, the replica round-trips (with failover — see the
    /// topology module) and the deterministic merge.
    fn join_locked(
        &self,
        catalog: &Catalog,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        bounds: Option<RingBounds>,
    ) -> Result<ShardedOutput, ServerError> {
        let entry = Self::require(catalog, outer)?;
        if let Some(rb) = &bounds {
            validate_bounds(rb)?;
        }
        // Inner presence was validated by the caller; its epoch joins
        // the plan key so mutating either side invalidates the plan.
        let inner_keyed = inner.map(|n| (n, catalog.get(n).map_or(0, |e| e.epoch)));
        let algo = self.resolve_algo(outer, entry.epoch, inner_keyed, algo, entry.summary);
        // Route: cells owning no leaf of the outer dataset can never
        // contribute; with bounds, neither can cells whose extent
        // misses the ring-expanded bounds.
        let participating: Vec<usize> = (0..self.topology.cells())
            .filter(|&i| entry.leaves[i] > 0)
            .filter(|&i| match &bounds {
                None => true,
                Some(rb) => entry.extents[i].intersects(rb.inflated()),
            })
            .collect();
        let req = JoinCall {
            outer: outer.to_string(),
            inner: inner.map(str::to_string),
            algo,
            bounds,
        };
        let replies = self.fan_out(&participating, |cell| {
            self.topology.call(cell, |b| b.join(&req))
        })?;
        let mut stats = RcjStats::default();
        let mut tagged: Vec<(usize, RcjPair)> = Vec::new();
        for (pairs, shard_stats) in replies {
            tagged.extend(pairs);
            stats.merge(shard_stats);
        }
        // The deterministic merge: global leaf order. Each leaf is owned
        // by exactly one cell and each cell's batch is already in leaf
        // order, so a stable sort on the leaf index alone reproduces the
        // sequential emission order exactly.
        tagged.sort_by_key(|(leaf, _)| *leaf);
        Ok(ShardedOutput {
            pairs: tagged.into_iter().map(|(_, pr)| pr).collect(),
            stats,
            shards_queried: participating.len(),
        })
    }

    /// Sharded top-k by ascending ring diameter: every shard streams its
    /// cell's pairs diameter-ordered with the `k` early exit, and a
    /// k-bounded merge keeps the `k` most compact overall. Exact
    /// diameter ties are ordered by pair key, matching the
    /// single-engine stream's canonical tie order.
    pub fn top_k(&self, outer: &str, inner: &str, k: usize) -> Result<ShardedOutput, ServerError> {
        let st = self.read_state();
        Self::require(&st.catalog, inner)?;
        self.top_k_locked(&st.catalog, outer, Some(inner), k)
    }

    /// Sharded self-join top-k; see [`ShardedEngine::top_k`].
    pub fn top_k_self(&self, dataset: &str, k: usize) -> Result<ShardedOutput, ServerError> {
        let st = self.read_state();
        self.top_k_locked(&st.catalog, dataset, None, k)
    }

    fn top_k_locked(
        &self,
        catalog: &Catalog,
        outer: &str,
        inner: Option<&str>,
        k: usize,
    ) -> Result<ShardedOutput, ServerError> {
        let entry = Self::require(catalog, outer)?;
        // Top-k ownership is by q *point* location, so cells holding no
        // point of the outer dataset can never contribute.
        let participating: Vec<usize> = (0..self.topology.cells())
            .filter(|&i| entry.item_counts[i] > 0)
            .collect();
        let req = TopKCall {
            outer: outer.to_string(),
            inner: inner.map(str::to_string),
            k,
        };
        let replies = self.fan_out(&participating, |cell| {
            self.topology.call(cell, |b| b.top_k(&req))
        })?;
        let mut stats = RcjStats::default();
        let mut streams: Vec<std::vec::IntoIter<RcjPair>> = Vec::new();
        for (pairs, shard_stats) in replies {
            stats.merge(shard_stats);
            streams.push(pairs.into_iter());
        }
        let pairs = merge_top_k(streams, k);
        stats.result_pairs = pairs.len() as u64;
        Ok(ShardedOutput {
            pairs,
            stats,
            shards_queried: participating.len(),
        })
    }

    /// The resolved plan a shard runs for this query (they are identical
    /// across shards — every shard plans over the same replica), plus a
    /// sharding postscript: shard count and the per-shard routing the
    /// request would fan out with.
    pub fn explain(
        &self,
        outer: &str,
        inner: Option<&str>,
        algo: RcjAlgorithm,
        top_k: Option<usize>,
    ) -> Result<String, ServerError> {
        let st = self.read_state();
        let entry = Self::require(&st.catalog, outer)?;
        if let Some(inner) = inner {
            Self::require(&st.catalog, inner)?;
        }
        let req = ExplainCall {
            outer: outer.to_string(),
            inner: inner.map(str::to_string),
            algo,
            k: top_k,
        };
        let plan = self.topology.call(0, |b| b.explain(&req))?;
        let mut out = plan;
        out.push('\n');
        out.push_str(&format!(
            "  sharding: {} shard(s) x {} replica(s); outer leaves per shard: {:?}; items per shard: {:?}",
            self.topology.cells(),
            self.topology.replicas(),
            entry.leaves,
            entry.item_counts,
        ));
        Ok(out)
    }

    /// Stops the supervisor and every shard worker. The drop of the
    /// inner topology does the same; explicit shutdown just makes the
    /// teardown point visible at call sites.
    pub fn shutdown(mut self) {
        self.topology.shutdown();
    }
}

/// Validates a [`RingBounds`] request parameter.
fn validate_bounds(rb: &RingBounds) -> Result<(), ServerError> {
    if rb.bounds.is_empty() {
        return Err(ServerError::BadRequest("bounds rectangle is empty".into()));
    }
    if !(rb.max_diameter.is_finite() && rb.max_diameter >= 0.0) {
        return Err(ServerError::BadRequest(
            "maxd must be finite and non-negative".into(),
        ));
    }
    Ok(())
}

/// K-bounded heap merge of per-shard diameter-ordered pair streams:
/// repeatedly takes the globally smallest head by `(diameter, pair
/// key)` until `k` pairs are drawn or every stream is dry. Pulls at
/// most `k` pairs from any one stream.
fn merge_top_k(mut streams: Vec<std::vec::IntoIter<RcjPair>>, k: usize) -> Vec<RcjPair> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Each heap entry carries its pair; (diameter, key) is a total
    // order over NaN-free data, `src` resumes the right stream.
    struct Head {
        pair: RcjPair,
        src: usize,
    }
    impl PartialEq for Head {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Head {}
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.pair
                .diameter()
                .total_cmp(&other.pair.diameter())
                .then_with(|| self.pair.key().cmp(&other.pair.key()))
                .then_with(|| self.src.cmp(&other.src))
        }
    }

    let mut heap: BinaryHeap<Reverse<Head>> = streams
        .iter_mut()
        .enumerate()
        .filter_map(|(src, s)| s.next().map(|pair| Reverse(Head { pair, src })))
        .collect();
    let mut out = Vec::with_capacity(k.min(64));
    while out.len() < k {
        let Some(Reverse(top)) = heap.pop() else {
            break;
        };
        out.push(top.pair);
        if let Some(pair) = streams[top.src].next() {
            heap.push(Reverse(Head { pair, src: top.src }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_core::{Engine, RcjStream};
    use ringjoin_geom::pt;

    fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        ringjoin_testsupport::lcg_points(n, seed, span)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
            .collect()
    }

    fn unsharded(p: &[Item], q: &[Item], kind: IndexKind) -> Engine {
        let mut engine = Engine::new();
        engine.load("p", p.to_vec()).index(kind);
        engine.load("q", q.to_vec()).index(kind);
        engine
    }

    #[test]
    fn sharded_join_is_byte_identical_to_single_engine() {
        let ps = items(220, 3, 1200.0);
        let qs = items(220, 5, 1200.0);
        let engine = unsharded(&ps, &qs, IndexKind::Rtree);
        let reference = engine.query().join("q", "p").collect().unwrap();

        for shards in [1usize, 2, 3, 4] {
            let se = ShardedEngine::new(shards).unwrap();
            se.load("p", ps.clone(), IndexKind::Rtree).unwrap();
            se.load("q", qs.clone(), IndexKind::Rtree).unwrap();
            let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
            assert_eq!(out.pairs, reference.pairs, "shards={shards}");
            assert_eq!(out.stats, reference.stats, "shards={shards}");
            assert!(out.shards_queried >= 1 && out.shards_queried <= shards);
        }
    }

    #[test]
    fn sharded_self_join_matches_and_reports_once() {
        let its = items(200, 7, 900.0);
        let mut engine = Engine::new();
        engine.load("d", its.clone()).index(IndexKind::Quadtree);
        let reference = engine.query().self_join("d").collect().unwrap();

        let se = ShardedEngine::new(3).unwrap();
        se.load("d", its, IndexKind::Quadtree).unwrap();
        let out = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(out.pairs, reference.pairs);
        assert_eq!(out.stats, reference.stats);
        for pr in &out.pairs {
            assert!(pr.p.id < pr.q.id);
        }
    }

    #[test]
    fn sharded_top_k_matches_single_engine_stream() {
        let ps = items(260, 11, 2500.0);
        let qs = items(260, 13, 2500.0);
        let engine = unsharded(&ps, &qs, IndexKind::Rtree);
        let k = 15;
        let reference: Vec<RcjPair> = {
            let plan = engine.query().join("q", "p").top_k(k).plan().unwrap();
            let s: RcjStream = plan.stream();
            s.collect()
        };
        for shards in [1usize, 2, 4] {
            let se = ShardedEngine::new(shards).unwrap();
            se.load("p", ps.clone(), IndexKind::Rtree).unwrap();
            se.load("q", qs.clone(), IndexKind::Rtree).unwrap();
            let out = se.top_k("q", "p", k).unwrap();
            assert_eq!(out.pairs.len(), k);
            assert_eq!(out.pairs, reference, "shards={shards}");
            assert_eq!(out.stats.result_pairs, k as u64);
        }
    }

    #[test]
    fn ring_bounds_restrict_and_route() {
        let ps = items(300, 17, 2000.0);
        let qs = items(300, 19, 2000.0);
        let engine = unsharded(&ps, &qs, IndexKind::Rtree);
        let full = engine.query().join("q", "p").collect().unwrap();
        let rb = RingBounds {
            bounds: Rect::new(pt(400.0, 400.0), pt(900.0, 900.0)),
            max_diameter: 150.0,
        };
        let expect: Vec<RcjPair> = full
            .pairs
            .iter()
            .copied()
            .filter(|pr| rb.admits(pr))
            .collect();

        let se = ShardedEngine::new(4).unwrap();
        se.load("p", ps, IndexKind::Rtree).unwrap();
        se.load("q", qs, IndexKind::Rtree).unwrap();
        let out = se.join("q", "p", RcjAlgorithm::Auto, Some(rb)).unwrap();
        assert_eq!(out.pairs, expect);
        assert_eq!(out.stats.result_pairs, expect.len() as u64);
        assert!(
            !out.pairs.is_empty(),
            "bounds query found nothing; widen the test region"
        );
        // A far-away region of interest routes to no shard at all.
        let far = RingBounds {
            bounds: Rect::new(pt(1e6, 1e6), pt(2e6, 2e6)),
            max_diameter: 10.0,
        };
        let out = se.join("q", "p", RcjAlgorithm::Auto, Some(far)).unwrap();
        assert!(out.pairs.is_empty());
        assert_eq!(out.shards_queried, 0);
    }

    #[test]
    fn validation_rejects_bad_inputs_without_panicking() {
        assert!(matches!(
            ShardedEngine::new(0),
            Err(ServerError::InvalidShards)
        ));
        let se = ShardedEngine::new(2).unwrap();
        se.load("d", items(40, 23, 300.0), IndexKind::Rtree)
            .unwrap();
        // Duplicate name: protocol error, dataset untouched.
        let err = se.load("d", items(10, 29, 300.0), IndexKind::Quadtree);
        assert!(matches!(err, Err(ServerError::DuplicateDataset(_))));
        assert_eq!(se.dataset("d").unwrap().items, 40);
        // Unknown datasets and malformed bounds are errors, not panics.
        assert!(matches!(
            se.join("d", "missing", RcjAlgorithm::Auto, None),
            Err(ServerError::UnknownDataset(_))
        ));
        assert!(matches!(
            se.top_k("missing", "d", 3),
            Err(ServerError::UnknownDataset(_))
        ));
        let bad = RingBounds {
            bounds: Rect::empty(),
            max_diameter: 1.0,
        };
        assert!(matches!(
            se.self_join("d", RcjAlgorithm::Auto, Some(bad)),
            Err(ServerError::BadRequest(_))
        ));
        let nan = RingBounds {
            bounds: Rect::new(pt(0.0, 0.0), pt(1.0, 1.0)),
            max_diameter: f64::NAN,
        };
        assert!(matches!(
            se.self_join("d", RcjAlgorithm::Auto, Some(nan)),
            Err(ServerError::BadRequest(_))
        ));
    }

    /// Applies a mutation batch to a plain single engine — the oracle
    /// every sharded update must stay byte-identical to. (A bulk-load
    /// rebuild over the same points is only *set*-equal: pair emission
    /// order follows tree structure, and an incrementally mutated tree
    /// legitimately differs from a bulk-built one.)
    fn apply_to_engine(engine: &mut Engine, name: &str, ops: &[Mutation]) {
        let mut batch = engine.update(name.to_string());
        for op in ops {
            batch = match op {
                Mutation::Insert(it) => batch.insert([*it]),
                Mutation::Delete(id) => batch.delete([*id]),
                Mutation::Upsert(it) => batch.upsert([*it]),
            };
        }
        batch.apply().expect("oracle batch must apply");
    }

    #[test]
    fn updates_advance_epoch_and_match_an_identically_mutated_engine() {
        let ps = items(180, 3, 1200.0);
        let qs = items(180, 5, 1200.0);
        // A mixed batch on p: fresh inserts (some outside the load-time
        // extent), deletes, and an upsert that moves a surviving point.
        let p_batch = vec![
            Mutation::Insert(Item::new(900, pt(-200.0, 1500.0))),
            Mutation::Insert(Item::new(901, pt(640.0, 230.0))),
            Mutation::Delete(17),
            Mutation::Delete(44),
            Mutation::Upsert(Item::new(50, pt(333.25, 777.5))),
            Mutation::Upsert(Item::new(902, pt(10.0, 10.0))),
        ];
        let q_batch = vec![Mutation::Delete(0), Mutation::Delete(1)];
        let mut reference = unsharded(&ps, &qs, IndexKind::Rtree);
        apply_to_engine(&mut reference, "p", &p_batch);
        apply_to_engine(&mut reference, "q", &q_batch);

        for shards in [1usize, 4] {
            let se = ShardedEngine::new(shards).unwrap();
            se.load("p", ps.clone(), IndexKind::Rtree).unwrap();
            se.load("q", qs.clone(), IndexKind::Rtree).unwrap();

            let info = se.update("p", p_batch.clone()).unwrap();
            assert_eq!(info.epoch, 1, "first batch lands epoch 1");
            assert_eq!(info.applied, 6);
            assert_eq!(info.items, 181, "180 + 3 inserts/upserts - 2 deletes");
            assert_eq!(se.dataset("p").unwrap().epoch, 1);
            assert_eq!(se.dataset("q").unwrap().epoch, 0, "q untouched");

            // A second batch on q advances its epoch independently.
            se.update("q", q_batch.clone()).unwrap();
            assert_eq!(se.updates_total(), 2);

            // The catalog's authoritative pointset tracks the batches.
            let live = se.dataset_items("p").unwrap();
            assert_eq!(live.len(), 181);
            assert!(live.iter().any(|it| it.id == 900));
            assert!(!live.iter().any(|it| it.id == 17));
            let ref_join = reference.query().join("q", "p").collect().unwrap();
            let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
            assert_eq!(out.pairs, ref_join.pairs, "shards={shards}");
            assert_eq!(out.stats, ref_join.stats, "shards={shards}");

            let ref_self = reference.query().self_join("p").collect().unwrap();
            let out = se.self_join("p", RcjAlgorithm::Auto, None).unwrap();
            assert_eq!(out.pairs, ref_self.pairs, "shards={shards}");
            assert_eq!(out.stats, ref_self.stats, "shards={shards}");

            let ref_top: Vec<RcjPair> = {
                let plan = reference.query().join("q", "p").top_k(11).plan().unwrap();
                let s: RcjStream = plan.stream();
                s.collect()
            };
            let top = se.top_k("q", "p", 11).unwrap();
            assert_eq!(top.pairs, ref_top, "shards={shards}");
        }
    }

    #[test]
    fn update_validation_refuses_whole_batches_and_leaves_state_intact() {
        let se = ShardedEngine::new(2).unwrap();
        se.load("d", items(120, 7, 800.0), IndexKind::Quadtree)
            .unwrap();
        let before = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();

        // Each refused batch: a protocol error, no epoch movement.
        assert!(matches!(
            se.update("d", Vec::new()),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            // id 3 exists: the whole batch (including the valid delete)
            // must be refused.
            se.update(
                "d",
                vec![
                    Mutation::Delete(0),
                    Mutation::Insert(Item::new(3, pt(1.0, 2.0)))
                ]
            ),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            se.update("d", vec![Mutation::Delete(4242)]),
            Err(ServerError::BadRequest(_))
        ));
        // Intra-batch conflict: the upsert introduces the id the later
        // insert collides with.
        assert!(matches!(
            se.update(
                "d",
                vec![
                    Mutation::Upsert(Item::new(500, pt(5.0, 6.0))),
                    Mutation::Insert(Item::new(500, pt(7.0, 8.0)))
                ]
            ),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            se.update("missing", vec![Mutation::Delete(0)]),
            Err(ServerError::UnknownDataset(_))
        ));

        let info = se.dataset("d").unwrap();
        assert_eq!((info.epoch, info.items), (0, 120));
        assert_eq!(se.updates_total(), 0);
        let after = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(after.pairs, before.pairs, "refused batches must be no-ops");
        assert_eq!(after.stats, before.stats);
    }

    #[test]
    fn disk_native_updates_match_resident_serving() {
        let dir = ringjoin_testsupport::scratch_dir("sharded-disk-update");
        let path = dir.join("pages.rjp");
        let its = items(200, 61, 1000.0);
        let batch = vec![
            Mutation::Insert(Item::new(700, pt(-50.0, 1200.0))),
            Mutation::Delete(13),
            Mutation::Upsert(Item::new(20, pt(444.5, 91.25))),
        ];

        let resident = ShardedEngine::new(3).unwrap();
        resident.load("d", its.clone(), IndexKind::Rtree).unwrap();
        resident.update("d", batch.clone()).unwrap();
        let reference = resident.self_join("d", RcjAlgorithm::Auto, None).unwrap();

        let se = ShardedEngine::with_storage(3, Some(path), 8).unwrap();
        se.load("d", its, IndexKind::Rtree).unwrap();
        se.update("d", batch).unwrap();
        let out = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(out.pairs, reference.pairs);
        assert_eq!(out.stats, reference.stats);
        // Again: the mutated pages keep serving deterministically.
        let again = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(again.pairs, reference.pairs);
        drop(se);
        drop(resident);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_replicas_share_one_warm_pool() {
        let ps = items(220, 91, 1100.0);
        let qs = items(220, 93, 1100.0);
        let se = ShardedEngine::new(4).unwrap();
        se.load("p", ps, IndexKind::Rtree).unwrap();
        se.load("q", qs, IndexKind::Rtree).unwrap();
        let (h0, f0, _, _) = se.pool_stats();
        assert_eq!(h0 + f0, 0, "loads alone must not touch the pool");

        let first = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
        assert!(!first.pairs.is_empty());
        let (h1, f1, _, rate1) = se.pool_stats();
        assert!(f1 > 0, "a cold pool must fault");
        assert!(
            h1 > 0,
            "shards replaying the same inner tree must hit each other's pages"
        );
        assert!(rate1 > 0.0 && rate1 < 1.0);

        // Second identical join: the (unbounded) pool is fully warm, so
        // not a single new fault — the serving win in one assertion.
        let second = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(second.pairs, first.pairs);
        let (h2, f2, _, rate2) = se.pool_stats();
        assert_eq!(f2, f1, "warm pool must not fault again");
        assert!(h2 > h1);
        assert!(rate2 > rate1);
    }

    #[test]
    fn disk_native_shards_share_one_page_file_and_match_resident_serving() {
        let dir = ringjoin_testsupport::scratch_dir("sharded-disk");
        let path = dir.join("pages.rjp");
        let ps = items(240, 41, 1300.0);
        let qs = items(240, 43, 1300.0);
        // Resident reference: the byte-exact answer disk mode must hit.
        let resident = ShardedEngine::new(4).unwrap();
        resident.load("p", ps.clone(), IndexKind::Rtree).unwrap();
        resident.load("q", qs.clone(), IndexKind::Rtree).unwrap();
        let reference = resident.join("q", "p", RcjAlgorithm::Auto, None).unwrap();

        // Disk-native with a pool far smaller than the page space: the
        // joins must fault pages in from the one shared file.
        let se = ShardedEngine::with_storage(4, Some(path.clone()), 8).unwrap();
        se.load("p", ps.clone(), IndexKind::Rtree).unwrap();
        se.load("q", qs.clone(), IndexKind::Rtree).unwrap();
        assert!(path.is_file(), "LOAD must have materialized the page file");
        let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(out.pairs, reference.pairs);
        assert_eq!(out.stats, reference.stats);
        let (hits, faults, prefetch_hits, _) = se.pool_stats();
        assert!(faults > 0, "an 8-frame pool cannot hold the dataset");
        assert!(prefetch_hits <= hits, "prefetch hits are a subset of hits");

        // A second identical join stays byte-identical; the tight pool
        // keeps faulting instead of going fully warm.
        let again = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(again.pairs, reference.pairs);
        let (_, faults2, _, _) = se.pool_stats();
        assert!(faults2 > faults, "the 8-frame pool must keep faulting");
        drop(se);
        drop(resident);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_native_top_k_and_self_join_match_resident_serving() {
        let dir = ringjoin_testsupport::scratch_dir("sharded-disk-topk");
        let path = dir.join("pages.rjp");
        let its = items(230, 47, 1000.0);
        let resident = ShardedEngine::new(3).unwrap();
        resident
            .load("d", its.clone(), IndexKind::Quadtree)
            .unwrap();
        let self_ref = resident.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        let topk_ref = resident.top_k_self("d", 9).unwrap();

        let se = ShardedEngine::with_storage(3, Some(path), 8).unwrap();
        se.load("d", its, IndexKind::Quadtree).unwrap();
        let out = se.self_join("d", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(out.pairs, self_ref.pairs);
        assert_eq!(out.stats, self_ref.stats);
        let topk = se.top_k_self("d", 9).unwrap();
        assert_eq!(topk.pairs, topk_ref.pairs);
        drop(se);
        drop(resident);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_includes_the_sharding_postscript() {
        let se = ShardedEngine::new(2).unwrap();
        se.load("p", items(120, 31, 700.0), IndexKind::Rtree)
            .unwrap();
        se.load("q", items(120, 37, 700.0), IndexKind::Rtree)
            .unwrap();
        let text = se
            .explain("q", Some("p"), RcjAlgorithm::Auto, None)
            .unwrap();
        assert!(text.contains("RCJ join"), "{text}");
        assert!(text.contains("sharding: 2 shard(s)"), "{text}");
        let text = se.explain("q", None, RcjAlgorithm::Auto, Some(5)).unwrap();
        assert!(text.contains("self-join"), "{text}");
        assert!(text.contains("top-k"), "{text}");
    }

    #[test]
    fn top_k_byte_identity_survives_exact_diameter_ties() {
        // Two result pairs of identical diameter 1.0 that a 2-shard
        // median split separates, with the traversal discovering them
        // in the opposite order of their pair keys: byte-identity then
        // rests entirely on the canonical (diameter, key) tie order
        // shared by the single-engine stream and the sharded merge.
        let ps = vec![Item::new(1, pt(0.0, 0.0)), Item::new(0, pt(10.0, 0.0))];
        let qs = vec![Item::new(1, pt(1.0, 0.0)), Item::new(0, pt(11.0, 0.0))];
        let engine = unsharded(&ps, &qs, IndexKind::Rtree);
        let reference: Vec<RcjPair> = engine
            .query()
            .join("q", "p")
            .top_k(2)
            .plan()
            .unwrap()
            .stream()
            .collect();
        assert_eq!(reference.len(), 2);
        assert_eq!(reference[0].diameter(), reference[1].diameter());
        // Canonical order: ascending pair key among exact ties.
        assert!(reference[0].key() < reference[1].key());

        for shards in [1usize, 2, 4] {
            let se = ShardedEngine::new(shards).unwrap();
            se.load("p", ps.clone(), IndexKind::Rtree).unwrap();
            se.load("q", qs.clone(), IndexKind::Rtree).unwrap();
            let out = se.top_k("q", "p", 2).unwrap();
            assert_eq!(
                out.pairs, reference,
                "tie order diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn top_k_merge_breaks_ties_deterministically() {
        let mk = |pid: u64, qid: u64, d: f64| {
            RcjPair::new(Item::new(pid, pt(0.0, 0.0)), Item::new(qid, pt(d, 0.0)))
        };
        let a = vec![mk(1, 1, 1.0), mk(1, 2, 2.0)];
        let b = vec![mk(0, 9, 1.0), mk(2, 2, 2.0)];
        let merged = merge_top_k(vec![a.into_iter(), b.into_iter()], 3);
        let keys: Vec<_> = ringjoin_core::pair_keys(&merged);
        assert_eq!(merged.len(), 3);
        // Equal diameters order by pair key: (0,9) before (1,1).
        assert_eq!(merged[0].key(), (0, 9));
        assert_eq!(merged[1].key(), (1, 1));
        assert!(keys.contains(&(1, 2)) || keys.contains(&(2, 2)));
    }
}
