//! Sharded serving for the ring-constrained join: per-shard
//! [`Engine`](ringjoin_core::Engine)s behind a space partition and a
//! small length-prefixed TCP wire protocol.
//!
//! The layers, bottom up:
//!
//! * [`SpacePartition`] — a longest-axis median split of the plane into
//!   `n` disjoint half-open cells, balanced by the dataset's points;
//!   [`SpacePartition::locate`] is total, so every leaf group and every
//!   point is owned by exactly one shard.
//! * [`ShardedEngine`] — `n` long-lived shard workers, each owning a
//!   full [`Engine`](ringjoin_core::Engine) replica (the ring
//!   constraint is *global*, so verification needs the whole index —
//!   shards partition the **work**, not the data) and one cell of the
//!   partition. Join output is byte-identical to a single engine: pairs
//!   merge by global outer-leaf index, top-k merges the per-shard
//!   diameter-ordered streams with a k-bounded heap, and per-shard
//!   [`RcjStats`](ringjoin_core::RcjStats) merge to the sequential
//!   totals.
//! * [`proto`] — the frame format (`u32` big-endian length + UTF-8
//!   payload) and the request/response grammar (`LOAD`, `JOIN`,
//!   `SELFJOIN`, `TOPK`, `EXPLAIN`, `STATS`, `SHUTDOWN`), with optional
//!   `#<id>` request tokens echoed in replies so clients can pipeline.
//! * [`Server`] / [`Client`] — the blocking TCP endpoints. The server
//!   accepts up to `max_sessions` concurrent sessions (one thread
//!   each) over one shared engine, with a bounded admission queue in
//!   front of the shard workers: overload is shed as `ERR busy` +
//!   retry hint ([`ServerError::Busy`] client-side), never buffered
//!   without bound. Results stay byte-identical to a single in-process
//!   engine no matter how many sessions are interleaving.
//!
//! ```no_run
//! use ringjoin_server::{Client, Server, ServerConfig};
//! use ringjoin_core::{IndexKind, RcjAlgorithm};
//! # fn items() -> Vec<ringjoin_geom::Item> { Vec::new() }
//!
//! let server = Server::bind(&ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     shards: 4,
//!     ..ServerConfig::default()
//! })?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.serve());
//!
//! let mut client = Client::connect(addr)?;
//! client.load("shops", IndexKind::Rtree, &items())?;
//! client.load("homes", IndexKind::Rtree, &items())?;
//! let out = client.join("homes", "shops", RcjAlgorithm::Auto, None)?;
//! println!("{} fair middleman locations from {} shard(s)", out.pairs.len(), out.shards_queried);
//! client.shutdown()?;
//! # Ok::<(), ringjoin_server::ServerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod client;
mod partition;
mod plan_cache;
pub mod proto;
mod remote;
mod server;
mod sharded;
mod topology;

pub use client::{Client, RemoteOutput, DEFAULT_TIMEOUT};
pub use partition::SpacePartition;
pub use remote::{ShardWorkerServer, WorkerHandle};
pub use server::{Server, ServerConfig};
pub use sharded::{
    DatasetInfo, Mutation, RingBounds, ShardedEngine, ShardedOutput, TopologyConfig, UpdateInfo,
    WorkerSpec,
};

use std::fmt;

/// Everything that can go wrong serving a request — always reported to
/// the client as an `ERR` frame, never a panic of the serving process.
#[derive(Clone, Debug)]
pub enum ServerError {
    /// A shard *count* must be at least 1 (mirrors the `--threads 0`
    /// validation of the executor and CLI).
    InvalidShards,
    /// `LOAD` named a dataset that is already registered; a serving
    /// process refuses to swap data under a running client.
    DuplicateDataset(String),
    /// A query referenced a dataset never loaded.
    UnknownDataset(String),
    /// Malformed request line, option, or parameter.
    BadRequest(String),
    /// A shard worker died (its thread is gone).
    ShardGone(usize),
    /// A shard-side failure (plan error surfaced by a worker).
    Internal(String),
    /// Socket-level failure.
    Io(String),
    /// A socket operation exceeded its deadline (client side) — the
    /// peer is hung or unreachable, not merely slow to compute.
    Timeout(String),
    /// The server shed load: the admission queue (or the session limit)
    /// is full. Carries the server's retry hint.
    Busy {
        /// How long the server suggests waiting before retrying.
        retry_after_ms: u64,
    },
    /// The server answered `ERR` (client side).
    Remote(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::InvalidShards => {
                write!(f, "shard count must be at least 1 (got 0)")
            }
            ServerError::DuplicateDataset(name) => write!(
                f,
                "dataset {name:?} is already loaded (pick a new name; serving never replaces data in place)"
            ),
            ServerError::UnknownDataset(name) => {
                write!(f, "unknown dataset {name:?} (LOAD it first)")
            }
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::ShardGone(i) => write!(f, "shard worker {i} is gone"),
            ServerError::Internal(msg) => write!(f, "shard error: {msg}"),
            ServerError::Io(msg) => write!(f, "io error: {msg}"),
            ServerError::Timeout(msg) => write!(f, "timed out: {msg}"),
            ServerError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            ServerError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}
