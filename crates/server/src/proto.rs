//! The wire protocol: length-prefixed UTF-8 frames over TCP.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 text.
//! A request payload is a command line (plus, for `LOAD`, a body of data
//! rows); a response payload is a status line (`OK key=value ...` or
//! `ERR message`) plus an optional body. One request yields exactly one
//! response; requests are served in order on a connection, so a client
//! may **pipeline**: send several frames back to back and read the
//! replies afterwards.
//!
//! | request | body | response body |
//! |---|---|---|
//! | `[#<id>] LOAD <name> <rtree\|quadtree>` | `id x y` rows | — |
//! | `[#<id>] INSERT <name>` | `id x y` rows | — (`OK epoch=..`) |
//! | `[#<id>] DELETE <name>` | `id` rows | — (`OK epoch=..`) |
//! | `[#<id>] UPSERT <name>` | `id x y` rows | — (`OK epoch=..`) |
//! | `[#<id>] JOIN <outer> <inner> [algo=..] [bounds=x0,y0,x1,y1 maxd=D]` | — | pair rows |
//! | `[#<id>] SELFJOIN <dataset> [algo=..] [bounds=.. maxd=..]` | — | pair rows |
//! | `[#<id>] TOPK <outer> <inner> <k>` | — | pair rows |
//! | `[#<id>] EXPLAIN <outer> [<inner>] [algo=..] [k=K]` | — | plan text |
//! | `[#<id>] STATS` | — | catalog text |
//! | `[#<id>] HELLO` | — | — (role handshake) |
//! | `[#<id>] SHUTDOWN` | — | — |
//!
//! # Shard-worker grammar
//!
//! A **shard worker** (`ringjoin serve --shard-of ...`) speaks the same
//! frame format but a different command set — the process form of the
//! in-process [`ShardedEngine`](crate::ShardedEngine) worker messages,
//! parsed as [`ShardRequest`]:
//!
//! | request | body | response |
//! |---|---|---|
//! | `HELLO` | — | `OK role=shard accepts=<rect\|any>` |
//! | `SLOAD <name> <kind> cell=<rect> [spill=<path> writer=<0\|1>]` | `id x y` rows | `OK leaves=.. extent=<rect> items=.. pages=.. leaf_pages=.. kind=..` |
//! | `SUPDATE <name> epoch=<n>` | `+ id x y` / `- id` / `^ id x y` rows | same fields as `SLOAD` |
//! | `SJOIN <outer> [inner=<name>] [algo=..] [bounds=.. maxd=..]` | — | counters + tagged pair rows |
//! | `STOPK <outer> <k> [inner=<name>]` | — | counters + pair rows |
//! | `SEXPLAIN <outer> [inner=<name>] [algo=..] [k=K]` | — | plan text |
//! | `SHUTDOWN` | — | — |
//!
//! The coordinator's merge keys are **global outer-leaf indices**, so
//! `SJOIN` replies carry leaf-tagged rows (`leaf p_id p_x p_y q_id q_x
//! q_y`) and the full [`RcjStats`] counter set — byte-identity of the
//! sharded answer survives the process hop because nothing is lost or
//! reordered on the wire. `HELLO` is the role handshake: a coordinator
//! answers `role=coordinator`, a worker `role=shard`, so a topology
//! misconfiguration (pointing `--workers` at another coordinator) fails
//! fast instead of misbehaving. Rects travel as `x0,y0,x1,y1` in the
//! same shortest-round-trip float form (`inf`/`-inf` included — the
//! outermost partition cells are unbounded).
//!
//! # Request IDs
//!
//! A request payload may start with a `#<id>` token (a `u64`); the
//! server echoes it back as the first status-line field (`OK id=<id>
//! ...`) or, on failure, right after the status word (`ERR id=<id>
//! message`). IDs let a pipelining client check that the in-order
//! replies really match its in-order requests. The framing is
//! version-tolerant in both directions: id-less requests are still
//! accepted (the reply then carries no `id`), and clients ignore
//! status-line fields they do not know.
//!
//! An overloaded server rejects work with `ERR [id=N] busy
//! retry_after_ms=<ms> (...)`; clients surface that as
//! [`ServerError::Busy`] carrying the retry hint.
//!
//! Pair rows are `p_id p_x p_y q_id q_x q_y` (floats in Rust's
//! shortest-round-trip `Display` form, so coordinates survive the wire
//! bit-exactly and a client can re-derive centers and radii without
//! loss). Numbers in command lines use the same convention.

use crate::sharded::{Mutation, RingBounds};
use crate::ServerError;
use ringjoin_core::{IndexKind, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_geom::{pt, Item, Rect};
use std::io::{Read, Write};

/// Hard cap on a frame payload (64 MiB): a malformed or hostile length
/// prefix must not make either end allocate unboundedly.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Largest single read while receiving a payload. The receive buffer
/// grows with the bytes that actually arrive, so a corrupt or hostile
/// length prefix costs at most one chunk of allocation — not the 64 MiB
/// the prefix promises.
pub const READ_CHUNK: usize = 64 * 1024;

/// How many consecutive read-timeout ticks [`read_frame_idle`] tolerates
/// *inside* a frame before declaring the peer stalled. (Timeouts before
/// the first length byte are a normal idle connection, reported as
/// [`FrameRead::Idle`] so the caller can run housekeeping.)
const MID_FRAME_PATIENCE: u32 = 150;

/// Outcome of one read attempt on a connection with a read timeout.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(String),
    /// The read timeout expired with no frame in flight — the peer is
    /// connected but quiet. Poll your shutdown flag and try again.
    Idle,
    /// Clean end of stream before any length byte.
    Eof,
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean end of
/// stream (EOF before any length byte); errors on truncated frames,
/// oversized lengths, non-UTF-8 payloads — and read timeouts, which a
/// blocking client treats as a hung server.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    match read_frame_inner(r, false)? {
        FrameRead::Frame(payload) => Ok(Some(payload)),
        FrameRead::Eof => Ok(None),
        FrameRead::Idle => unreachable!("strict reads never report Idle"),
    }
}

/// [`read_frame`] for a socket with a short read timeout: a timeout
/// between frames is reported as [`FrameRead::Idle`] instead of an
/// error, so a serving loop can interleave shutdown checks with reads.
/// A peer that stalls *mid-frame* for `MID_FRAME_PATIENCE` consecutive
/// ticks is an error.
pub fn read_frame_idle(r: &mut impl Read) -> std::io::Result<FrameRead> {
    read_frame_inner(r, true)
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn read_frame_inner(r: &mut impl Read, idle_ok: bool) -> std::io::Result<FrameRead> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated frame length",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if idle_ok && is_timeout(&e) => {
                if filled == 0 {
                    return Ok(FrameRead::Idle);
                }
                stalls += 1;
                if stalls > MID_FRAME_PATIENCE {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    // Chunked receive: allocation tracks bytes received, never the
    // (untrusted) length prefix.
    let mut payload: Vec<u8> = Vec::with_capacity((len as usize).min(READ_CHUNK));
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len as usize;
    let mut stalls = 0u32;
    while remaining > 0 {
        let want = remaining.min(READ_CHUNK);
        match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated frame payload",
                ))
            }
            Ok(n) => {
                payload.extend_from_slice(&chunk[..n]);
                remaining -= n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if idle_ok && is_timeout(&e) => {
                stalls += 1;
                if stalls > MID_FRAME_PATIENCE {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Frame)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Prefixes a request payload with its `#<id>` token.
pub fn encode_request_id(id: u64, payload: &str) -> String {
    format!("#{id} {payload}")
}

/// Splits an optional leading `#<id>` token off a request payload,
/// returning the id (if any) and the rest of the payload. Id-less
/// payloads pass through untouched — the framing is optional.
pub fn split_request_id(payload: &str) -> Result<(Option<u64>, &str), ServerError> {
    let Some(rest) = payload.strip_prefix('#') else {
        return Ok((None, payload));
    };
    let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    let (digits, tail) = rest.split_at(end);
    let id: u64 = digits
        .parse()
        .map_err(|_| ServerError::BadRequest(format!("malformed request id {digits:?}")))?;
    Ok((Some(id), tail.strip_prefix(' ').unwrap_or(tail)))
}

/// A parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Register a dataset on every shard.
    Load {
        /// Dataset name (no whitespace).
        name: String,
        /// Index kind to build.
        kind: IndexKind,
        /// The points.
        items: Vec<Item>,
    },
    /// Insert new points into a live dataset (whole batch refused if
    /// any id is already present).
    Insert {
        /// Dataset name.
        name: String,
        /// The new points.
        items: Vec<Item>,
    },
    /// Delete points from a live dataset by id (whole batch refused if
    /// any id is absent).
    Delete {
        /// Dataset name.
        name: String,
        /// The ids to remove.
        ids: Vec<u64>,
    },
    /// Insert-or-replace points in a live dataset (never refused).
    Upsert {
        /// Dataset name.
        name: String,
        /// The points.
        items: Vec<Item>,
    },
    /// Bichromatic join (`outer` drives, `inner` is probed).
    Join {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset name.
        inner: String,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional region-of-interest restriction.
        bounds: Option<RingBounds>,
    },
    /// Self-join of one dataset.
    SelfJoin {
        /// The dataset.
        dataset: String,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional region-of-interest restriction.
        bounds: Option<RingBounds>,
    },
    /// The `k` most compact pairs, ascending ring diameter.
    TopK {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset name.
        inner: String,
        /// How many pairs.
        k: usize,
    },
    /// Print the resolved plan plus the sharding postscript.
    Explain {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset (`None` = self-join explain).
        inner: Option<String>,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional top-k bound.
        k: Option<usize>,
    },
    /// Server catalog and counters.
    Stats,
    /// Role handshake: the server answers `role=coordinator` (a shard
    /// worker answers `role=shard` to its own grammar's `HELLO`).
    Hello,
    /// Stop the server after acknowledging.
    Shutdown,
}

/// Validates a dataset name for the wire: non-empty, no whitespace or
/// control characters (names are whitespace-delimited on the wire).
pub fn validate_name(name: &str) -> Result<(), ServerError> {
    if name.is_empty() {
        return Err(ServerError::BadRequest("empty dataset name".into()));
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(ServerError::BadRequest(format!(
            "dataset name {name:?} contains whitespace or control characters"
        )));
    }
    Ok(())
}

fn kind_name(kind: IndexKind) -> &'static str {
    kind.name()
}

fn parse_kind(s: &str) -> Result<IndexKind, ServerError> {
    match s {
        "rtree" => Ok(IndexKind::Rtree),
        "quadtree" => Ok(IndexKind::Quadtree),
        other => Err(ServerError::BadRequest(format!(
            "unknown index kind {other:?}"
        ))),
    }
}

fn algo_name(algo: RcjAlgorithm) -> String {
    algo.name().to_lowercase()
}

fn parse_algo(s: &str) -> Result<RcjAlgorithm, ServerError> {
    RcjAlgorithm::from_name(s)
        .ok_or_else(|| ServerError::BadRequest(format!("unknown algorithm {s:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ServerError> {
    s.parse()
        .map_err(|_| ServerError::BadRequest(format!("invalid {what}: {s:?}")))
}

fn encode_bounds(out: &mut String, bounds: &Option<RingBounds>) {
    if let Some(rb) = bounds {
        out.push_str(&format!(
            " bounds={},{},{},{} maxd={}",
            rb.bounds.min.x, rb.bounds.min.y, rb.bounds.max.x, rb.bounds.max.y, rb.max_diameter
        ));
    }
}

/// Parses `algo=`/`bounds=`/`maxd=`/`k=` options from command-line
/// tokens; unknown options are a protocol error.
struct Options {
    algo: RcjAlgorithm,
    bounds: Option<Rect>,
    maxd: Option<f64>,
    k: Option<usize>,
}

fn parse_options(tokens: &[&str]) -> Result<Options, ServerError> {
    let mut opts = Options {
        algo: RcjAlgorithm::Auto,
        bounds: None,
        maxd: None,
        k: None,
    };
    for t in tokens {
        let (key, value) = t.split_once('=').ok_or_else(|| {
            ServerError::BadRequest(format!("expected key=value option, got {t:?}"))
        })?;
        match key {
            "algo" => opts.algo = parse_algo(value)?,
            "maxd" => opts.maxd = Some(parse_num(value, "maxd")?),
            "k" => opts.k = Some(parse_num(value, "k")?),
            "bounds" => {
                let nums: Vec<f64> = value
                    .split(',')
                    .map(|v| parse_num(v, "bounds coordinate"))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 4 {
                    return Err(ServerError::BadRequest(
                        "bounds needs exactly x0,y0,x1,y1".into(),
                    ));
                }
                opts.bounds = Some(Rect::new(pt(nums[0], nums[1]), pt(nums[2], nums[3])));
            }
            other => return Err(ServerError::BadRequest(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

fn ring_bounds(opts: &Options) -> Result<Option<RingBounds>, ServerError> {
    match (opts.bounds, opts.maxd) {
        (None, None) => Ok(None),
        (Some(bounds), Some(max_diameter)) => Ok(Some(RingBounds {
            bounds,
            max_diameter,
        })),
        _ => Err(ServerError::BadRequest(
            "bounds= and maxd= must be given together".into(),
        )),
    }
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Load { name, kind, items } => {
                let mut out = format!("LOAD {name} {}\n", kind_name(*kind));
                for it in items {
                    out.push_str(&format!("{} {} {}\n", it.id, it.point.x, it.point.y));
                }
                out
            }
            Request::Insert { name, items } => {
                let mut out = format!("INSERT {name}\n");
                for it in items {
                    out.push_str(&format!("{} {} {}\n", it.id, it.point.x, it.point.y));
                }
                out
            }
            Request::Delete { name, ids } => {
                let mut out = format!("DELETE {name}\n");
                for id in ids {
                    out.push_str(&format!("{id}\n"));
                }
                out
            }
            Request::Upsert { name, items } => {
                let mut out = format!("UPSERT {name}\n");
                for it in items {
                    out.push_str(&format!("{} {} {}\n", it.id, it.point.x, it.point.y));
                }
                out
            }
            Request::Join {
                outer,
                inner,
                algo,
                bounds,
            } => {
                let mut out = format!("JOIN {outer} {inner} algo={}", algo_name(*algo));
                encode_bounds(&mut out, bounds);
                out
            }
            Request::SelfJoin {
                dataset,
                algo,
                bounds,
            } => {
                let mut out = format!("SELFJOIN {dataset} algo={}", algo_name(*algo));
                encode_bounds(&mut out, bounds);
                out
            }
            Request::TopK { outer, inner, k } => format!("TOPK {outer} {inner} {k}"),
            Request::Explain {
                outer,
                inner,
                algo,
                k,
            } => {
                let mut out = format!("EXPLAIN {outer}");
                if let Some(inner) = inner {
                    out.push_str(&format!(" {inner}"));
                }
                out.push_str(&format!(" algo={}", algo_name(*algo)));
                if let Some(k) = k {
                    out.push_str(&format!(" k={k}"));
                }
                out
            }
            Request::Stats => "STATS".to_string(),
            Request::Hello => "HELLO".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Parses a frame payload into a request.
    pub fn parse(payload: &str) -> Result<Request, ServerError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, body),
            None => (payload, ""),
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = tokens.split_first() else {
            return Err(ServerError::BadRequest("empty request".into()));
        };
        match cmd {
            "LOAD" => {
                let [name, kind] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: LOAD <name> <rtree|quadtree>".into(),
                    ));
                };
                validate_name(name)?;
                let items = parse_item_rows(body)?;
                Ok(Request::Load {
                    name: name.to_string(),
                    kind: parse_kind(kind)?,
                    items,
                })
            }
            "INSERT" | "UPSERT" => {
                let [name] = args else {
                    return Err(ServerError::BadRequest(format!(
                        "usage: {cmd} <name> (with `id x y` data rows)"
                    )));
                };
                validate_name(name)?;
                let name = name.to_string();
                let items = parse_item_rows(body)?;
                Ok(if cmd == "INSERT" {
                    Request::Insert { name, items }
                } else {
                    Request::Upsert { name, items }
                })
            }
            "DELETE" => {
                let [name] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: DELETE <name> (with `id` data rows)".into(),
                    ));
                };
                validate_name(name)?;
                Ok(Request::Delete {
                    name: name.to_string(),
                    ids: parse_id_rows(body)?,
                })
            }
            "JOIN" => {
                let [outer, inner, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: JOIN <outer> <inner> [algo=..] [bounds=.. maxd=..]".into(),
                    ));
                };
                let opts = parse_options(rest)?;
                Ok(Request::Join {
                    outer: outer.to_string(),
                    inner: inner.to_string(),
                    algo: opts.algo,
                    bounds: ring_bounds(&opts)?,
                })
            }
            "SELFJOIN" => {
                let [dataset, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SELFJOIN <dataset> [algo=..] [bounds=.. maxd=..]".into(),
                    ));
                };
                let opts = parse_options(rest)?;
                Ok(Request::SelfJoin {
                    dataset: dataset.to_string(),
                    algo: opts.algo,
                    bounds: ring_bounds(&opts)?,
                })
            }
            "TOPK" => {
                let [outer, inner, k] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: TOPK <outer> <inner> <k>".into(),
                    ));
                };
                Ok(Request::TopK {
                    outer: outer.to_string(),
                    inner: inner.to_string(),
                    k: parse_num(k, "k")?,
                })
            }
            "EXPLAIN" => {
                let (names, rest): (Vec<&str>, Vec<&str>) =
                    args.iter().partition(|t| !t.contains('='));
                let (outer, inner) = match names.as_slice() {
                    [outer] => (outer.to_string(), None),
                    [outer, inner] => (outer.to_string(), Some(inner.to_string())),
                    _ => {
                        return Err(ServerError::BadRequest(
                            "usage: EXPLAIN <outer> [<inner>] [algo=..] [k=K]".into(),
                        ))
                    }
                };
                let opts = parse_options(&rest)?;
                Ok(Request::Explain {
                    outer,
                    inner,
                    algo: opts.algo,
                    k: opts.k,
                })
            }
            "STATS" => Ok(Request::Stats),
            "HELLO" => Ok(Request::Hello),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(ServerError::BadRequest(format!(
                "unknown command {other:?}"
            ))),
        }
    }
}

/// Parses `id x y` data rows (used by `LOAD`).
fn parse_item_rows(body: &str) -> Result<Vec<Item>, ServerError> {
    let mut items = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [id, x, y] = fields.as_slice() else {
            return Err(ServerError::BadRequest(format!(
                "expected `id x y` data row, got {line:?}"
            )));
        };
        items.push(Item::new(
            parse_num(id, "item id")?,
            pt(parse_num(x, "x coordinate")?, parse_num(y, "y coordinate")?),
        ));
    }
    Ok(items)
}

/// Parses bare `id` data rows (used by `DELETE`).
fn parse_id_rows(body: &str) -> Result<Vec<u64>, ServerError> {
    body.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .map(|line| parse_num(line, "item id"))
        .collect()
}

/// Encodes a mutation batch as `SUPDATE` body rows: `+ id x y`
/// (insert), `- id` (delete), `^ id x y` (upsert).
fn encode_mutation_rows(out: &mut String, ops: &[Mutation]) {
    for op in ops {
        match op {
            Mutation::Insert(it) => {
                out.push_str(&format!("+ {} {} {}\n", it.id, it.point.x, it.point.y));
            }
            Mutation::Delete(id) => out.push_str(&format!("- {id}\n")),
            Mutation::Upsert(it) => {
                out.push_str(&format!("^ {} {} {}\n", it.id, it.point.x, it.point.y));
            }
        }
    }
}

/// Parses `SUPDATE` body rows back into a mutation batch.
fn parse_mutation_rows(body: &str) -> Result<Vec<Mutation>, ServerError> {
    let mut ops = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let op = match fields.as_slice() {
            ["+", id, x, y] | ["^", id, x, y] => {
                let item = Item::new(
                    parse_num(id, "item id")?,
                    pt(parse_num(x, "x coordinate")?, parse_num(y, "y coordinate")?),
                );
                if fields[0] == "+" {
                    Mutation::Insert(item)
                } else {
                    Mutation::Upsert(item)
                }
            }
            ["-", id] => Mutation::Delete(parse_num(id, "item id")?),
            _ => {
                return Err(ServerError::BadRequest(format!(
                    "expected `+ id x y`, `- id` or `^ id x y` mutation row, got {line:?}"
                )))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Encodes result pairs as wire rows (`p_id p_x p_y q_id q_x q_y`, one
/// per line, shortest-round-trip floats).
pub fn encode_pairs(pairs: &[RcjPair]) -> String {
    let mut out = String::new();
    for pr in pairs {
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            pr.p.id, pr.p.point.x, pr.p.point.y, pr.q.id, pr.q.point.x, pr.q.point.y
        ));
    }
    out
}

/// Parses wire pair rows back into [`RcjPair`]s (bit-exact round trip).
pub fn parse_pairs(body: &str) -> Result<Vec<RcjPair>, ServerError> {
    let mut pairs = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [pid, px, py, qid, qx, qy] = fields.as_slice() else {
            return Err(ServerError::BadRequest(format!(
                "expected 6-field pair row, got {line:?}"
            )));
        };
        pairs.push(RcjPair::new(
            Item::new(
                parse_num(pid, "p id")?,
                pt(parse_num(px, "p x")?, parse_num(py, "p y")?),
            ),
            Item::new(
                parse_num(qid, "q id")?,
                pt(parse_num(qx, "q x")?, parse_num(qy, "q y")?),
            ),
        ));
    }
    Ok(pairs)
}

/// Encodes a rectangle as `x0,y0,x1,y1` (shortest-round-trip floats;
/// `inf`/`-inf` legal — partition cells reach to infinity, and
/// [`Rect::empty`] round-trips as `inf,inf,-inf,-inf`).
pub fn encode_rect(r: Rect) -> String {
    format!("{},{},{},{}", r.min.x, r.min.y, r.max.x, r.max.y)
}

/// Parses a [`encode_rect`] rectangle (bit-exact round trip).
pub fn parse_rect(s: &str) -> Result<Rect, ServerError> {
    let nums: Vec<f64> = s
        .split(',')
        .map(|v| parse_num(v, "rect coordinate"))
        .collect::<Result<_, _>>()?;
    if nums.len() != 4 {
        return Err(ServerError::BadRequest(format!(
            "rect needs exactly x0,y0,x1,y1, got {s:?}"
        )));
    }
    // Construct the corners verbatim: `Rect::new` would normalize a
    // min > max pair, silently turning the empty rect (`inf,inf,-inf,
    // -inf`) into an everything-rect on the way in.
    Ok(Rect {
        min: pt(nums[0], nums[1]),
        max: pt(nums[2], nums[3]),
    })
}

/// Encodes leaf-tagged result pairs as wire rows (`leaf p_id p_x p_y
/// q_id q_x q_y`): the shard-worker reply shape whose leading global
/// outer-leaf index is the coordinator's deterministic merge key.
pub fn encode_tagged_pairs(pairs: &[(usize, RcjPair)]) -> String {
    let mut out = String::new();
    for (leaf, pr) in pairs {
        out.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            leaf, pr.p.id, pr.p.point.x, pr.p.point.y, pr.q.id, pr.q.point.x, pr.q.point.y
        ));
    }
    out
}

/// Parses [`encode_tagged_pairs`] rows (bit-exact round trip).
pub fn parse_tagged_pairs(body: &str) -> Result<Vec<(usize, RcjPair)>, ServerError> {
    let mut pairs = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [leaf, pid, px, py, qid, qx, qy] = fields.as_slice() else {
            return Err(ServerError::BadRequest(format!(
                "expected 7-field tagged pair row, got {line:?}"
            )));
        };
        pairs.push((
            parse_num(leaf, "leaf index")?,
            RcjPair::new(
                Item::new(
                    parse_num(pid, "p id")?,
                    pt(parse_num(px, "p x")?, parse_num(py, "p y")?),
                ),
                Item::new(
                    parse_num(qid, "q id")?,
                    pt(parse_num(qx, "q x")?, parse_num(qy, "q y")?),
                ),
            ),
        ));
    }
    Ok(pairs)
}

/// The full [`RcjStats`] counter set as status-line fields — shard
/// replies must carry every counter so the coordinator's merged stats
/// stay byte-identical to a local run.
pub fn encode_stats_fields(stats: &RcjStats) -> [(&'static str, String); 5] {
    [
        ("candidates", stats.candidate_pairs.to_string()),
        ("result_pairs", stats.result_pairs.to_string()),
        ("heap_pops", stats.filter_heap_pops.to_string()),
        ("filter_node_reads", stats.filter_node_reads.to_string()),
        ("verify_node_visits", stats.verify_node_visits.to_string()),
    ]
}

/// Reads the [`encode_stats_fields`] counters back off a reply (fields
/// the peer did not send stay zero — version tolerance).
pub fn stats_from_reply(reply: &Reply) -> RcjStats {
    let f = |key: &str| -> u64 {
        reply
            .field(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    };
    RcjStats {
        candidate_pairs: f("candidates"),
        result_pairs: f("result_pairs"),
        filter_heap_pops: f("heap_pops"),
        filter_node_reads: f("filter_node_reads"),
        verify_node_visits: f("verify_node_visits"),
    }
}

/// A parsed shard-worker request — the wire form of the messages a
/// coordinator sends its shard workers (see the module docs' worker
/// grammar table). Carried over the same frame format as [`Request`]
/// but parsed by worker processes only.
#[derive(Clone, Debug)]
pub enum ShardRequest {
    /// Role handshake; a worker answers `role=shard`.
    Hello,
    /// Register (or replay) a dataset replica with this worker's owned
    /// cell of the dataset's space partition. Re-loading a name this
    /// worker already holds replaces it — that is what makes the
    /// coordinator's replay log idempotent.
    Load {
        /// Dataset name (no whitespace).
        name: String,
        /// Index kind to build.
        kind: IndexKind,
        /// The half-open partition cell this worker owns for the
        /// dataset (decides outer-leaf ownership).
        cell: Rect,
        /// Disk-native serving: the shared page file (a path visible to
        /// the worker — loopback workers share the coordinator's
        /// filesystem). No whitespace (paths are tokens on the wire).
        spill: Option<String>,
        /// Whether this worker materializes the page file (exactly one
        /// writer per `LOAD`; replicas and replays attach).
        writer: bool,
        /// The full point set (the index is replicated; the cell
        /// partitions the *work*).
        items: Vec<Item>,
    },
    /// Apply a mutation batch carrying the epoch it must produce. The
    /// target epoch makes the message **idempotent**: a worker already
    /// at the target epoch answers without re-applying (the retry of a
    /// request whose reply was lost), while any other epoch mismatch is
    /// a hard refusal — the worker has diverged from the mutation log.
    Update {
        /// Dataset name.
        name: String,
        /// The epoch this batch advances the dataset to.
        target_epoch: u64,
        /// The mutations, in application order.
        ops: Vec<Mutation>,
    },
    /// Leaf-driven join over the worker's owned outer leaves; the reply
    /// carries leaf-tagged pairs plus full counters.
    Join {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset (`None` = self-join).
        inner: Option<String>,
        /// Concrete algorithm (the coordinator resolves `Auto`).
        algo: RcjAlgorithm,
        /// Optional region-of-interest restriction.
        bounds: Option<RingBounds>,
    },
    /// Diameter-ordered top-k restricted to the worker's cell.
    TopK {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset (`None` = self-join).
        inner: Option<String>,
        /// How many pairs.
        k: usize,
    },
    /// The plan this worker would run.
    Explain {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset (`None` = self-join).
        inner: Option<String>,
        /// Algorithm (may be `Auto` for plan display).
        algo: RcjAlgorithm,
        /// Optional top-k bound.
        k: Option<usize>,
    },
    /// Stop the worker after acknowledging.
    Shutdown,
}

impl ShardRequest {
    /// Encodes the shard request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            ShardRequest::Hello => "HELLO".to_string(),
            ShardRequest::Load {
                name,
                kind,
                cell,
                spill,
                writer,
                items,
            } => {
                let mut out = format!(
                    "SLOAD {name} {} cell={}",
                    kind_name(*kind),
                    encode_rect(*cell)
                );
                if let Some(path) = spill {
                    out.push_str(&format!(" spill={path} writer={}", u8::from(*writer)));
                }
                out.push('\n');
                for it in items {
                    out.push_str(&format!("{} {} {}\n", it.id, it.point.x, it.point.y));
                }
                out
            }
            ShardRequest::Update {
                name,
                target_epoch,
                ops,
            } => {
                let mut out = format!("SUPDATE {name} epoch={target_epoch}\n");
                encode_mutation_rows(&mut out, ops);
                out
            }
            ShardRequest::Join {
                outer,
                inner,
                algo,
                bounds,
            } => {
                let mut out = format!("SJOIN {outer}");
                if let Some(inner) = inner {
                    out.push_str(&format!(" inner={inner}"));
                }
                out.push_str(&format!(" algo={}", algo_name(*algo)));
                encode_bounds(&mut out, bounds);
                out
            }
            ShardRequest::TopK { outer, inner, k } => {
                let mut out = format!("STOPK {outer} {k}");
                if let Some(inner) = inner {
                    out.push_str(&format!(" inner={inner}"));
                }
                out
            }
            ShardRequest::Explain {
                outer,
                inner,
                algo,
                k,
            } => {
                let mut out = format!("SEXPLAIN {outer}");
                if let Some(inner) = inner {
                    out.push_str(&format!(" inner={inner}"));
                }
                out.push_str(&format!(" algo={}", algo_name(*algo)));
                if let Some(k) = k {
                    out.push_str(&format!(" k={k}"));
                }
                out
            }
            ShardRequest::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Parses a frame payload into a shard request.
    pub fn parse(payload: &str) -> Result<ShardRequest, ServerError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, body),
            None => (payload, ""),
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = tokens.split_first() else {
            return Err(ServerError::BadRequest("empty shard request".into()));
        };
        match cmd {
            "HELLO" => Ok(ShardRequest::Hello),
            "SHUTDOWN" => Ok(ShardRequest::Shutdown),
            "SLOAD" => {
                let [name, kind, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SLOAD <name> <kind> cell=<rect> [spill=<path> writer=<0|1>]".into(),
                    ));
                };
                validate_name(name)?;
                let opts = parse_shard_options(rest)?;
                let cell = opts.cell.ok_or_else(|| {
                    ServerError::BadRequest("SLOAD requires a cell= rectangle".into())
                })?;
                Ok(ShardRequest::Load {
                    name: name.to_string(),
                    kind: parse_kind(kind)?,
                    cell,
                    spill: opts.spill,
                    writer: opts.writer,
                    items: parse_item_rows(body)?,
                })
            }
            "SUPDATE" => {
                let [name, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SUPDATE <name> epoch=<n> (with mutation rows)".into(),
                    ));
                };
                validate_name(name)?;
                let opts = parse_shard_options(rest)?;
                let target_epoch = opts.epoch.ok_or_else(|| {
                    ServerError::BadRequest("SUPDATE requires an epoch= target".into())
                })?;
                Ok(ShardRequest::Update {
                    name: name.to_string(),
                    target_epoch,
                    ops: parse_mutation_rows(body)?,
                })
            }
            "SJOIN" => {
                let [outer, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SJOIN <outer> [inner=<name>] [algo=..] [bounds=.. maxd=..]".into(),
                    ));
                };
                let opts = parse_shard_options(rest)?;
                let bounds = ring_bounds_shard(&opts)?;
                Ok(ShardRequest::Join {
                    outer: outer.to_string(),
                    inner: opts.inner,
                    algo: opts.algo,
                    bounds,
                })
            }
            "STOPK" => {
                let [outer, k, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: STOPK <outer> <k> [inner=<name>]".into(),
                    ));
                };
                let opts = parse_shard_options(rest)?;
                Ok(ShardRequest::TopK {
                    outer: outer.to_string(),
                    inner: opts.inner,
                    k: parse_num(k, "k")?,
                })
            }
            "SEXPLAIN" => {
                let [outer, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SEXPLAIN <outer> [inner=<name>] [algo=..] [k=K]".into(),
                    ));
                };
                let opts = parse_shard_options(rest)?;
                Ok(ShardRequest::Explain {
                    outer: outer.to_string(),
                    inner: opts.inner,
                    algo: opts.algo,
                    k: opts.k,
                })
            }
            other => Err(ServerError::BadRequest(format!(
                "unknown shard command {other:?}"
            ))),
        }
    }
}

/// `key=value` options of the shard-worker grammar (a superset of the
/// client grammar's: `cell=`, `spill=`, `writer=`, `inner=`, `epoch=`
/// ride along with `algo=`/`bounds=`/`maxd=`/`k=`).
struct ShardOptions {
    algo: RcjAlgorithm,
    bounds: Option<Rect>,
    maxd: Option<f64>,
    k: Option<usize>,
    cell: Option<Rect>,
    spill: Option<String>,
    writer: bool,
    inner: Option<String>,
    epoch: Option<u64>,
}

fn parse_shard_options(tokens: &[&str]) -> Result<ShardOptions, ServerError> {
    let mut opts = ShardOptions {
        algo: RcjAlgorithm::Auto,
        bounds: None,
        maxd: None,
        k: None,
        cell: None,
        spill: None,
        writer: false,
        inner: None,
        epoch: None,
    };
    for t in tokens {
        let (key, value) = t.split_once('=').ok_or_else(|| {
            ServerError::BadRequest(format!("expected key=value option, got {t:?}"))
        })?;
        match key {
            "algo" => opts.algo = parse_algo(value)?,
            "maxd" => opts.maxd = Some(parse_num(value, "maxd")?),
            "k" => opts.k = Some(parse_num(value, "k")?),
            "bounds" => opts.bounds = Some(parse_rect(value)?),
            "cell" => opts.cell = Some(parse_rect(value)?),
            "spill" => opts.spill = Some(value.to_string()),
            "writer" => opts.writer = value == "1",
            "inner" => {
                validate_name(value)?;
                opts.inner = Some(value.to_string());
            }
            "epoch" => opts.epoch = Some(parse_num(value, "epoch")?),
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown shard option {other:?}"
                )))
            }
        }
    }
    Ok(opts)
}

fn ring_bounds_shard(opts: &ShardOptions) -> Result<Option<RingBounds>, ServerError> {
    match (opts.bounds, opts.maxd) {
        (None, None) => Ok(None),
        (Some(bounds), Some(max_diameter)) => Ok(Some(RingBounds {
            bounds,
            max_diameter,
        })),
        _ => Err(ServerError::BadRequest(
            "bounds= and maxd= must be given together".into(),
        )),
    }
}

/// A parsed server response: the `OK` status-line fields plus the body.
/// (`ERR` responses surface as errors before a `Reply` is built.)
#[derive(Clone, Debug, Default)]
pub struct Reply {
    /// The echoed request id, when the request carried one.
    pub id: Option<u64>,
    /// `key=value` fields of the status line, in order.
    pub fields: Vec<(String, String)>,
    /// Everything after the status line.
    pub body: String,
}

impl Reply {
    /// Builds an `OK` payload from fields and a body.
    pub fn encode(fields: &[(&str, String)], body: &str) -> String {
        Self::encode_ok(None, fields, body)
    }

    /// Builds an `OK` payload, echoing the request id (if any) as the
    /// first status-line field.
    pub fn encode_ok(id: Option<u64>, fields: &[(&str, String)], body: &str) -> String {
        let mut out = String::from("OK");
        if let Some(id) = id {
            out.push_str(&format!(" id={id}"));
        }
        for (k, v) in fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        out.push_str(body);
        out
    }

    /// Builds an `ERR` payload.
    pub fn encode_err(message: &str) -> String {
        Self::encode_err_id(None, message)
    }

    /// Builds an `ERR` payload, echoing the request id (if any) right
    /// after the status word so pipelining clients can still match the
    /// failure to its request.
    pub fn encode_err_id(id: Option<u64>, message: &str) -> String {
        // Keep the status machine-parsable: the message stays on one line.
        let msg = message.replace('\n', " ");
        match id {
            Some(id) => format!("ERR id={id} {msg}"),
            None => format!("ERR {msg}"),
        }
    }

    /// The backpressure rejection: `ERR [id=N] busy retry_after_ms=<ms>
    /// (<what>)`. Clients parse it back as [`ServerError::Busy`].
    pub fn encode_busy(id: Option<u64>, retry_after_ms: u64, what: &str) -> String {
        Self::encode_err_id(
            id,
            &format!("busy retry_after_ms={retry_after_ms} ({what})"),
        )
    }

    /// Parses a response payload; `ERR` payloads become
    /// [`ServerError::Remote`] (or [`ServerError::Busy`] for the
    /// backpressure rejection).
    pub fn parse(payload: &str) -> Result<Reply, ServerError> {
        Self::parse_with_id(payload).1
    }

    /// [`Reply::parse`], but the echoed request id survives even when
    /// the response is an error — a pipelining client needs it to match
    /// an `ERR` to the request that caused it.
    pub fn parse_with_id(payload: &str) -> (Option<u64>, Result<Reply, ServerError>) {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, body),
            None => (payload, ""),
        };
        if let Some(msg) = line.strip_prefix("ERR") {
            let mut msg = msg.trim();
            let mut id = None;
            if let Some(rest) = msg.strip_prefix("id=") {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                if let Ok(n) = rest[..end].parse::<u64>() {
                    id = Some(n);
                    msg = rest[end..].trim_start();
                }
            }
            let err = if let Some(rest) = msg.strip_prefix("busy") {
                let retry_after_ms = rest
                    .split_whitespace()
                    .find_map(|t| t.strip_prefix("retry_after_ms="))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                ServerError::Busy { retry_after_ms }
            } else {
                ServerError::Remote(msg.to_string())
            };
            return (id, Err(err));
        }
        let Some(rest) = line.strip_prefix("OK") else {
            return (
                None,
                Err(ServerError::BadRequest(format!(
                    "malformed response status line {line:?}"
                ))),
            );
        };
        let fields: Vec<(String, String)> = match rest
            .split_whitespace()
            .map(|t| match t.split_once('=') {
                Some((k, v)) => Ok((k.to_string(), v.to_string())),
                None => Err(ServerError::BadRequest(format!(
                    "malformed response field {t:?}"
                ))),
            })
            .collect()
        {
            Ok(fields) => fields,
            Err(e) => return (None, Err(e)),
        };
        let id = fields
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| v.parse().ok());
        (
            id,
            Ok(Reply {
                id,
                fields,
                body: body.to_string(),
            }),
        )
    }

    /// Looks up a status-line field.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        write_frame(&mut buf, "unicode ✓".as_bytes()).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello frame");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "unicode ✓");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF

        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let mut r = std::io::Cursor::new(huge);
        assert!(read_frame(&mut r).is_err());
        // Truncated payloads error rather than hang or return garbage.
        let mut short: Vec<u8> = 10u32.to_be_bytes().to_vec();
        short.extend_from_slice(b"abc");
        assert!(read_frame(&mut std::io::Cursor::new(short)).is_err());
    }

    /// Regression (oversized-allocation bug): a length prefix promising
    /// MAX_FRAME with no payload behind it must fail after at most one
    /// read chunk of allocation — the receive buffer tracks bytes that
    /// actually arrive, not the untrusted prefix.
    #[test]
    fn hostile_length_prefix_does_not_preallocate() {
        struct CountingEof(usize);
        impl Read for CountingEof {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                self.0 += 1;
                Ok(0) // EOF right after the length prefix
            }
        }
        let prefix = MAX_FRAME.to_be_bytes();
        let mut r = std::io::Cursor::new(prefix.to_vec()).chain(CountingEof(0));
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Payloads larger than one read chunk still round-trip intact.
        let big = "x".repeat(READ_CHUNK * 3 + 17);
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, big.as_bytes()).unwrap();
        let got = read_frame(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn request_ids_split_and_round_trip() {
        assert_eq!(split_request_id("STATS").unwrap(), (None, "STATS"));
        assert_eq!(
            split_request_id(&encode_request_id(7, "STATS")).unwrap(),
            (Some(7), "STATS")
        );
        let (id, rest) = split_request_id("#42 LOAD d rtree\n1 2 3\n").unwrap();
        assert_eq!(id, Some(42));
        assert_eq!(rest, "LOAD d rtree\n1 2 3\n");
        assert!(split_request_id("#x STATS").is_err());
        assert!(split_request_id("# STATS").is_err());
        // A bare id with no command is a valid split, then a parse error.
        let (id, rest) = split_request_id("#9").unwrap();
        assert_eq!(id, Some(9));
        assert!(Request::parse(rest).is_err());
    }

    #[test]
    fn replies_echo_ids_on_ok_and_err() {
        let payload = Reply::encode_ok(Some(3), &[("pairs", "1".into())], "row\n");
        let (id, reply) = Reply::parse_with_id(&payload);
        let reply = reply.unwrap();
        assert_eq!(id, Some(3));
        assert_eq!(reply.id, Some(3));
        assert_eq!(reply.field("pairs"), Some("1"));

        let (id, err) = Reply::parse_with_id(&Reply::encode_err_id(Some(8), "nope"));
        assert_eq!(id, Some(8));
        assert!(matches!(err, Err(ServerError::Remote(m)) if m == "nope"));

        let (id, err) = Reply::parse_with_id(&Reply::encode_busy(Some(5), 75, "queue full"));
        assert_eq!(id, Some(5));
        assert!(matches!(err, Err(ServerError::Busy { retry_after_ms: 75 })));
        // Version tolerance: id-less replies keep parsing.
        let (id, reply) = Reply::parse_with_id(&Reply::encode(&[("x", "1".into())], ""));
        assert_eq!(id, None);
        assert!(reply.unwrap().id.is_none());
    }

    #[test]
    fn idle_reads_distinguish_quiet_peers_from_stalled_frames() {
        struct Timeouts<R>(R, Vec<bool>);
        impl<R: Read> Read for Timeouts<R> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1.pop().unwrap_or(false) {
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "tick"));
                }
                self.0.read(buf)
            }
        }
        let mut framed: Vec<u8> = Vec::new();
        write_frame(&mut framed, b"STATS").unwrap();
        // Timeout before any byte: Idle; then the frame arrives whole.
        let mut r = Timeouts(std::io::Cursor::new(framed), vec![false, true]);
        assert!(matches!(read_frame_idle(&mut r).unwrap(), FrameRead::Idle));
        match read_frame_idle(&mut r).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, "STATS"),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(read_frame_idle(&mut r).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn requests_round_trip_through_encode_parse() {
        let reqs = [
            Request::Load {
                name: "shops".into(),
                kind: IndexKind::Quadtree,
                items: vec![Item::new(7, pt(1.25, -3.5)), Item::new(9, pt(0.1, 2e-17))],
            },
            Request::Join {
                outer: "q".into(),
                inner: "p".into(),
                algo: RcjAlgorithm::Obj,
                bounds: None,
            },
            Request::SelfJoin {
                dataset: "d".into(),
                algo: RcjAlgorithm::Auto,
                bounds: Some(RingBounds {
                    bounds: Rect::new(pt(0.5, 1.5), pt(10.25, 20.75)),
                    max_diameter: 3.375,
                }),
            },
            Request::TopK {
                outer: "q".into(),
                inner: "p".into(),
                k: 12,
            },
            Request::Explain {
                outer: "q".into(),
                inner: Some("p".into()),
                algo: RcjAlgorithm::Inj,
                k: Some(4),
            },
            Request::Explain {
                outer: "d".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                k: None,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let parsed = Request::parse(&req.encode()).unwrap();
            // RingBounds has no PartialEq; compare the re-encoding,
            // which is injective over the request structure.
            assert_eq!(req.encode(), parsed.encode(), "{req:?}");
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "",
            "FROBNICATE x",
            "LOAD",
            "LOAD name btree",
            "LOAD bad name rtree",
            "JOIN onlyone",
            "JOIN q p algo=fastest",
            "JOIN q p bounds=1,2,3",
            "JOIN q p bounds=1,2,3,4", // maxd missing
            "JOIN q p maxd=5",         // bounds missing
            "TOPK q p notanumber",
            "EXPLAIN",
            "EXPLAIN a b c",
            "JOIN q p frobnicate=1",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(Request::parse("LOAD d rtree\n1 2").is_err());
        assert!(Request::parse("LOAD d rtree\n1 x y").is_err());
    }

    #[test]
    fn pair_rows_round_trip_bit_exactly() {
        let pairs = vec![
            RcjPair::new(
                Item::new(1, pt(0.1 + 0.2, 1e300)),
                Item::new(2, pt(-0.0, 2.5e-308)),
            ),
            RcjPair::new(Item::new(3, pt(7.0, 8.0)), Item::new(4, pt(9.5, 10.25))),
        ];
        let parsed = parse_pairs(&encode_pairs(&pairs)).unwrap();
        assert_eq!(parsed, pairs);
        assert!(parse_pairs("1 2 3\n").is_err());
    }

    #[test]
    fn replies_parse_fields_and_errors() {
        let payload = Reply::encode(&[("pairs", "3".into()), ("shards", "2".into())], "a b\n");
        let reply = Reply::parse(&payload).unwrap();
        assert_eq!(reply.field("pairs"), Some("3"));
        assert_eq!(reply.field("shards"), Some("2"));
        assert_eq!(reply.field("missing"), None);
        assert_eq!(reply.body, "a b\n");

        let err = Reply::parse(&Reply::encode_err("it\nbroke")).unwrap_err();
        match err {
            ServerError::Remote(msg) => assert_eq!(msg, "it broke"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(Reply::parse("WAT 1").is_err());
        assert!(Reply::parse("OK pairs").is_err());
    }

    #[test]
    fn rects_round_trip_including_degenerate_and_empty() {
        for rect in [
            Rect::new(pt(-1.5, 2.25), pt(3.75, 1e300)),
            Rect::new(pt(0.1 + 0.2, -0.0), pt(0.1 + 0.2, -0.0)),
            Rect::empty(),
        ] {
            let wire = encode_rect(rect);
            let back = parse_rect(&wire).unwrap();
            assert_eq!(encode_rect(back), wire, "rect drifted through the wire");
        }
        assert!(parse_rect("1,2,3").is_err(), "three coordinates");
        assert!(parse_rect("1,2,3,x").is_err(), "non-numeric");
        assert!(parse_rect("1,2,3,4,5").is_err(), "five coordinates");
    }

    #[test]
    fn tagged_pair_rows_round_trip_with_their_leaf_indices() {
        let tagged = vec![
            (
                0usize,
                RcjPair::new(
                    Item::new(1, pt(0.1 + 0.2, 1e-300)),
                    Item::new(2, pt(-7.0, 8.5)),
                ),
            ),
            (
                41,
                RcjPair::new(Item::new(3, pt(1.0, 2.0)), Item::new(4, pt(3.0, 4.0))),
            ),
        ];
        let parsed = parse_tagged_pairs(&encode_tagged_pairs(&tagged)).unwrap();
        assert_eq!(parsed, tagged);
        assert!(parse_tagged_pairs("1 2 3 4 5 6\n").is_err(), "untagged row");
        assert!(parse_tagged_pairs("x 1 2 3 4 5 6\n").is_err(), "bad leaf");
    }

    #[test]
    fn stats_fields_survive_a_reply_round_trip() {
        let stats = RcjStats {
            candidate_pairs: 10,
            result_pairs: 3,
            filter_heap_pops: 77,
            filter_node_reads: 5,
            verify_node_visits: 9,
        };
        let fields: Vec<(&str, String)> = encode_stats_fields(&stats).into_iter().collect();
        let reply = Reply::parse(&Reply::encode(&fields, "")).unwrap();
        assert_eq!(stats_from_reply(&reply), stats);
        // Absent fields default to zero rather than failing the reply.
        let bare = Reply::parse(&Reply::encode(&[("candidates", "4".into())], "")).unwrap();
        assert_eq!(stats_from_reply(&bare).candidate_pairs, 4);
        assert_eq!(stats_from_reply(&bare).result_pairs, 0);
    }

    #[test]
    fn shard_requests_round_trip_through_encode_parse() {
        let cell = Rect::new(pt(-10.0, -10.0), pt(0.5, 7.25));
        let reqs = vec![
            ShardRequest::Hello,
            ShardRequest::Shutdown,
            ShardRequest::Load {
                name: "pts".into(),
                kind: IndexKind::Quadtree,
                cell,
                spill: Some("/tmp/spill.pages".into()),
                writer: true,
                items: vec![Item::new(9, pt(1.5, -2.5))],
            },
            ShardRequest::Load {
                name: "q".into(),
                kind: IndexKind::Rtree,
                cell,
                spill: None,
                writer: false,
                items: Vec::new(),
            },
            ShardRequest::Join {
                outer: "a".into(),
                inner: Some("b".into()),
                algo: RcjAlgorithm::Bij,
                bounds: Some(RingBounds {
                    bounds: Rect::new(pt(0.0, 0.0), pt(50.0, 50.0)),
                    max_diameter: 4.0,
                }),
            },
            ShardRequest::Join {
                outer: "a".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                bounds: None,
            },
            ShardRequest::TopK {
                outer: "a".into(),
                inner: Some("b".into()),
                k: 12,
            },
            ShardRequest::Explain {
                outer: "a".into(),
                inner: None,
                algo: RcjAlgorithm::Inj,
                k: Some(3),
            },
        ];
        for req in reqs {
            let wire = req.encode();
            let back = ShardRequest::parse(&wire).unwrap();
            assert_eq!(back.encode(), wire, "shard request drifted: {wire:?}");
        }
        assert!(ShardRequest::parse("SLOAD x rtree").is_err(), "no cell");
        assert!(ShardRequest::parse("SJOIN").is_err(), "no outer");
        assert!(ShardRequest::parse("STOPK a notanum").is_err());
    }

    #[test]
    fn update_requests_round_trip_through_encode_parse() {
        let reqs = [
            Request::Insert {
                name: "pts".into(),
                items: vec![
                    Item::new(7, pt(0.1 + 0.2, -3.5)),
                    Item::new(9, pt(1e-300, 2.0)),
                ],
            },
            Request::Delete {
                name: "pts".into(),
                ids: vec![7, 9, u64::MAX],
            },
            Request::Upsert {
                name: "pts".into(),
                items: vec![Item::new(7, pt(4.25, 5.5))],
            },
        ];
        for req in reqs {
            let parsed = Request::parse(&req.encode()).unwrap();
            assert_eq!(req.encode(), parsed.encode(), "{req:?}");
        }
        assert!(Request::parse("INSERT").is_err(), "no name");
        assert!(Request::parse("DELETE d\n1 2 3").is_err(), "id x y row");
        assert!(Request::parse("UPSERT d\n1 2").is_err(), "short row");
    }

    #[test]
    fn shard_update_round_trips_mixed_mutation_rows() {
        let req = ShardRequest::Update {
            name: "pts".into(),
            target_epoch: 3,
            ops: vec![
                Mutation::Insert(Item::new(1, pt(0.1 + 0.2, -0.0))),
                Mutation::Delete(2),
                Mutation::Upsert(Item::new(3, pt(1e300, 2.5e-308))),
            ],
        };
        let wire = req.encode();
        let back = ShardRequest::parse(&wire).unwrap();
        assert_eq!(back.encode(), wire, "SUPDATE drifted: {wire:?}");
        let ShardRequest::Update {
            target_epoch, ops, ..
        } = back
        else {
            panic!("parsed to a different verb");
        };
        assert_eq!(target_epoch, 3);
        assert_eq!(ops.len(), 3);
        assert!(
            ShardRequest::parse("SUPDATE pts\n+ 1 2 3").is_err(),
            "epoch= is mandatory"
        );
        assert!(
            ShardRequest::parse("SUPDATE pts epoch=1\n* 1 2 3").is_err(),
            "unknown mutation marker"
        );
    }
}
