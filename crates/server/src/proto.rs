//! The wire protocol: length-prefixed UTF-8 frames over TCP.
//!
//! Every message — request or response — is one **frame**: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 text.
//! A request payload is a command line (plus, for `LOAD`, a body of data
//! rows); a response payload is a status line (`OK key=value ...` or
//! `ERR message`) plus an optional body. One request yields exactly one
//! response; requests are served in order on a connection.
//!
//! | request | body | response body |
//! |---|---|---|
//! | `LOAD <name> <rtree\|quadtree>` | `id x y` rows | — |
//! | `JOIN <outer> <inner> [algo=..] [bounds=x0,y0,x1,y1 maxd=D]` | — | pair rows |
//! | `SELFJOIN <dataset> [algo=..] [bounds=.. maxd=..]` | — | pair rows |
//! | `TOPK <outer> <inner> <k>` | — | pair rows |
//! | `EXPLAIN <outer> [<inner>] [algo=..] [k=K]` | — | plan text |
//! | `STATS` | — | catalog text |
//! | `SHUTDOWN` | — | — |
//!
//! Pair rows are `p_id p_x p_y q_id q_x q_y` (floats in Rust's
//! shortest-round-trip `Display` form, so coordinates survive the wire
//! bit-exactly and a client can re-derive centers and radii without
//! loss). Numbers in command lines use the same convention.

use crate::sharded::RingBounds;
use crate::ServerError;
use ringjoin_core::{IndexKind, RcjAlgorithm, RcjPair};
use ringjoin_geom::{pt, Item, Rect};
use std::io::{Read, Write};

/// Hard cap on a frame payload (64 MiB): a malformed or hostile length
/// prefix must not make either end allocate unboundedly.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean end of
/// stream (EOF before any length byte); errors on truncated frames,
/// oversized lengths, and non-UTF-8 payloads.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated frame length",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// A parsed client request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Register a dataset on every shard.
    Load {
        /// Dataset name (no whitespace).
        name: String,
        /// Index kind to build.
        kind: IndexKind,
        /// The points.
        items: Vec<Item>,
    },
    /// Bichromatic join (`outer` drives, `inner` is probed).
    Join {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset name.
        inner: String,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional region-of-interest restriction.
        bounds: Option<RingBounds>,
    },
    /// Self-join of one dataset.
    SelfJoin {
        /// The dataset.
        dataset: String,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional region-of-interest restriction.
        bounds: Option<RingBounds>,
    },
    /// The `k` most compact pairs, ascending ring diameter.
    TopK {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset name.
        inner: String,
        /// How many pairs.
        k: usize,
    },
    /// Print the resolved plan plus the sharding postscript.
    Explain {
        /// Outer dataset name.
        outer: String,
        /// Inner dataset (`None` = self-join explain).
        inner: Option<String>,
        /// Algorithm (default `Auto`).
        algo: RcjAlgorithm,
        /// Optional top-k bound.
        k: Option<usize>,
    },
    /// Server catalog and counters.
    Stats,
    /// Stop the server after acknowledging.
    Shutdown,
}

/// Validates a dataset name for the wire: non-empty, no whitespace or
/// control characters (names are whitespace-delimited on the wire).
pub fn validate_name(name: &str) -> Result<(), ServerError> {
    if name.is_empty() {
        return Err(ServerError::BadRequest("empty dataset name".into()));
    }
    if name.chars().any(|c| c.is_whitespace() || c.is_control()) {
        return Err(ServerError::BadRequest(format!(
            "dataset name {name:?} contains whitespace or control characters"
        )));
    }
    Ok(())
}

fn kind_name(kind: IndexKind) -> &'static str {
    kind.name()
}

fn parse_kind(s: &str) -> Result<IndexKind, ServerError> {
    match s {
        "rtree" => Ok(IndexKind::Rtree),
        "quadtree" => Ok(IndexKind::Quadtree),
        other => Err(ServerError::BadRequest(format!(
            "unknown index kind {other:?}"
        ))),
    }
}

fn algo_name(algo: RcjAlgorithm) -> String {
    algo.name().to_lowercase()
}

fn parse_algo(s: &str) -> Result<RcjAlgorithm, ServerError> {
    RcjAlgorithm::from_name(s)
        .ok_or_else(|| ServerError::BadRequest(format!("unknown algorithm {s:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ServerError> {
    s.parse()
        .map_err(|_| ServerError::BadRequest(format!("invalid {what}: {s:?}")))
}

fn encode_bounds(out: &mut String, bounds: &Option<RingBounds>) {
    if let Some(rb) = bounds {
        out.push_str(&format!(
            " bounds={},{},{},{} maxd={}",
            rb.bounds.min.x, rb.bounds.min.y, rb.bounds.max.x, rb.bounds.max.y, rb.max_diameter
        ));
    }
}

/// Parses `algo=`/`bounds=`/`maxd=`/`k=` options from command-line
/// tokens; unknown options are a protocol error.
struct Options {
    algo: RcjAlgorithm,
    bounds: Option<Rect>,
    maxd: Option<f64>,
    k: Option<usize>,
}

fn parse_options(tokens: &[&str]) -> Result<Options, ServerError> {
    let mut opts = Options {
        algo: RcjAlgorithm::Auto,
        bounds: None,
        maxd: None,
        k: None,
    };
    for t in tokens {
        let (key, value) = t.split_once('=').ok_or_else(|| {
            ServerError::BadRequest(format!("expected key=value option, got {t:?}"))
        })?;
        match key {
            "algo" => opts.algo = parse_algo(value)?,
            "maxd" => opts.maxd = Some(parse_num(value, "maxd")?),
            "k" => opts.k = Some(parse_num(value, "k")?),
            "bounds" => {
                let nums: Vec<f64> = value
                    .split(',')
                    .map(|v| parse_num(v, "bounds coordinate"))
                    .collect::<Result<_, _>>()?;
                if nums.len() != 4 {
                    return Err(ServerError::BadRequest(
                        "bounds needs exactly x0,y0,x1,y1".into(),
                    ));
                }
                opts.bounds = Some(Rect::new(pt(nums[0], nums[1]), pt(nums[2], nums[3])));
            }
            other => return Err(ServerError::BadRequest(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

fn ring_bounds(opts: &Options) -> Result<Option<RingBounds>, ServerError> {
    match (opts.bounds, opts.maxd) {
        (None, None) => Ok(None),
        (Some(bounds), Some(max_diameter)) => Ok(Some(RingBounds {
            bounds,
            max_diameter,
        })),
        _ => Err(ServerError::BadRequest(
            "bounds= and maxd= must be given together".into(),
        )),
    }
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Load { name, kind, items } => {
                let mut out = format!("LOAD {name} {}\n", kind_name(*kind));
                for it in items {
                    out.push_str(&format!("{} {} {}\n", it.id, it.point.x, it.point.y));
                }
                out
            }
            Request::Join {
                outer,
                inner,
                algo,
                bounds,
            } => {
                let mut out = format!("JOIN {outer} {inner} algo={}", algo_name(*algo));
                encode_bounds(&mut out, bounds);
                out
            }
            Request::SelfJoin {
                dataset,
                algo,
                bounds,
            } => {
                let mut out = format!("SELFJOIN {dataset} algo={}", algo_name(*algo));
                encode_bounds(&mut out, bounds);
                out
            }
            Request::TopK { outer, inner, k } => format!("TOPK {outer} {inner} {k}"),
            Request::Explain {
                outer,
                inner,
                algo,
                k,
            } => {
                let mut out = format!("EXPLAIN {outer}");
                if let Some(inner) = inner {
                    out.push_str(&format!(" {inner}"));
                }
                out.push_str(&format!(" algo={}", algo_name(*algo)));
                if let Some(k) = k {
                    out.push_str(&format!(" k={k}"));
                }
                out
            }
            Request::Stats => "STATS".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Parses a frame payload into a request.
    pub fn parse(payload: &str) -> Result<Request, ServerError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, body),
            None => (payload, ""),
        };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = tokens.split_first() else {
            return Err(ServerError::BadRequest("empty request".into()));
        };
        match cmd {
            "LOAD" => {
                let [name, kind] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: LOAD <name> <rtree|quadtree>".into(),
                    ));
                };
                validate_name(name)?;
                let items = parse_item_rows(body)?;
                Ok(Request::Load {
                    name: name.to_string(),
                    kind: parse_kind(kind)?,
                    items,
                })
            }
            "JOIN" => {
                let [outer, inner, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: JOIN <outer> <inner> [algo=..] [bounds=.. maxd=..]".into(),
                    ));
                };
                let opts = parse_options(rest)?;
                Ok(Request::Join {
                    outer: outer.to_string(),
                    inner: inner.to_string(),
                    algo: opts.algo,
                    bounds: ring_bounds(&opts)?,
                })
            }
            "SELFJOIN" => {
                let [dataset, rest @ ..] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: SELFJOIN <dataset> [algo=..] [bounds=.. maxd=..]".into(),
                    ));
                };
                let opts = parse_options(rest)?;
                Ok(Request::SelfJoin {
                    dataset: dataset.to_string(),
                    algo: opts.algo,
                    bounds: ring_bounds(&opts)?,
                })
            }
            "TOPK" => {
                let [outer, inner, k] = args else {
                    return Err(ServerError::BadRequest(
                        "usage: TOPK <outer> <inner> <k>".into(),
                    ));
                };
                Ok(Request::TopK {
                    outer: outer.to_string(),
                    inner: inner.to_string(),
                    k: parse_num(k, "k")?,
                })
            }
            "EXPLAIN" => {
                let (names, rest): (Vec<&str>, Vec<&str>) =
                    args.iter().partition(|t| !t.contains('='));
                let (outer, inner) = match names.as_slice() {
                    [outer] => (outer.to_string(), None),
                    [outer, inner] => (outer.to_string(), Some(inner.to_string())),
                    _ => {
                        return Err(ServerError::BadRequest(
                            "usage: EXPLAIN <outer> [<inner>] [algo=..] [k=K]".into(),
                        ))
                    }
                };
                let opts = parse_options(&rest)?;
                Ok(Request::Explain {
                    outer,
                    inner,
                    algo: opts.algo,
                    k: opts.k,
                })
            }
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(ServerError::BadRequest(format!(
                "unknown command {other:?}"
            ))),
        }
    }
}

/// Parses `id x y` data rows (used by `LOAD`).
fn parse_item_rows(body: &str) -> Result<Vec<Item>, ServerError> {
    let mut items = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [id, x, y] = fields.as_slice() else {
            return Err(ServerError::BadRequest(format!(
                "expected `id x y` data row, got {line:?}"
            )));
        };
        items.push(Item::new(
            parse_num(id, "item id")?,
            pt(parse_num(x, "x coordinate")?, parse_num(y, "y coordinate")?),
        ));
    }
    Ok(items)
}

/// Encodes result pairs as wire rows (`p_id p_x p_y q_id q_x q_y`, one
/// per line, shortest-round-trip floats).
pub fn encode_pairs(pairs: &[RcjPair]) -> String {
    let mut out = String::new();
    for pr in pairs {
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            pr.p.id, pr.p.point.x, pr.p.point.y, pr.q.id, pr.q.point.x, pr.q.point.y
        ));
    }
    out
}

/// Parses wire pair rows back into [`RcjPair`]s (bit-exact round trip).
pub fn parse_pairs(body: &str) -> Result<Vec<RcjPair>, ServerError> {
    let mut pairs = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [pid, px, py, qid, qx, qy] = fields.as_slice() else {
            return Err(ServerError::BadRequest(format!(
                "expected 6-field pair row, got {line:?}"
            )));
        };
        pairs.push(RcjPair::new(
            Item::new(
                parse_num(pid, "p id")?,
                pt(parse_num(px, "p x")?, parse_num(py, "p y")?),
            ),
            Item::new(
                parse_num(qid, "q id")?,
                pt(parse_num(qx, "q x")?, parse_num(qy, "q y")?),
            ),
        ));
    }
    Ok(pairs)
}

/// A parsed server response: the `OK` status-line fields plus the body.
/// (`ERR` responses surface as errors before a `Reply` is built.)
#[derive(Clone, Debug, Default)]
pub struct Reply {
    /// `key=value` fields of the status line, in order.
    pub fields: Vec<(String, String)>,
    /// Everything after the status line.
    pub body: String,
}

impl Reply {
    /// Builds an `OK` payload from fields and a body.
    pub fn encode(fields: &[(&str, String)], body: &str) -> String {
        let mut out = String::from("OK");
        for (k, v) in fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        out.push_str(body);
        out
    }

    /// Builds an `ERR` payload.
    pub fn encode_err(message: &str) -> String {
        // Keep the status machine-parsable: the message stays on one line.
        format!("ERR {}", message.replace('\n', " "))
    }

    /// Parses a response payload; `ERR` payloads become
    /// [`ServerError::Remote`].
    pub fn parse(payload: &str) -> Result<Reply, ServerError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, body),
            None => (payload, ""),
        };
        if let Some(msg) = line.strip_prefix("ERR") {
            return Err(ServerError::Remote(msg.trim().to_string()));
        }
        let Some(rest) = line.strip_prefix("OK") else {
            return Err(ServerError::BadRequest(format!(
                "malformed response status line {line:?}"
            )));
        };
        let fields = rest
            .split_whitespace()
            .map(|t| match t.split_once('=') {
                Some((k, v)) => Ok((k.to_string(), v.to_string())),
                None => Err(ServerError::BadRequest(format!(
                    "malformed response field {t:?}"
                ))),
            })
            .collect::<Result<_, _>>()?;
        Ok(Reply {
            fields,
            body: body.to_string(),
        })
    }

    /// Looks up a status-line field.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        write_frame(&mut buf, "unicode ✓".as_bytes()).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello frame");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "unicode ✓");
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF

        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME + 1).to_be_bytes().to_vec();
        let mut r = std::io::Cursor::new(huge);
        assert!(read_frame(&mut r).is_err());
        // Truncated payloads error rather than hang or return garbage.
        let mut short: Vec<u8> = 10u32.to_be_bytes().to_vec();
        short.extend_from_slice(b"abc");
        assert!(read_frame(&mut std::io::Cursor::new(short)).is_err());
    }

    #[test]
    fn requests_round_trip_through_encode_parse() {
        let reqs = [
            Request::Load {
                name: "shops".into(),
                kind: IndexKind::Quadtree,
                items: vec![Item::new(7, pt(1.25, -3.5)), Item::new(9, pt(0.1, 2e-17))],
            },
            Request::Join {
                outer: "q".into(),
                inner: "p".into(),
                algo: RcjAlgorithm::Obj,
                bounds: None,
            },
            Request::SelfJoin {
                dataset: "d".into(),
                algo: RcjAlgorithm::Auto,
                bounds: Some(RingBounds {
                    bounds: Rect::new(pt(0.5, 1.5), pt(10.25, 20.75)),
                    max_diameter: 3.375,
                }),
            },
            Request::TopK {
                outer: "q".into(),
                inner: "p".into(),
                k: 12,
            },
            Request::Explain {
                outer: "q".into(),
                inner: Some("p".into()),
                algo: RcjAlgorithm::Inj,
                k: Some(4),
            },
            Request::Explain {
                outer: "d".into(),
                inner: None,
                algo: RcjAlgorithm::Auto,
                k: None,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let parsed = Request::parse(&req.encode()).unwrap();
            // RingBounds has no PartialEq; compare the re-encoding,
            // which is injective over the request structure.
            assert_eq!(req.encode(), parsed.encode(), "{req:?}");
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "",
            "FROBNICATE x",
            "LOAD",
            "LOAD name btree",
            "LOAD bad name rtree",
            "JOIN onlyone",
            "JOIN q p algo=fastest",
            "JOIN q p bounds=1,2,3",
            "JOIN q p bounds=1,2,3,4", // maxd missing
            "JOIN q p maxd=5",         // bounds missing
            "TOPK q p notanumber",
            "EXPLAIN",
            "EXPLAIN a b c",
            "JOIN q p frobnicate=1",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(Request::parse("LOAD d rtree\n1 2").is_err());
        assert!(Request::parse("LOAD d rtree\n1 x y").is_err());
    }

    #[test]
    fn pair_rows_round_trip_bit_exactly() {
        let pairs = vec![
            RcjPair::new(
                Item::new(1, pt(0.1 + 0.2, 1e300)),
                Item::new(2, pt(-0.0, 2.5e-308)),
            ),
            RcjPair::new(Item::new(3, pt(7.0, 8.0)), Item::new(4, pt(9.5, 10.25))),
        ];
        let parsed = parse_pairs(&encode_pairs(&pairs)).unwrap();
        assert_eq!(parsed, pairs);
        assert!(parse_pairs("1 2 3\n").is_err());
    }

    #[test]
    fn replies_parse_fields_and_errors() {
        let payload = Reply::encode(&[("pairs", "3".into()), ("shards", "2".into())], "a b\n");
        let reply = Reply::parse(&payload).unwrap();
        assert_eq!(reply.field("pairs"), Some("3"));
        assert_eq!(reply.field("shards"), Some("2"));
        assert_eq!(reply.field("missing"), None);
        assert_eq!(reply.body, "a b\n");

        let err = Reply::parse(&Reply::encode_err("it\nbroke")).unwrap_err();
        match err {
            ServerError::Remote(msg) => assert_eq!(msg, "it broke"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(Reply::parse("WAT 1").is_err());
        assert!(Reply::parse("OK pairs").is_err());
    }
}
