//! The space partition shard routing is built on: a longest-axis
//! median split (a k-d-style split tree) dividing the plane into `n`
//! disjoint **half-open** cells balanced by point count.
//!
//! Cells are half-open (min-inclusive, max-exclusive per axis) and the
//! outermost cells extend to infinity, so [`SpacePartition::locate`] is
//! a *total* function: every point of the plane belongs to exactly one
//! cell. That totality is what makes sharded execution lossless — each
//! outer leaf group (by its region center) and each top-k `q` point (by
//! its location) is owned by exactly one shard, whatever the data does
//! at cell boundaries (duplicates, points exactly on a split line).

use ringjoin_geom::{Point, Rect};

/// One interior split or a terminal cell of the split tree.
enum SplitNode {
    /// Terminal: the cell id.
    Cell(usize),
    /// Interior: points with `coord(axis) < at` go left, the rest right.
    Split {
        axis: usize,
        at: f64,
        left: Box<SplitNode>,
        right: Box<SplitNode>,
    },
}

/// A longest-axis median-split partition of the plane into `n` disjoint
/// half-open cells, balanced by the point multiset it was built from.
pub struct SpacePartition {
    root: SplitNode,
    cells: Vec<Rect>,
}

fn coord(p: Point, axis: usize) -> f64 {
    if axis == 0 {
        p.x
    } else {
        p.y
    }
}

/// The whole plane as a (half-open) rectangle.
fn plane() -> Rect {
    Rect::new(
        Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        Point::new(f64::INFINITY, f64::INFINITY),
    )
}

impl SpacePartition {
    /// Builds a partition of the plane into `cells >= 1` half-open cells
    /// from the point multiset, splitting each region at the weighted
    /// median of its longest axis so cell populations stay proportional
    /// to the cell counts they subdivide into.
    ///
    /// Deterministic in the multiset of points (input order is
    /// irrelevant). Degenerate inputs — empty, or all points identical —
    /// still produce `cells` total cells; the surplus ones are simply
    /// empty of data.
    ///
    /// # Panics
    /// Panics if `cells == 0` (a shard *count* must be at least one —
    /// callers validate user input before building).
    pub fn build(points: &[Point], cells: usize) -> SpacePartition {
        assert!(cells >= 1, "a space partition needs at least one cell");
        let mut pts: Vec<Point> = points.to_vec();
        let mut out = SpacePartition {
            root: SplitNode::Cell(0),
            cells: vec![Rect::empty(); cells],
        };
        let mut next_id = 0;
        out.root = split(&mut pts, cells, plane(), &mut next_id, &mut out.cells);
        debug_assert_eq!(next_id, cells);
        out
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `false` — a partition always has at least one cell (paired with
    /// [`SpacePartition::len`] for the usual container idiom).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The half-open region of cell `i`; outermost cells extend to
    /// infinity.
    pub fn cell(&self, i: usize) -> Rect {
        self.cells[i]
    }

    /// The unique cell containing `p` (half-open membership: a point
    /// exactly on a split line belongs to the right/upper side).
    pub fn locate(&self, p: Point) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                SplitNode::Cell(id) => return *id,
                SplitNode::Split {
                    axis,
                    at,
                    left,
                    right,
                } => {
                    node = if coord(p, *axis) < *at { left } else { right };
                }
            }
        }
    }
}

/// Recursive splitter: carves `region` into `cells` half-open cells over
/// the points currently inside it, registering each terminal cell's
/// region under the next id.
fn split(
    points: &mut [Point],
    cells: usize,
    region: Rect,
    next_id: &mut usize,
    out: &mut [Rect],
) -> SplitNode {
    if cells == 1 {
        let id = *next_id;
        *next_id += 1;
        out[id] = region;
        return SplitNode::Cell(id);
    }
    let left_cells = cells / 2;
    let right_cells = cells - left_cells;

    // Longest axis of the *data* extent (ties and empty slices fall back
    // to x), split at the coordinate that puts ~left_cells/cells of the
    // points strictly below it.
    let bbox = Rect::from_points(points.iter().copied());
    let axis = match bbox {
        Some(b) if (b.max.y - b.min.y) > (b.max.x - b.min.x) => 1,
        _ => 0,
    };
    points.sort_by(|a, b| coord(*a, axis).total_cmp(&coord(*b, axis)));
    let at = if points.is_empty() {
        // No data to balance: split the (possibly infinite) region at a
        // deterministic finite coordinate.
        let lo = coord(region.min, axis);
        let hi = coord(region.max, axis);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => (lo + hi) / 2.0,
            (true, false) => lo + 1.0,
            (false, true) => hi - 1.0,
            (false, false) => 0.0,
        }
    } else {
        let target = (points.len() * left_cells / cells).min(points.len() - 1);
        coord(points[target], axis)
    };
    // Half-open split: strictly-below goes left, `>= at` goes right (all
    // duplicates of the median coordinate land on one side, keeping the
    // predicate and the cell geometry in exact agreement).
    let cut = points.partition_point(|p| coord(*p, axis) < at);
    let (lo_pts, hi_pts) = points.split_at_mut(cut);

    let mut left_region = region;
    let mut right_region = region;
    if axis == 0 {
        left_region.max.x = at;
        right_region.min.x = at;
    } else {
        left_region.max.y = at;
        right_region.min.y = at;
    }
    let left = Box::new(split(lo_pts, left_cells, left_region, next_id, out));
    let right = Box::new(split(hi_pts, right_cells, right_region, next_id, out));
    SplitNode::Split {
        axis,
        at,
        left,
        right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;

    fn points(n: usize, seed: u64) -> Vec<Point> {
        ringjoin_testsupport::lcg_points(n, seed, 1000.0)
            .into_iter()
            .map(|(x, y)| pt(x, y))
            .collect()
    }

    #[test]
    fn locate_is_total_and_agrees_with_cell_geometry() {
        let pts = points(500, 11);
        for cells in [1, 2, 3, 4, 7, 8] {
            let part = SpacePartition::build(&pts, cells);
            assert_eq!(part.len(), cells);
            assert!(!part.is_empty());
            for p in &pts {
                let id = part.locate(*p);
                assert!(id < cells);
                // Exactly one cell claims the point, and it is locate's.
                let owners: Vec<usize> = (0..cells)
                    .filter(|&i| part.cell(i).contains_point_half_open(*p))
                    .collect();
                assert_eq!(owners, vec![id], "cells={cells} point {p:?}");
            }
        }
    }

    #[test]
    fn populations_are_balanced() {
        let pts = points(1000, 13);
        for cells in [2, 4, 8] {
            let part = SpacePartition::build(&pts, cells);
            let mut counts = vec![0usize; cells];
            for p in &pts {
                counts[part.locate(*p)] += 1;
            }
            let expect = pts.len() / cells;
            for (i, c) in counts.iter().enumerate() {
                assert!(
                    *c >= expect / 2 && *c <= expect * 2,
                    "cell {i} holds {c} of {} points across {cells} cells",
                    pts.len()
                );
            }
        }
    }

    #[test]
    fn boundary_points_belong_to_exactly_one_cell() {
        // Many duplicates exactly at the median: the split predicate and
        // the half-open cells must agree on where they live.
        let mut pts = vec![pt(5.0, 5.0); 50];
        pts.extend((0..50).map(|i| pt(i as f64 / 10.0, 5.0)));
        for cells in [2, 3, 4] {
            let part = SpacePartition::build(&pts, cells);
            for p in &pts {
                let owners = (0..cells)
                    .filter(|&i| part.cell(i).contains_point_half_open(*p))
                    .count();
                assert_eq!(owners, 1);
            }
        }
    }

    #[test]
    fn degenerate_inputs_still_produce_total_partitions() {
        // Empty input: every cell exists, locate is total.
        let part = SpacePartition::build(&[], 4);
        assert_eq!(part.len(), 4);
        let id = part.locate(pt(123.0, -456.0));
        assert!(id < 4);
        // All-identical input: duplicates land in one cell together.
        let same = vec![pt(7.0, 7.0); 40];
        let part = SpacePartition::build(&same, 4);
        let owner = part.locate(pt(7.0, 7.0));
        assert!(same.iter().all(|p| part.locate(*p) == owner));
    }

    #[test]
    fn deterministic_in_the_multiset_not_the_order() {
        let mut a = points(300, 17);
        let part1 = SpacePartition::build(&a, 4);
        a.reverse();
        let part2 = SpacePartition::build(&a, 4);
        for p in &a {
            assert_eq!(part1.locate(*p), part2.locate(*p));
        }
        for i in 0..4 {
            assert_eq!(part1.cell(i), part2.cell(i));
        }
    }
}
