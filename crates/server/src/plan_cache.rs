//! The front-door plan cache: repeated queries skip algorithm
//! resolution.
//!
//! Planning an RCJ query reads no pages — it costs one cost-model
//! evaluation over the outer dataset's catalog summary — but on a hot
//! serving path even that is repeated work, and caching it makes the
//! resolved choice *observable* (`STATS` reports hits/misses). The key
//! is `(outer, outer epoch, inner, inner epoch, query shape, requested
//! algorithm)`; the value is the concrete [`RcjAlgorithm`] the shards
//! are told to run. Dataset *names* are never replaced in place (`LOAD`
//! of a duplicate name is refused), but live updates advance a
//! dataset's **epoch** and shift its summary — so the epochs are part
//! of the key, a mutated dataset resolves afresh against its new
//! summary, and inserting a resolution evicts the entries of the same
//! query shape at retired epochs (they can never be hit again).

use ringjoin_core::RcjAlgorithm;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Which query shape a cached resolution applies to. Top-k bypasses the
/// leaf algorithms entirely (it always streams by diameter), so only
/// join shapes carry an algorithm choice — but the shape is part of the
/// key so the two can never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryShape {
    /// Bichromatic join.
    Join,
    /// Self-join.
    SelfJoin,
}

/// `(outer, outer epoch, inner + inner epoch, shape, requested
/// algorithm)` — the algorithm keyed by its stable name because
/// [`RcjAlgorithm`] itself is unordered.
type PlanKey = (String, u64, Option<(String, u64)>, QueryShape, &'static str);

/// A concurrent map from query shape to resolved algorithm, with
/// lifetime hit/miss counters.
pub struct PlanCache {
    plans: RwLock<BTreeMap<PlanKey, RcjAlgorithm>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            plans: RwLock::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached resolution for this query shape at these
    /// dataset epochs, or runs `plan` once and remembers its answer —
    /// evicting resolutions of the same shape at other (retired) epochs.
    pub fn resolve(
        &self,
        outer: &str,
        outer_epoch: u64,
        inner: Option<(&str, u64)>,
        shape: QueryShape,
        requested: RcjAlgorithm,
        plan: impl FnOnce() -> RcjAlgorithm,
    ) -> RcjAlgorithm {
        let key = (
            outer.to_string(),
            outer_epoch,
            inner.map(|(name, epoch)| (name.to_string(), epoch)),
            shape,
            requested.name(),
        );
        if let Some(&resolved) = self.plans.read().expect("plan cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return resolved;
        }
        let resolved = plan();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.write().expect("plan cache poisoned");
        // Epochs only move forward: entries for the same query shape at
        // different epochs are unreachable from now on. Dropping them
        // bounds the cache by live shapes, not by update history.
        plans.retain(|(o, oe, i, s, a), _| {
            (o.as_str(), *s, *a) != (outer, shape, requested.name())
                || (*oe, i.as_ref().map(|(n, e)| (n.as_str(), *e))) == (outer_epoch, inner)
        });
        plans.insert(key, resolved);
        resolved
    }

    /// Lifetime counters: `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_resolution_is_a_hit_and_skips_planning() {
        let cache = PlanCache::new();
        let mut planned = 0;
        for _ in 0..3 {
            let algo = cache.resolve(
                "q",
                0,
                Some(("p", 0)),
                QueryShape::Join,
                RcjAlgorithm::Auto,
                || {
                    planned += 1;
                    RcjAlgorithm::Obj
                },
            );
            assert_eq!(algo, RcjAlgorithm::Obj);
        }
        assert_eq!(planned, 1, "planning must run exactly once per shape");
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn distinct_shapes_do_not_alias() {
        let cache = PlanCache::new();
        let a = cache.resolve(
            "q",
            0,
            Some(("p", 0)),
            QueryShape::Join,
            RcjAlgorithm::Auto,
            || RcjAlgorithm::Obj,
        );
        // Same datasets, different requested algorithm: its own entry.
        let b = cache.resolve(
            "q",
            0,
            Some(("p", 0)),
            QueryShape::Join,
            RcjAlgorithm::Inj,
            || RcjAlgorithm::Inj,
        );
        // Self-join of "q" is yet another shape.
        let c = cache.resolve(
            "q",
            0,
            None,
            QueryShape::SelfJoin,
            RcjAlgorithm::Auto,
            || RcjAlgorithm::Bij,
        );
        assert_eq!(
            (a, b, c),
            (RcjAlgorithm::Obj, RcjAlgorithm::Inj, RcjAlgorithm::Bij)
        );
        assert_eq!(cache.stats(), (0, 3));
    }

    #[test]
    fn epoch_advance_invalidates_and_evicts_the_stale_entry() {
        let cache = PlanCache::new();
        let before = cache.resolve(
            "q",
            0,
            Some(("p", 0)),
            QueryShape::Join,
            RcjAlgorithm::Auto,
            || RcjAlgorithm::Obj,
        );
        // The outer dataset mutated: the epoch-1 key misses, replans
        // (possibly to a different algorithm — the summary shifted), and
        // evicts the epoch-0 entry.
        let after = cache.resolve(
            "q",
            1,
            Some(("p", 0)),
            QueryShape::Join,
            RcjAlgorithm::Auto,
            || RcjAlgorithm::Inj,
        );
        assert_eq!((before, after), (RcjAlgorithm::Obj, RcjAlgorithm::Inj));
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(
            cache.plans.read().unwrap().len(),
            1,
            "the retired epoch's entry must be evicted, not leaked"
        );
        // Going "back" to epoch 0 therefore replans — stale resolutions
        // are gone, not resurrected.
        cache.resolve(
            "q",
            0,
            Some(("p", 0)),
            QueryShape::Join,
            RcjAlgorithm::Auto,
            || RcjAlgorithm::Bij,
        );
        assert_eq!(cache.stats(), (0, 3));
    }
}
