//! The process-lifetime half of serving: a TCP listener translating
//! wire-protocol frames into [`ShardedEngine`] calls, one session
//! thread per connection.
//!
//! # Concurrency model
//!
//! The listener accepts up to [`ServerConfig::max_sessions`] concurrent
//! connections; each gets its own session thread reading frames in
//! order (so clients can pipeline) against the one shared engine.
//! Connections beyond the limit are not queued blind — they get an
//! `ERR busy` frame with a retry hint and are closed. Below the
//! sessions sits the admission gate: at most `max_inflight`
//! engine-bound requests run at once, `queue_depth` more wait, and the
//! rest are bounced with the same `ERR busy` shape. Memory is bounded
//! by construction at both layers — overload sheds load, it never
//! accumulates it.
//!
//! A request can never take the process down: every failure — protocol,
//! catalog, validation, overload — is returned to the client as an
//! `ERR` frame and the serving loop continues; only `SHUTDOWN` ends it.
//! The shutdown decision is acted on *before* the ack write, so a
//! client that dies right after sending `SHUTDOWN` still stops the
//! server.

use crate::admission::Admission;
use crate::proto::{
    encode_pairs, read_frame_idle, split_request_id, write_frame, FrameRead, Reply, Request,
};
use crate::sharded::{Mutation, ShardedEngine, ShardedOutput, UpdateInfo};
use crate::ServerError;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a session blocks in `read` before checking the shutdown
/// flag (the poll granularity of an idle connection).
const IDLE_TICK: Duration = Duration::from_millis(100);

/// The retry hint attached to `ERR busy` rejections.
const RETRY_AFTER_MS: u64 = 50;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4815` (port `0` picks an
    /// ephemeral port — query it with [`Server::local_addr`]).
    pub addr: String,
    /// Number of shard engines (must be at least 1).
    pub shards: usize,
    /// Concurrent client sessions accepted (must be at least 1);
    /// further connections are rejected with `ERR busy`.
    pub max_sessions: usize,
    /// Engine-bound requests that may *wait* for an admission slot
    /// before the server starts shedding load with `ERR busy`.
    pub queue_depth: usize,
    /// Engine-bound requests running concurrently; `0` means "one per
    /// shard", the default.
    pub max_inflight: usize,
    /// Disk-native serving: every `LOAD` spills the page space to this
    /// page file (shard 0 writes it, the replicas attach to it), and
    /// the shared buffer pool's frames become the only RAM residency of
    /// the join read path. `None` (the default) serves resident.
    pub on_disk: Option<std::path::PathBuf>,
    /// Page budget of the shared buffer pool; `0` (the default) means
    /// effectively unbounded. With [`ServerConfig::on_disk`] set, a
    /// served dataset several times larger than this budget still
    /// joins, faulting pages through the pool.
    pub buffer_pages: usize,
    /// Workers per shard cell (must be at least 1). Replicas answer
    /// byte-identically; reads round-robin across them and fail over
    /// when one is lost.
    pub replicas: usize,
    /// Where the shard workers live: in-process threads (the default),
    /// pre-started worker processes, or children this server spawns.
    pub workers: crate::sharded::WorkerSpec,
    /// Durable coordinator state: LOADs and mutation batches are
    /// appended to a write-ahead log under this directory (fsynced
    /// before any fan-out), and [`Server::bind`] replays the log —
    /// *before* the listener accepts a single session — so a restarted
    /// coordinator recovers every dataset to its logged epoch. `None`
    /// (the default) keeps the replay log in memory only.
    pub data_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4815".to_string(),
            shards: 1,
            max_sessions: 16,
            queue_depth: 32,
            max_inflight: 0,
            on_disk: None,
            buffer_pages: 0,
            replicas: 1,
            workers: crate::sharded::WorkerSpec::Local,
            data_dir: None,
        }
    }
}

/// A bound, ready-to-serve RCJ server: the TCP listener plus the
/// sharded engine behind it. Construct with [`Server::bind`], run with
/// [`Server::serve`] (blocking until a `SHUTDOWN` request).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Everything the session threads share.
struct Shared {
    engine: ShardedEngine,
    admission: Admission,
    max_sessions: usize,
    /// Live session count (incremented at accept, decremented when the
    /// session thread finishes).
    sessions: AtomicUsize,
    sessions_total: AtomicU64,
    /// Requests answered `OK` / answered `ERR` (unparseable frames land
    /// in the error bucket, not in the success count).
    requests_ok: AtomicU64,
    requests_err: AtomicU64,
    /// Connections turned away at the session limit.
    rejected_sessions: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flips the shutdown flag and pokes the listener awake so the
    /// accept loop observes it. Runs *before* any ack is written: the
    /// decision to stop must survive a client that vanishes mid-ack.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Decrements the live-session gauge even if the session errors out.
struct SessionGuard(Arc<Shared>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What handling one request decided: the response payload, whether the
/// server should stop after sending it, and whether it counts as a
/// success.
struct Handled {
    payload: String,
    shutdown: bool,
    ok: bool,
}

impl Handled {
    fn err(id: Option<u64>, e: &ServerError) -> Handled {
        Handled {
            payload: Reply::encode_err_id(id, &e.to_string()),
            shutdown: false,
            ok: false,
        }
    }
}

impl Server {
    /// Validates the configuration (shard count and session limit both
    /// at least 1), spawns the shard workers and binds the listener.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServerError> {
        if config.max_sessions == 0 {
            return Err(ServerError::BadRequest(
                "max_sessions must be at least 1 (got 0)".into(),
            ));
        }
        let engine = ShardedEngine::with_topology(crate::sharded::TopologyConfig {
            shards: config.shards,
            replicas: config.replicas,
            workers: config.workers.clone(),
            on_disk: config.on_disk.clone(),
            buffer_pages: config.buffer_pages,
            data_dir: config.data_dir.clone(),
            ..crate::sharded::TopologyConfig::default()
        })?;
        let max_inflight = if config.max_inflight == 0 {
            config.shards
        } else {
            config.max_inflight
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServerError::Io(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("bound listener has no address: {e}")))?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                engine,
                admission: Admission::new(max_inflight, config.queue_depth),
                max_sessions: config.max_sessions,
                sessions: AtomicUsize::new(0),
                sessions_total: AtomicU64::new(0),
                requests_ok: AtomicU64::new(0),
                requests_err: AtomicU64::new(0),
                rejected_sessions: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves connections until a `SHUTDOWN` request: each accepted
    /// connection gets a session thread, up to the session limit —
    /// beyond it, connections receive `ERR busy` and are closed. On
    /// shutdown the listener stops accepting, live sessions are joined
    /// (they observe the flag within one idle tick), and the shard
    /// workers drain. A per-connection I/O error drops that connection
    /// and the loop continues; only a failing `accept` (the listener
    /// itself is broken) is fatal.
    pub fn serve(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _peer) = listener.accept()?;
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            sessions.retain(|h| !h.is_finished());
            if shared.sessions.load(Ordering::SeqCst) >= shared.max_sessions {
                shared.rejected_sessions.fetch_add(1, Ordering::Relaxed);
                let mut stream = stream;
                let reject = Reply::encode_busy(
                    None,
                    RETRY_AFTER_MS,
                    &format!("session limit {} reached", shared.max_sessions),
                );
                let _ = write_frame(&mut stream, reject.as_bytes());
                continue;
            }
            shared.sessions.fetch_add(1, Ordering::SeqCst);
            shared.sessions_total.fetch_add(1, Ordering::Relaxed);
            let session_shared = Arc::clone(&shared);
            sessions.push(std::thread::spawn(move || {
                let guard = SessionGuard(session_shared);
                if let Err(e) = serve_session(stream, &guard.0) {
                    eprintln!("ringjoin-server: connection error: {e}");
                }
            }));
        }
        for handle in sessions {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One session: frames in order until EOF, a fatal I/O error, or
/// shutdown (ours or another session's, observed within an idle tick).
fn serve_session(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(IDLE_TICK))?;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame_idle(&mut stream)? {
            FrameRead::Eof => return Ok(()),
            FrameRead::Idle => continue,
            FrameRead::Frame(payload) => payload,
        };
        let handled = handle_payload(&payload, shared);
        if handled.ok {
            shared.requests_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.requests_err.fetch_add(1, Ordering::Relaxed);
        }
        if handled.shutdown {
            // Commit to stopping *before* the ack write: if the client
            // is already gone, the decision must not be lost with it.
            shared.begin_shutdown();
            let _ = write_frame(&mut stream, handled.payload.as_bytes());
            return Ok(());
        }
        write_frame(&mut stream, handled.payload.as_bytes())?;
    }
}

/// Splits the request id, parses the command, passes the admission
/// gate (engine-bound work only) and dispatches. Every failure becomes
/// an `ERR` payload carrying the request id when one was given.
fn handle_payload(payload: &str, shared: &Shared) -> Handled {
    let (id, body) = match split_request_id(payload) {
        Ok(split) => split,
        Err(e) => return Handled::err(None, &e),
    };
    let req = match Request::parse(body) {
        Ok(req) => req,
        Err(e) => return Handled::err(id, &e),
    };
    // STATS and SHUTDOWN never touch the shard workers and must stay
    // answerable on an overloaded server; everything else takes an
    // admission permit (released when the dispatch returns).
    let _permit = match req {
        Request::Hello | Request::Stats | Request::Shutdown => None,
        _ => match shared.admission.admit() {
            Ok(permit) => Some(permit),
            Err(_) => {
                return Handled {
                    payload: Reply::encode_busy(id, RETRY_AFTER_MS, "admission queue full"),
                    shutdown: false,
                    ok: false,
                }
            }
        },
    };
    dispatch(req, id, shared)
}

/// Dispatches one parsed request against the sharded engine. Every
/// error becomes an `ERR` payload — the serving process never panics on
/// a request.
fn dispatch(req: Request, id: Option<u64>, shared: &Shared) -> Handled {
    let engine = &shared.engine;
    let result: Result<(String, bool), ServerError> = match req {
        Request::Load { name, kind, items } => engine.load(&name, items, kind).map(|info| {
            (
                Reply::encode_ok(
                    id,
                    &[
                        ("dataset", info.name.clone()),
                        ("kind", info.kind.name().to_string()),
                        ("items", info.items.to_string()),
                        ("shards", engine.shard_count().to_string()),
                    ],
                    "",
                ),
                false,
            )
        }),
        Request::Insert { name, items } => {
            let ops = items.into_iter().map(Mutation::Insert).collect();
            engine
                .update(&name, ops)
                .map(|info| (update_reply(id, &info), false))
        }
        Request::Delete { name, ids } => {
            let ops = ids.into_iter().map(Mutation::Delete).collect();
            engine
                .update(&name, ops)
                .map(|info| (update_reply(id, &info), false))
        }
        Request::Upsert { name, items } => {
            let ops = items.into_iter().map(Mutation::Upsert).collect();
            engine
                .update(&name, ops)
                .map(|info| (update_reply(id, &info), false))
        }
        Request::Join {
            outer,
            inner,
            algo,
            bounds,
        } => engine
            .join(&outer, &inner, algo, bounds)
            .map(|out| (join_reply(id, &out), false)),
        Request::SelfJoin {
            dataset,
            algo,
            bounds,
        } => engine
            .self_join(&dataset, algo, bounds)
            .map(|out| (join_reply(id, &out), false)),
        Request::TopK { outer, inner, k } => engine
            .top_k(&outer, &inner, k)
            .map(|out| (join_reply(id, &out), false)),
        Request::Explain {
            outer,
            inner,
            algo,
            k,
        } => engine
            .explain(&outer, inner.as_deref(), algo, k)
            .map(|text| (Reply::encode_ok(id, &[], &text), false)),
        Request::Hello => Ok((
            Reply::encode_ok(
                id,
                &[
                    ("role", "coordinator".to_string()),
                    ("shards", engine.shard_count().to_string()),
                    ("replicas", engine.replicas().to_string()),
                ],
                "",
            ),
            false,
        )),
        Request::Stats => Ok((stats_reply(id, shared), false)),
        Request::Shutdown => Ok((Reply::encode_ok(id, &[("bye", "1".to_string())], ""), true)),
    };
    match result {
        Ok((payload, shutdown)) => Handled {
            payload,
            shutdown,
            ok: true,
        },
        Err(e) => Handled::err(id, &e),
    }
}

/// The `STATS` body: shard count, session and request counters (split
/// into `requests_ok`/`requests_err`; the counters exclude the `STATS`
/// request reporting them), admission and plan-cache counters, the
/// shared buffer pool's lifetime hit/fault counters (cache behavior on
/// the wire), and one line per loaded dataset.
fn stats_reply(id: Option<u64>, shared: &Shared) -> String {
    let engine = &shared.engine;
    let mut body = String::new();
    for name in engine.dataset_names() {
        let info = engine.dataset(&name).expect("catalog name listed");
        body.push_str(&format!(
            "dataset {name} kind={} items={} epoch={} leaves_per_shard={:?} items_per_shard={:?}\n",
            info.kind.name(),
            info.items,
            info.epoch,
            info.leaves_per_shard,
            info.items_per_shard,
        ));
    }
    let (pool_hits, pool_faults, pool_prefetch_hits, _) = engine.pool_stats();
    // Never NaN: a fresh server (0 hits + 0 faults) reports 0.0000.
    let pool_hit_rate = if pool_hits + pool_faults == 0 {
        0.0
    } else {
        pool_hits as f64 / (pool_hits + pool_faults) as f64
    };
    let (admitted, rejected_busy) = shared.admission.stats();
    let (plan_hits, plan_misses) = engine.plan_cache_stats();
    let (wal_records, wal_bytes) = engine.wal_stats();
    // Per-slot health rows (flat cell-major slot index, matching the
    // topology's routing order) keep a degraded topology observable.
    let health = engine.shard_health();
    for (i, (state, requests)) in health.iter().enumerate() {
        body.push_str(&format!(
            "shard{i}_state={state} shard{i}_requests={requests}\n"
        ));
    }
    Reply::encode_ok(
        id,
        &[
            ("shards", engine.shard_count().to_string()),
            ("replicas", engine.replicas().to_string()),
            ("replays_total", engine.replays_total().to_string()),
            ("updates_total", engine.updates_total().to_string()),
            ("wal_records", wal_records.to_string()),
            ("wal_bytes", wal_bytes.to_string()),
            ("recovered_epochs", engine.recovered_epochs().to_string()),
            (
                "shards_up",
                health
                    .iter()
                    .filter(|(state, _)| *state == "up")
                    .count()
                    .to_string(),
            ),
            ("datasets", engine.dataset_names().len().to_string()),
            (
                "sessions",
                shared.sessions.load(Ordering::SeqCst).to_string(),
            ),
            (
                "sessions_total",
                shared.sessions_total.load(Ordering::Relaxed).to_string(),
            ),
            ("max_sessions", shared.max_sessions.to_string()),
            (
                "requests_ok",
                shared.requests_ok.load(Ordering::Relaxed).to_string(),
            ),
            (
                "requests_err",
                shared.requests_err.load(Ordering::Relaxed).to_string(),
            ),
            (
                "rejected_sessions",
                shared.rejected_sessions.load(Ordering::Relaxed).to_string(),
            ),
            ("admitted", admitted.to_string()),
            ("rejected_busy", rejected_busy.to_string()),
            ("plan_cache_hits", plan_hits.to_string()),
            ("plan_cache_misses", plan_misses.to_string()),
            ("pool_hits", pool_hits.to_string()),
            ("pool_faults", pool_faults.to_string()),
            ("pool_prefetch_hits", pool_prefetch_hits.to_string()),
            ("pool_hit_rate", format!("{pool_hit_rate:.4}")),
        ],
        &body,
    )
}

/// The shared reply shape of `INSERT`/`DELETE`/`UPSERT`: the dataset's
/// new epoch and size on the status line, no body.
fn update_reply(id: Option<u64>, info: &UpdateInfo) -> String {
    Reply::encode_ok(
        id,
        &[
            ("dataset", info.name.clone()),
            ("epoch", info.epoch.to_string()),
            ("applied", info.applied.to_string()),
            ("items", info.items.to_string()),
        ],
        "",
    )
}

/// The shared reply shape of `JOIN`/`SELFJOIN`/`TOPK`: run counters on
/// the status line, pair rows in the body.
fn join_reply(id: Option<u64>, out: &ShardedOutput) -> String {
    Reply::encode_ok(
        id,
        &[
            ("pairs", out.pairs.len().to_string()),
            ("shards_queried", out.shards_queried.to_string()),
            ("candidates", out.stats.candidate_pairs.to_string()),
            ("result_pairs", out.stats.result_pairs.to_string()),
            ("heap_pops", out.stats.filter_heap_pops.to_string()),
            ("filter_node_reads", out.stats.filter_node_reads.to_string()),
            (
                "verify_node_visits",
                out.stats.verify_node_visits.to_string(),
            ),
        ],
        &encode_pairs(&out.pairs),
    )
}
