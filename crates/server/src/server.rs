//! The process-lifetime half of serving: a TCP listener translating
//! wire-protocol frames into [`ShardedEngine`] calls.
//!
//! The server handles one client session at a time, requests strictly
//! in order — concurrency lives *below* the protocol, in the per-shard
//! worker threads a request fans out to. (Concurrent client sessions
//! and replicated listeners are the ROADMAP's follow-on items.) A
//! request can never take the process down: every failure — protocol,
//! catalog, validation — is returned to the client as an `ERR` frame
//! and the serving loop continues; only `SHUTDOWN` ends it.

use crate::proto::{encode_pairs, read_frame, write_frame, Reply, Request};
use crate::sharded::{ShardedEngine, ShardedOutput};
use crate::ServerError;
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:4815` (port `0` picks an
    /// ephemeral port — query it with [`Server::local_addr`]).
    pub addr: String,
    /// Number of shard engines (must be at least 1).
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4815".to_string(),
            shards: 1,
        }
    }
}

/// A bound, ready-to-serve RCJ server: the TCP listener plus the
/// sharded engine behind it. Construct with [`Server::bind`], run with
/// [`Server::serve`] (blocking until a `SHUTDOWN` request).
pub struct Server {
    listener: TcpListener,
    engine: ShardedEngine,
    requests: u64,
}

/// What handling one request decided: the response payload, and whether
/// the serving loop should stop after sending it.
struct Handled {
    payload: String,
    shutdown: bool,
}

impl Server {
    /// Validates the configuration (shard count >= 1), spawns the shard
    /// workers and binds the listener.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServerError> {
        let engine = ShardedEngine::new(config.shards)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServerError::Io(format!("cannot bind {}: {e}", config.addr)))?;
        Ok(Server {
            listener,
            engine,
            requests: 0,
        })
    }

    /// The bound address (the actual port when the config asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Serves connections until a `SHUTDOWN` request, then drains the
    /// shard workers and returns. A per-connection I/O error drops that
    /// connection and the loop continues; only a failing `accept` (the
    /// listener itself is broken) is fatal.
    pub fn serve(mut self) -> std::io::Result<()> {
        loop {
            let (stream, _peer) = self.listener.accept()?;
            match self.serve_connection(stream) {
                Ok(true) => {
                    self.engine.shutdown();
                    return Ok(());
                }
                Ok(false) => {}
                Err(e) => eprintln!("ringjoin-server: connection error: {e}"),
            }
        }
    }

    /// Serves one connection until the peer closes it; `Ok(true)` means
    /// a `SHUTDOWN` was acknowledged.
    fn serve_connection(&mut self, mut stream: TcpStream) -> std::io::Result<bool> {
        while let Some(payload) = read_frame(&mut stream)? {
            self.requests += 1;
            let handled = match Request::parse(&payload) {
                Ok(req) => self.handle(req),
                Err(e) => Handled {
                    payload: Reply::encode_err(&e.to_string()),
                    shutdown: false,
                },
            };
            write_frame(&mut stream, handled.payload.as_bytes())?;
            if handled.shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Dispatches one parsed request against the sharded engine. Every
    /// error becomes an `ERR` payload — the serving process never
    /// panics on a request.
    fn handle(&mut self, req: Request) -> Handled {
        let result: Result<(String, bool), ServerError> = match req {
            Request::Load { name, kind, items } => {
                self.engine.load(&name, items, kind).map(|info| {
                    (
                        Reply::encode(
                            &[
                                ("dataset", info.name.clone()),
                                ("kind", info.kind.name().to_string()),
                                ("items", info.items.to_string()),
                                ("shards", self.engine.shard_count().to_string()),
                            ],
                            "",
                        ),
                        false,
                    )
                })
            }
            Request::Join {
                outer,
                inner,
                algo,
                bounds,
            } => self
                .engine
                .join(&outer, &inner, algo, bounds)
                .map(|out| (join_reply(&out), false)),
            Request::SelfJoin {
                dataset,
                algo,
                bounds,
            } => self
                .engine
                .self_join(&dataset, algo, bounds)
                .map(|out| (join_reply(&out), false)),
            Request::TopK { outer, inner, k } => self
                .engine
                .top_k(&outer, &inner, k)
                .map(|out| (join_reply(&out), false)),
            Request::Explain {
                outer,
                inner,
                algo,
                k,
            } => self
                .engine
                .explain(&outer, inner.as_deref(), algo, k)
                .map(|text| (Reply::encode(&[], &text), false)),
            Request::Stats => Ok((self.stats_reply(), false)),
            Request::Shutdown => Ok((Reply::encode(&[("bye", "1".to_string())], ""), true)),
        };
        match result {
            Ok((payload, shutdown)) => Handled { payload, shutdown },
            Err(e) => Handled {
                payload: Reply::encode_err(&e.to_string()),
                shutdown: false,
            },
        }
    }

    /// The `STATS` body: shard count, request counter, the shared
    /// buffer pool's lifetime hit/fault counters (cache behavior on the
    /// wire), and one line per loaded dataset.
    fn stats_reply(&self) -> String {
        let mut body = String::new();
        for name in self.engine.dataset_names() {
            let info = self.engine.dataset(&name).expect("catalog name listed");
            body.push_str(&format!(
                "dataset {name} kind={} items={} leaves_per_shard={:?} items_per_shard={:?}\n",
                info.kind.name(),
                info.items,
                info.leaves_per_shard,
                info.items_per_shard,
            ));
        }
        let (pool_hits, pool_faults, pool_hit_rate) = self.engine.pool_stats();
        Reply::encode(
            &[
                ("shards", self.engine.shard_count().to_string()),
                ("datasets", self.engine.dataset_names().len().to_string()),
                ("requests", self.requests.to_string()),
                ("pool_hits", pool_hits.to_string()),
                ("pool_faults", pool_faults.to_string()),
                ("pool_hit_rate", format!("{pool_hit_rate:.4}")),
            ],
            &body,
        )
    }
}

/// The shared reply shape of `JOIN`/`SELFJOIN`/`TOPK`: run counters on
/// the status line, pair rows in the body.
fn join_reply(out: &ShardedOutput) -> String {
    Reply::encode(
        &[
            ("pairs", out.pairs.len().to_string()),
            ("shards_queried", out.shards_queried.to_string()),
            ("candidates", out.stats.candidate_pairs.to_string()),
            ("result_pairs", out.stats.result_pairs.to_string()),
            ("filter_node_reads", out.stats.filter_node_reads.to_string()),
            (
                "verify_node_visits",
                out.stats.verify_node_visits.to_string(),
            ),
        ],
        &encode_pairs(&out.pairs),
    )
}
