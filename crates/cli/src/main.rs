//! `ringjoin` — command-line interface to the ring-constrained join.
//!
//! See `ringjoin help` or [`commands::USAGE`] for the command set:
//! dataset generation, bichromatic and self joins with CSV output,
//! top-k by ring diameter, precision/recall comparison against the
//! classical join operators, and the result-size bounds.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(Some(message)) => println!("{message}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
