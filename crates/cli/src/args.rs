//! A small, dependency-free argument parser: positional subcommand plus
//! `--key value` / `--flag` options.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, an optional sub-subcommand (the
/// `client <op>` form), and its options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    /// An optional second positional argument immediately after the
    /// command (e.g. the operation of `client join`). Commands that take
    /// no sub-operation reject a stray one at dispatch time.
    pub sub: Option<String>,
    /// `--key value` options (flags map to an empty string).
    pub options: BTreeMap<String, String>,
}

/// Parsing failure with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Known boolean flags (take no value).
const FLAGS: [&str; 2] = ["stats", "quiet"];

/// Parses raw arguments (without the program name).
pub fn parse(raw: &[String]) -> Result<Args, ArgError> {
    let mut iter = raw.iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| ArgError("missing subcommand".into()))?
        .clone();
    if command.starts_with("--") {
        return Err(ArgError(format!("expected subcommand, got flag {command}")));
    }
    let sub = match iter.peek() {
        Some(a) if !a.starts_with("--") => iter.next().cloned(),
        _ => None,
    };
    let mut options = BTreeMap::new();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| ArgError(format!("unexpected positional argument {arg:?}")))?;
        if key.is_empty() {
            return Err(ArgError("empty option name".into()));
        }
        if FLAGS.contains(&key) {
            options.insert(key.to_string(), String::new());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| ArgError(format!("missing value for --{key}")))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(Args {
        command,
        sub,
        options,
    })
}

impl Args {
    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed option with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    /// Required parsed option.
    pub fn req_parse<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.req(key)?;
        v.parse()
            .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}")))
    }

    /// `true` if the boolean flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&s(&["join", "--p", "p.bin", "--algo", "obj", "--stats"])).unwrap();
        assert_eq!(a.command, "join");
        assert_eq!(a.req("p").unwrap(), "p.bin");
        assert_eq!(a.opt("algo"), Some("obj"));
        assert!(a.flag("stats"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn rejects_missing_subcommand_and_values() {
        assert!(parse(&[]).is_err());
        assert!(parse(&s(&["--join"])).is_err());
        assert!(parse(&s(&["join", "--p"])).is_err());
        // A positional after the options is still an error: the sub slot
        // only exists immediately after the command.
        assert!(parse(&s(&["join", "--p", "p.bin", "stray"])).is_err());
    }

    #[test]
    fn second_positional_becomes_the_sub_operation() {
        let a = parse(&s(&["client", "join", "--outer", "q", "--inner", "p"])).unwrap();
        assert_eq!(a.command, "client");
        assert_eq!(a.sub.as_deref(), Some("join"));
        assert_eq!(a.req("outer").unwrap(), "q");
        // No sub: the slot stays empty, options parse as before.
        let b = parse(&s(&["serve", "--shards", "4"])).unwrap();
        assert_eq!(b.sub, None);
        assert_eq!(b.opt_parse::<usize>("shards", 1).unwrap(), 4);
        // A stray positional on a sub-less command parses into the slot;
        // dispatch rejects it (commands::run checks expectations).
        let c = parse(&s(&["join", "stray"])).unwrap();
        assert_eq!(c.sub.as_deref(), Some("stray"));
        // Only one extra positional fits.
        assert!(parse(&s(&["client", "join", "extra"])).is_err());
    }

    #[test]
    fn flags_take_no_value() {
        // `--stats` must not swallow the following token: `join --stats
        // --p p.bin` parses `p` as an option, not as the value of stats.
        let a = parse(&s(&["join", "--stats", "--p", "p.bin"])).unwrap();
        assert_eq!(a.opt("stats"), Some(""));
        assert_eq!(a.req("p").unwrap(), "p.bin");
        // A non-flag option does consume the next token, even if it
        // looks like an option itself.
        let b = parse(&s(&["join", "--p", "--stats"])).unwrap();
        assert_eq!(b.req("p").unwrap(), "--stats");
        assert!(!b.flag("stats"));
    }

    #[test]
    fn unknown_option_without_value_is_rejected() {
        // Unknown keys are fine when they carry a value (the subcommand
        // validates them later)...
        let ok = parse(&s(&["join", "--bogus", "1"])).unwrap();
        assert_eq!(ok.opt("bogus"), Some("1"));
        // ...but an unknown key with no value is a parse error, and the
        // message names the offending option.
        let err = parse(&s(&["join", "--bogus"])).unwrap_err();
        assert!(err.0.contains("--bogus"), "unhelpful message: {}", err.0);
        // `--` alone (empty option name) is rejected too.
        assert!(parse(&s(&["join", "--", "x"])).is_err());
    }

    #[test]
    fn missing_subcommand_is_a_clear_error() {
        let err = parse(&[]).unwrap_err();
        assert!(err.0.contains("subcommand"), "unhelpful message: {}", err.0);
        // A flag cannot stand in for the subcommand.
        let err = parse(&s(&["--stats"])).unwrap_err();
        assert!(err.0.contains("--stats"), "unhelpful message: {}", err.0);
    }

    #[test]
    fn threads_option_parses_as_count() {
        let a = parse(&s(&[
            "join",
            "--p",
            "p.bin",
            "--q",
            "q.bin",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(a.opt_parse::<usize>("threads", 1).unwrap(), 4);
        // Absent -> the default applies.
        let b = parse(&s(&["join", "--p", "p.bin", "--q", "q.bin"])).unwrap();
        assert_eq!(b.opt_parse::<usize>("threads", 1).unwrap(), 1);
        assert_eq!(b.opt("threads"), None);
        // Non-numeric thread counts are a parse error, not a silent 1.
        let c = parse(&s(&["join", "--threads", "lots"])).unwrap();
        assert!(c.opt_parse::<usize>("threads", 1).is_err());
        // `--threads` consumes a value; trailing flag form is rejected.
        assert!(parse(&s(&["join", "--threads"])).is_err());
    }

    #[test]
    fn repeated_options_last_one_wins() {
        let a = parse(&s(&["join", "--algo", "inj", "--algo", "obj"])).unwrap();
        assert_eq!(a.opt("algo"), Some("obj"));
    }

    #[test]
    fn parses_numbers_with_defaults() {
        let a = parse(&s(&["generate", "--n", "1000"])).unwrap();
        assert_eq!(a.req_parse::<usize>("n").unwrap(), 1000);
        assert_eq!(a.opt_parse::<u64>("seed", 42).unwrap(), 42);
        assert!(a.opt_parse::<usize>("n", 0).is_ok());
        let bad = parse(&s(&["generate", "--n", "abc"])).unwrap();
        assert!(bad.req_parse::<usize>("n").is_err());
    }
}
