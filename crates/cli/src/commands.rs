//! Subcommand implementations.
//!
//! Every join-shaped command (`join`, `self-join`, `top-k`, `explain`)
//! goes through the core [`Engine`]: datasets are registered under
//! names, the query builder produces an inspectable [`Plan`] (which
//! `explain` prints verbatim and `--stats` summarises as a plan line),
//! and execution is `plan.collect()` — or the diameter-ordered stream
//! with early exit for `top-k`.

use crate::args::{ArgError, Args};
use ringjoin_core::{
    bounds, rcj_join, Engine, Executor, IndexKind, Plan, QueryBuilder, RcjAlgorithm, RcjOptions,
    RcjOutput,
};
use ringjoin_datagen::{gaussian_clusters, gnis_like, io as dio, uniform, GnisDataset};
use ringjoin_rtree::{bulk_load, Item, RTree};
use ringjoin_server::{Client, Mutation, RingBounds, Server, ServerConfig};
use ringjoin_spatialjoin::{epsilon_join, k_closest_pairs, knn_join, precision_recall};
use ringjoin_storage::{CostModel, MemDisk, Pager, SharedPager};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

/// Usage text printed on error or `help`.
pub const USAGE: &str = "\
ringjoin-cli — the ring-constrained join (EDBT 2008)

USAGE: ringjoin-cli <command> [options]

COMMANDS
  generate   --kind uniform|gaussian|pp|sc|lo --n N --out FILE
             [--seed S] [--clusters W] [--sigma X]
  join       --p FILE --q FILE [--algo auto|inj|bij|obj] [--out FILE]
             [--index rtree|quadtree] [--buffer-frac F] [--page-size B]
             [--threads N] [--on-disk FILE] [--buffer-pages N] [--stats]
  self-join  --input FILE [--algo auto|inj|bij|obj] [--out FILE]
             [--index rtree|quadtree] [--threads N] [--on-disk FILE]
             [--buffer-pages N] [--stats]
  top-k      --p FILE --q FILE --k K [--index rtree|quadtree]
             [--on-disk FILE] [--buffer-pages N]
             (smallest ring diameters first, streamed with early exit)
  explain    (--p FILE --q FILE | --input FILE) [--algo ...] [--k K]
             [--index rtree|quadtree] [--threads N]
             (print the resolved query plan without running it)
  replay     --p FILE --q FILE --target p|q --log FILE [--batches N]
             [--algo ...] [--out FILE] [--index rtree|quadtree]
             [--threads N] [--stats]
             (offline oracle for live serving: load both files, apply a
              recorded mutation log batch by batch to the target dataset
              through the same engine update path, then join q against p.
              Pair order follows the mutation history, so the oracle must
              replay it — a bulk rebuild of the final pointset is wrong.
              --batches N replays only the first N batches: the oracle
              for a coordinator recovered to epoch N of a longer stream)
  compare    --p FILE --q FILE (--epsilon E | --kcp K | --knn K)
  bound      --np N --nq N  (result-size bounds)
  serve      [--addr HOST:PORT | --port N] [--shards N] [--replicas N]
             [--workers spawn|ADDR,ADDR,...] [--addr-file FILE]
             [--max-sessions N] [--queue-depth N]
             [--on-disk FILE] [--buffer-pages N] [--data-dir DIR]
             (long-lived sharded server; default 127.0.0.1:4815, 1 shard,
              16 concurrent sessions, admission queue depth 32.
              --workers promotes shard workers to remote processes:
              `spawn` launches one child per shard x replica, an address
              list connects to already-running --shard-of workers.
              --data-dir DIR makes the coordinator durable: every LOAD
              and mutation batch is fsynced to a write-ahead log there
              before any fan-out, and a restart on the same directory
              replays the log — rebuilding every dataset to its logged
              epoch — before accepting a single session)
  serve      --shard-of auto|X0,Y0,X1,Y1 [--addr HOST:PORT | --port N]
             [--addr-file FILE] [--buffer-pages N]
             (shard-worker mode: serve one coordinator's cell over the
              shard wire grammar; `auto` accepts any cell. --addr-file
              writes the bound address, for coordinators and scripts)
  client load      --name NAME --input FILE [--index rtree|quadtree]
  client join      --outer Q --inner P [--algo ..] [--out FILE] [--stats]
                   [--bounds X0,Y0,X1,Y1 --max-diameter D] [--pipeline N]
  client self-join --dataset NAME [--algo ..] [--out FILE] [--stats]
                   [--pipeline N]
  client top-k     --outer Q --inner P --k K [--out FILE] [--pipeline N]
  client explain   --outer Q [--inner P] [--algo ..] [--k K]
  client insert    --name NAME --input FILE
  client upsert    --name NAME --input FILE
  client delete    --name NAME --ids ID[,ID,...]
                   (one atomic mutation batch per call: the whole batch
                    validates or refuses, the dataset epoch advances by
                    one, and the reply's epoch/applied/items are printed)
  client mutate-stream --name NAME [--batches N] [--batch-size M]
                   [--seed S] [--id-base B] [--interval-ms T] [--log FILE]
                   (deterministic seeded stream of INSERT/UPSERT/DELETE
                    batches against a live dataset; --log records every
                    batch so `replay` can rebuild the identical mutation
                    history offline. The log is appended and fsynced at
                    every batch boundary, before the batch is sent — a
                    SIGKILLed driver always leaves a valid replayable
                    prefix covering everything the server applied)
  client stats
  client shutdown
             (every client operation takes [--addr HOST:PORT],
              [--timeout SECS] (default 30; 0 = wait forever) and
              [--retries N] (default 1 attempt; retries honor the
              server's `ERR busy` retry_after_ms hint with jittered
              backoff, and ride out connection loss — e.g. a durable
              coordinator restarting — with exponential-backoff
              reconnects); --pipeline N sends N copies back to back on
              one connection and checks the replies agree byte for byte)
  help

Dataset files are .csv (id,x,y with header) or the .bin format written
by `generate`; the extension decides the codec.

`--algo auto` (the `explain` default) lets the cost-model planner pick
the algorithm. `--threads N` runs the join on N >= 1 worker threads
(default 1, or the RINGJOIN_THREADS environment variable); parallel
output is identical to sequential output, pair for pair. `serve` shards
by space partition instead: the answer is byte-identical to the
in-process commands, whatever --shards is.

`--on-disk FILE` spills the index pages to a page file and serves them
through the buffer pool's frames alone; `--buffer-pages N` caps that
pool at N pages, so a dataset several times larger than the budget
still joins — byte-identically — with `read_faults` tracking the
paper's I/O model instead of RAM size.";

/// Executor selection: an explicit `--threads` wins; otherwise the
/// `RINGJOIN_THREADS`-aware default applies. A thread *count* must be at
/// least 1 — `--threads 0` is rejected here, and the env-var path
/// rejects `RINGJOIN_THREADS=0` the same way, so neither spelling
/// silently coerces to sequential.
fn parse_executor(args: &Args) -> Result<Executor, ArgError> {
    Ok(match args.opt("threads") {
        None => Executor::default(),
        Some(_) => {
            let n: usize = args.req_parse("threads")?;
            if n == 0 {
                return Err(ArgError(
                    "--threads must be at least 1 (got 0); omit the flag for the default".into(),
                ));
            }
            Executor::threads(n)
        }
    })
}

fn load_items(path: &str) -> Result<Vec<Item>, ArgError> {
    let res = if path.ends_with(".csv") {
        dio::load_csv(path)
    } else {
        dio::load_bin(path)
    };
    res.map_err(|e| ArgError(format!("cannot read {path}: {e}")))
}

fn save_items(path: &str, items: &[Item]) -> Result<(), ArgError> {
    let res = if path.ends_with(".csv") {
        dio::save_csv(path, items)
    } else {
        dio::save_bin(path, items)
    };
    res.map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// Parses `--algo`; `default` differs by command (`obj` for joins,
/// `auto` for `explain`).
fn parse_algo(s: Option<&str>, default: &str) -> Result<RcjAlgorithm, ArgError> {
    let name = s.unwrap_or(default);
    RcjAlgorithm::from_name(name).ok_or_else(|| ArgError(format!("unknown algorithm {name:?}")))
}

fn parse_index(s: Option<&str>) -> Result<IndexKind, ArgError> {
    match s.unwrap_or("rtree") {
        "rtree" => Ok(IndexKind::Rtree),
        "quadtree" => Ok(IndexKind::Quadtree),
        other => Err(ArgError(format!("unknown index kind {other:?}"))),
    }
}

/// Builds an engine session for one command invocation: datasets loaded
/// from the given files under fixed names, the paper's buffer rule
/// applied (or the absolute `--buffer-pages` budget), construction I/O
/// excluded from the statistics. With `--on-disk FILE` the last load
/// spills the whole page space — every dataset shares one pager — to a
/// page file, making the engine disk-native.
fn build_engine(args: &Args, self_join: bool) -> Result<Engine, ArgError> {
    let page_size: usize = args.opt_parse("page-size", 1024)?;
    let buffer_frac: f64 = args.opt_parse("buffer-frac", 0.01)?;
    let on_disk = args.opt("on-disk").map(std::path::PathBuf::from);
    let index = parse_index(args.opt("index"))?;
    let mut engine =
        Engine::with_pager(Pager::new(MemDisk::new(page_size), usize::MAX / 2).into_shared());
    if self_join {
        let items = load_items(args.req("input")?)?;
        let load = engine.load("input", items);
        match on_disk {
            Some(path) => load.on_disk(path).index(index),
            None => load.index(index),
        };
    } else {
        engine.load("p", load_items(args.req("p")?)?).index(index);
        let load = engine.load("q", load_items(args.req("q")?)?);
        match on_disk {
            Some(path) => load.on_disk(path).index(index),
            None => load.index(index),
        };
    }
    match args.opt("buffer-pages") {
        Some(_) => {
            let pages: usize = args.req_parse("buffer-pages")?;
            if pages == 0 {
                return Err(ArgError(
                    "--buffer-pages must be at least 1 (got 0); omit the flag for --buffer-frac"
                        .into(),
                ));
            }
            engine.set_buffer_pages(pages);
        }
        None => engine.set_buffer_frac(buffer_frac),
    }
    Ok(engine)
}

/// Query builder over the fixed dataset names of [`build_engine`].
fn query(engine: &Engine, self_join: bool) -> QueryBuilder<'_> {
    if self_join {
        engine.query().self_join("input")
    } else {
        engine.query().join("q", "p")
    }
}

/// Legacy tree builder for the `compare` command, whose baselines
/// (ε-join, k-closest-pairs, kNN) run over concrete R-trees.
fn build_trees(
    p_items: Vec<Item>,
    q_items: Vec<Item>,
    page_size: usize,
    buffer_frac: f64,
) -> (SharedPager, RTree, RTree) {
    let pager = Pager::new(MemDisk::new(page_size), usize::MAX / 2).into_shared();
    let tp = bulk_load(pager.clone(), p_items);
    let tq = bulk_load(pager.clone(), q_items);
    let buffer =
        (((tp.node_pages() + tq.node_pages()) as f64 * buffer_frac).ceil() as usize).max(1);
    {
        let mut pg = pager.borrow_mut();
        pg.set_buffer_capacity(buffer);
        pg.clear_buffer();
        pg.reset_stats();
    }
    (pager, tp, tq)
}

fn write_pairs(out: Option<&str>, pairs: &[ringjoin_core::RcjPair]) -> Result<(), ArgError> {
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(
            std::fs::File::create(Path::new(path))
                .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut emit = || -> std::io::Result<()> {
        writeln!(sink, "p_id,q_id,center_x,center_y,radius")?;
        for pr in pairs {
            let c = pr.center();
            writeln!(
                sink,
                "{},{},{},{},{}",
                pr.p.id,
                pr.q.id,
                c.x,
                c.y,
                pr.radius()
            )?;
        }
        Ok(())
    };
    emit().map_err(|e| ArgError(format!("write failed: {e}")))
}

/// `--stats` reporting: the resolved plan line first, then the run
/// counters.
fn report_stats(pager: &SharedPager, plan: &Plan<'_>, out: &RcjOutput) {
    let io = pager.borrow().stats();
    eprintln!("plan: {}", plan.summary_line());
    eprintln!(
        "pairs: {}  candidates: {}  node accesses: {}  hits: {}  faults: {}  \
         prefetch-hits: {}  hit-rate: {:.1}%  io-time: {:.2}s (10ms/fault)",
        out.stats.result_pairs,
        out.stats.candidate_pairs,
        io.logical_reads,
        io.read_hits,
        io.read_faults,
        io.prefetch_hits,
        100.0 * io.read_hit_rate(),
        CostModel::default().io_seconds(&io),
    );
}

fn engine_err(e: ringjoin_core::EngineError) -> ArgError {
    ArgError(e.to_string())
}

fn server_err(e: ringjoin_server::ServerError) -> ArgError {
    ArgError(e.to_string())
}

/// Parses the `--bounds X0,Y0,X1,Y1` / `--max-diameter D` pair into a
/// [`RingBounds`] (both or neither must be present).
fn parse_bounds(args: &Args) -> Result<Option<RingBounds>, ArgError> {
    match (args.opt("bounds"), args.opt("max-diameter")) {
        (None, None) => Ok(None),
        (Some(b), Some(d)) => {
            let nums: Vec<f64> = b
                .split(',')
                .map(|v| {
                    v.parse()
                        .map_err(|_| ArgError(format!("invalid --bounds coordinate {v:?}")))
                })
                .collect::<Result<_, _>>()?;
            let [x0, y0, x1, y1] = nums.as_slice() else {
                return Err(ArgError("--bounds needs exactly X0,Y0,X1,Y1".into()));
            };
            let max_diameter: f64 = d
                .parse()
                .map_err(|_| ArgError(format!("invalid --max-diameter {d:?}")))?;
            Ok(Some(RingBounds {
                bounds: ringjoin_geom::Rect::new(
                    ringjoin_geom::pt(*x0, *y0),
                    ringjoin_geom::pt(*x1, *y1),
                ),
                max_diameter,
            }))
        }
        _ => Err(ArgError(
            "--bounds and --max-diameter must be given together".into(),
        )),
    }
}

/// Parses `--ids 1,2,3` into the id list of a DELETE batch.
fn parse_id_list(s: &str) -> Result<Vec<u64>, ArgError> {
    s.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| ArgError(format!("invalid --ids entry {v:?}")))
        })
        .collect()
}

/// Renders an applied-update reply; `client insert|delete|upsert` and
/// every `mutate-stream` batch report through this one format.
fn describe_update(name: &str, reply: &ringjoin_server::proto::Reply) -> String {
    format!(
        "dataset {name:?} at epoch {}: applied {} mutation(s), {} item(s) live",
        reply.field("epoch").unwrap_or("?"),
        reply.field("applied").unwrap_or("?"),
        reply.field("items").unwrap_or("?"),
    )
}

/// Appends one batch to a mutation log in the `replay` grammar: a
/// `batch` separator line, then one `+ id x y` / `- id` / `^ id x y`
/// row per operation. `f64` Display round-trips exactly, so a replayed
/// log rebuilds bit-identical coordinates.
fn encode_log_batch(out: &mut String, ops: &[Mutation]) {
    use std::fmt::Write as _;
    out.push_str("batch\n");
    for op in ops {
        match op {
            Mutation::Insert(it) => {
                writeln!(out, "+ {} {} {}", it.id, it.point.x, it.point.y)
            }
            Mutation::Delete(id) => writeln!(out, "- {id}"),
            Mutation::Upsert(it) => {
                writeln!(out, "^ {} {} {}", it.id, it.point.x, it.point.y)
            }
        }
        .expect("writing to a String cannot fail");
    }
}

/// Parses one mutation row (already trimmed, non-empty, non-comment)
/// into `batches`.
fn parse_mutation_row(
    line: &str,
    lineno: usize,
    batches: &mut Vec<Vec<Mutation>>,
) -> Result<(), ArgError> {
    let id = |v: &str| {
        v.parse::<u64>()
            .map_err(|_| ArgError(format!("log line {lineno}: invalid id {v:?}")))
    };
    let coord = |v: &str| {
        v.parse::<f64>()
            .map_err(|_| ArgError(format!("log line {lineno}: invalid coordinate {v:?}")))
    };
    let op = match line.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["batch", ..] => {
            batches.push(Vec::new());
            return Ok(());
        }
        ["+", i, x, y] => {
            Mutation::Insert(Item::new(id(i)?, ringjoin_geom::pt(coord(x)?, coord(y)?)))
        }
        ["^", i, x, y] => {
            Mutation::Upsert(Item::new(id(i)?, ringjoin_geom::pt(coord(x)?, coord(y)?)))
        }
        ["-", i] => Mutation::Delete(id(i)?),
        _ => {
            return Err(ArgError(format!(
                "log line {lineno}: unrecognized mutation row {line:?}"
            )))
        }
    };
    batches
        .last_mut()
        .ok_or_else(|| {
            ArgError(format!(
                "log line {lineno}: mutation row before the first `batch` separator"
            ))
        })?
        .push(op);
    Ok(())
}

/// Parses a mutation log back into batches. Blank lines and `#`
/// comments are skipped; every mutation row must follow a `batch`
/// separator so the replay applies the same batch boundaries (and so
/// lands on the same epoch) as the live stream did.
///
/// Torn-tail rule: a malformed **final** line with no trailing newline
/// is dropped, not an error. `mutate-stream --log` fsyncs at batch
/// boundaries, so a SIGKILLed driver leaves every fsynced line intact
/// plus at most one line cut mid-byte — that torn tail must not cost
/// the valid prefix. A malformed line anywhere else is still corruption
/// and still fails.
fn parse_mutation_log(text: &str) -> Result<Vec<Vec<Mutation>>, ArgError> {
    let mut batches: Vec<Vec<Mutation>> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let terminated = text.ends_with('\n');
    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_mutation_row(line, idx + 1, &mut batches) {
            Ok(()) => {}
            Err(_) if !terminated && idx + 1 == lines.len() => break,
            Err(e) => return Err(e),
        }
    }
    Ok(batches)
}

/// Replays one recorded batch through the engine's update builder,
/// preserving operation order: the tree shape — and with it the pair
/// emission order — depends on the exact mutation history, not just the
/// final pointset.
fn apply_log_batch(engine: &mut Engine, name: &str, ops: &[Mutation]) -> Result<(), ArgError> {
    let mut batch = engine.update(name);
    for op in ops {
        batch = match *op {
            Mutation::Insert(it) => batch.insert([it]),
            Mutation::Delete(id) => batch.delete([id]),
            Mutation::Upsert(it) => batch.upsert([it]),
        };
    }
    batch.apply().map_err(engine_err)?;
    Ok(())
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic seeded mutation stream: round r is INSERT (r % 3 == 0),
/// UPSERT (1) or DELETE (2). Inserts mint fresh ids from `id_base` up;
/// upserts alternate between moving a previously-inserted live id and
/// minting a fresh one; deletes retire up to half the stream's live ids
/// (falling back to an insert round if none are left). Every batch is
/// homogeneous — the wire grammar has one verb per request — and the
/// whole stream derives from (seed, batches, batch_size, id_base), which
/// is what lets CI replay the identical history offline.
fn mutation_stream(
    seed: u64,
    batches: usize,
    batch_size: usize,
    id_base: u64,
) -> Vec<Vec<Mutation>> {
    let pool = uniform(batches * batch_size, seed);
    let mut cursor = 0usize;
    let mut rng = (seed ^ 0x9E37_79B9_7F4A_7C15) | 1;
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = id_base;
    let mut out = Vec::with_capacity(batches);
    for round in 0..batches {
        let mut ops = Vec::with_capacity(batch_size);
        let kind = match round % 3 {
            2 if live.is_empty() => 0,
            k => k,
        };
        match kind {
            0 => {
                for _ in 0..batch_size {
                    let point = pool[cursor].point;
                    cursor += 1;
                    ops.push(Mutation::Insert(Item::new(next_id, point)));
                    live.push(next_id);
                    next_id += 1;
                }
            }
            1 => {
                for slot in 0..batch_size {
                    let point = pool[cursor].point;
                    cursor += 1;
                    if slot % 2 == 0 && !live.is_empty() {
                        let id = live[xorshift(&mut rng) as usize % live.len()];
                        ops.push(Mutation::Upsert(Item::new(id, point)));
                    } else {
                        ops.push(Mutation::Upsert(Item::new(next_id, point)));
                        live.push(next_id);
                        next_id += 1;
                    }
                }
            }
            _ => {
                let retire = batch_size.min(live.len().div_ceil(2));
                for _ in 0..retire {
                    let idx = xorshift(&mut rng) as usize % live.len();
                    ops.push(Mutation::Delete(live.swap_remove(idx)));
                }
            }
        }
        out.push(ops);
    }
    out
}

/// Sends one stream batch under its wire verb. Stream batches are
/// homogeneous by construction; a mixed batch could not be one atomic
/// remote update, so [`mutation_stream`] never produces one.
fn send_stream_batch(
    client: &mut Client,
    args: &Args,
    name: &str,
    ops: &[Mutation],
) -> Result<ringjoin_server::proto::Reply, ArgError> {
    use ringjoin_server::proto::Request;
    let req = match ops[0] {
        Mutation::Insert(_) => Request::Insert {
            name: name.to_string(),
            items: ops
                .iter()
                .filter_map(|op| match op {
                    Mutation::Insert(it) => Some(*it),
                    _ => None,
                })
                .collect(),
        },
        Mutation::Upsert(_) => Request::Upsert {
            name: name.to_string(),
            items: ops
                .iter()
                .filter_map(|op| match op {
                    Mutation::Upsert(it) => Some(*it),
                    _ => None,
                })
                .collect(),
        },
        Mutation::Delete(_) => Request::Delete {
            name: name.to_string(),
            ids: ops
                .iter()
                .filter_map(|op| match op {
                    Mutation::Delete(id) => Some(*id),
                    _ => None,
                })
                .collect(),
        },
    };
    client_request(client, args, &req)
}

/// `--stats` reporting for remote (client) runs: the counters the
/// server sent on the status line.
fn report_remote_stats(out: &ringjoin_server::RemoteOutput) {
    eprintln!(
        "pairs: {}  candidates: {}  filter node reads: {}  verify node visits: {}  shards queried: {}",
        out.pairs.len(),
        out.stats.candidate_pairs,
        out.stats.filter_node_reads,
        out.stats.verify_node_visits,
        out.shards_queried,
    );
}

/// Writes the bound address (plus a trailing newline, the
/// "write complete" marker pollers wait for) where `--addr-file` asked.
fn write_addr_file(args: &Args, addr: std::net::SocketAddr) -> Result<(), ArgError> {
    if let Some(path) = args.opt("addr-file") {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| ArgError(format!("cannot write --addr-file {path}: {e}")))?;
    }
    Ok(())
}

/// The `serve --shard-of ...` form: a shard-worker process serving one
/// coordinator over the shard wire grammar.
fn cmd_serve_worker(args: &Args, spec: &str) -> Result<Option<String>, ArgError> {
    for coordinator_only in [
        "shards",
        "replicas",
        "workers",
        "max-sessions",
        "queue-depth",
    ] {
        if args.opt(coordinator_only).is_some() {
            return Err(ArgError(format!(
                "--{coordinator_only} is a coordinator option; a --shard-of worker serves whatever cell its coordinator assigns"
            )));
        }
    }
    let accepts = match spec {
        "auto" => None,
        rect => Some(
            ringjoin_server::proto::parse_rect(rect)
                .map_err(|e| ArgError(format!("invalid --shard-of cell: {e}")))?,
        ),
    };
    let buffer_pages: usize = args.opt_parse("buffer-pages", 0)?;
    let addr = match args.opt("addr") {
        Some(a) => a.to_string(),
        None => format!("127.0.0.1:{}", args.opt_parse::<u16>("port", 4815)?),
    };
    let server = ringjoin_server::ShardWorkerServer::bind(&addr, accepts, buffer_pages)
        .map_err(server_err)?;
    write_addr_file(args, server.local_addr())?;
    eprintln!(
        "ringjoin-worker listening on {} (accepts {})",
        server.local_addr(),
        accepts.map_or("any cell".to_string(), |r| format!(
            "{},{},{},{}",
            r.min.x, r.min.y, r.max.x, r.max.y
        ))
    );
    server
        .serve()
        .map_err(|e| ArgError(format!("worker serve failed: {e}")))?;
    Ok(Some("worker stopped".into()))
}

/// The `serve` command: bind, announce, and block until SHUTDOWN.
fn cmd_serve(args: &Args) -> Result<Option<String>, ArgError> {
    if let Some(spec) = args.opt("shard-of") {
        return cmd_serve_worker(args, spec);
    }
    let shards: usize = args.opt_parse("shards", 1)?;
    if shards == 0 {
        return Err(ArgError(
            "--shards must be at least 1 (got 0); omit the flag for a single shard".into(),
        ));
    }
    let replicas: usize = args.opt_parse("replicas", 1)?;
    if replicas == 0 {
        return Err(ArgError(
            "--replicas must be at least 1 (got 0); omit the flag for a single replica".into(),
        ));
    }
    let workers = match args.opt("workers") {
        None => ringjoin_server::WorkerSpec::Local,
        Some("spawn") => ringjoin_server::WorkerSpec::Spawn {
            program: std::env::current_exe().map_err(|e| {
                ArgError(format!("cannot locate own binary for --workers spawn: {e}"))
            })?,
        },
        Some(list) => {
            ringjoin_server::WorkerSpec::Remote(list.split(',').map(str::to_string).collect())
        }
    };
    let max_sessions: usize = args.opt_parse("max-sessions", 16)?;
    if max_sessions == 0 {
        return Err(ArgError(
            "--max-sessions must be at least 1 (got 0); omit the flag for the default 16".into(),
        ));
    }
    let queue_depth: usize = args.opt_parse("queue-depth", 32)?;
    let on_disk = args.opt("on-disk").map(std::path::PathBuf::from);
    let data_dir = args.opt("data-dir").map(std::path::PathBuf::from);
    let buffer_pages: usize = args.opt_parse("buffer-pages", 0)?;
    let addr = match args.opt("addr") {
        Some(a) => a.to_string(),
        None => format!("127.0.0.1:{}", args.opt_parse::<u16>("port", 4815)?),
    };
    let residency = match &on_disk {
        Some(path) => format!(
            ", disk-native on {} ({} buffer page(s))",
            path.display(),
            if buffer_pages == 0 {
                "unbounded".to_string()
            } else {
                buffer_pages.to_string()
            }
        ),
        None => String::new(),
    };
    let worker_note = match (&workers, replicas) {
        (ringjoin_server::WorkerSpec::Local, 1) => String::new(),
        (ringjoin_server::WorkerSpec::Local, r) => format!(" x {r} replica(s)"),
        (ringjoin_server::WorkerSpec::Spawn { .. }, r) => {
            format!(" x {r} replica(s), spawned worker processes")
        }
        (_, r) => format!(" x {r} replica(s), remote workers"),
    };
    let durability = match &data_dir {
        Some(dir) => format!(", durable log in {}", dir.display()),
        None => String::new(),
    };
    // Bind runs startup recovery (replaying the durable log into the
    // fleet) before the listener accepts its first session.
    let server = Server::bind(&ServerConfig {
        addr,
        shards,
        replicas,
        workers,
        max_sessions,
        queue_depth,
        on_disk,
        buffer_pages,
        data_dir,
        ..ServerConfig::default()
    })
    .map_err(server_err)?;
    write_addr_file(args, server.local_addr())?;
    eprintln!(
        "ringjoin-server listening on {} with {shards} shard(s){worker_note}, {max_sessions} session(s), queue depth {queue_depth}{residency}{durability}",
        server.local_addr()
    );
    server
        .serve()
        .map_err(|e| ArgError(format!("serve failed: {e}")))?;
    Ok(Some("server stopped".into()))
}

/// One request through the retry budget: `--retries N` (default 1 =
/// no retry) bounds the attempts [`Client::request_with_retry`] spends
/// honoring `ERR busy` hints.
fn client_request(
    client: &mut Client,
    args: &Args,
    req: &ringjoin_server::proto::Request,
) -> Result<ringjoin_server::proto::Reply, ArgError> {
    let retries: u32 = args.opt_parse("retries", 1)?;
    if retries == 0 {
        return Err(ArgError(
            "--retries must be at least 1 (got 0); omit the flag for a single attempt".into(),
        ));
    }
    client.request_with_retry(req, retries).map_err(server_err)
}

/// Runs a join-shaped request once, or `--pipeline N` times back to
/// back on the same connection. Pipelined replies must agree byte for
/// byte (the serving invariant); the decoded last reply is returned.
fn run_join_shaped(
    client: &mut Client,
    args: &Args,
    req: ringjoin_server::proto::Request,
) -> Result<ringjoin_server::RemoteOutput, ArgError> {
    let n: usize = args.opt_parse("pipeline", 1)?;
    if n == 0 {
        return Err(ArgError(
            "--pipeline must be at least 1 (got 0); omit the flag for a single request".into(),
        ));
    }
    if n == 1 {
        let reply = client_request(client, args, &req)?;
        return Client::decode_output(&reply).map_err(server_err);
    }
    let batch = vec![req; n];
    let replies = client.pipeline(&batch).map_err(server_err)?;
    let first = &replies[0];
    for (i, reply) in replies.iter().enumerate().skip(1) {
        if reply.body != first.body {
            return Err(ArgError(format!(
                "pipelined reply {i} diverged from reply 0 (the server broke byte-identity)"
            )));
        }
    }
    let last = replies.last().expect("pipeline returned no replies");
    Client::decode_output(last).map_err(server_err)
}

/// The `client <op>` command family: one connection, one operation.
fn cmd_client(args: &Args) -> Result<Option<String>, ArgError> {
    let op = args.sub.as_deref().ok_or_else(|| {
        ArgError(
            "client needs an operation: load|join|self-join|top-k|explain|\
             insert|delete|upsert|mutate-stream|stats|shutdown"
                .into(),
        )
    })?;
    let addr = args.opt("addr").unwrap_or("127.0.0.1:4815");
    let timeout = match args.opt_parse::<u64>("timeout", 30)? {
        0 => None,
        secs => Some(std::time::Duration::from_secs(secs)),
    };
    let mut client = Client::connect_with_timeout(addr, timeout).map_err(server_err)?;
    match op {
        "load" => {
            let name = args.req("name")?;
            let items = load_items(args.req("input")?)?;
            let kind = parse_index(args.opt("index"))?;
            let n = items.len();
            let req = ringjoin_server::proto::Request::Load {
                name: name.to_string(),
                kind,
                items: items.clone(),
            };
            let reply = client_request(&mut client, args, &req)?;
            let shards = reply.field("shards").unwrap_or("?").to_string();
            Ok(Some(format!(
                "loaded {n} points as {name:?} ({}) on {shards} shard(s)",
                kind.name()
            )))
        }
        "join" => {
            let req = ringjoin_server::proto::Request::Join {
                outer: args.req("outer")?.to_string(),
                inner: args.req("inner")?.to_string(),
                algo: parse_algo(args.opt("algo"), "obj")?,
                bounds: parse_bounds(args)?,
            };
            let out = run_join_shaped(&mut client, args, req)?;
            if args.flag("stats") {
                report_remote_stats(&out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "self-join" => {
            let req = ringjoin_server::proto::Request::SelfJoin {
                dataset: args.req("dataset")?.to_string(),
                algo: parse_algo(args.opt("algo"), "obj")?,
                bounds: parse_bounds(args)?,
            };
            let out = run_join_shaped(&mut client, args, req)?;
            if args.flag("stats") {
                report_remote_stats(&out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "top-k" => {
            let req = ringjoin_server::proto::Request::TopK {
                outer: args.req("outer")?.to_string(),
                inner: args.req("inner")?.to_string(),
                k: args.req_parse("k")?,
            };
            let out = run_join_shaped(&mut client, args, req)?;
            if args.flag("stats") {
                report_remote_stats(&out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "explain" => {
            let algo = parse_algo(args.opt("algo"), "auto")?;
            let k = match args.opt("k") {
                Some(_) => Some(args.req_parse("k")?),
                None => None,
            };
            let text = client
                .explain(args.req("outer")?, args.opt("inner"), algo, k)
                .map_err(server_err)?;
            Ok(Some(text))
        }
        "insert" | "upsert" => {
            let name = args.req("name")?;
            let items = load_items(args.req("input")?)?;
            let req = if op == "insert" {
                ringjoin_server::proto::Request::Insert {
                    name: name.to_string(),
                    items,
                }
            } else {
                ringjoin_server::proto::Request::Upsert {
                    name: name.to_string(),
                    items,
                }
            };
            let reply = client_request(&mut client, args, &req)?;
            Ok(Some(describe_update(name, &reply)))
        }
        "delete" => {
            let name = args.req("name")?;
            let req = ringjoin_server::proto::Request::Delete {
                name: name.to_string(),
                ids: parse_id_list(args.req("ids")?)?,
            };
            let reply = client_request(&mut client, args, &req)?;
            Ok(Some(describe_update(name, &reply)))
        }
        "mutate-stream" => {
            let name = args.req("name")?;
            let batches: usize = args.opt_parse("batches", 10)?;
            let batch_size: usize = args.opt_parse("batch-size", 8)?;
            if batches == 0 || batch_size == 0 {
                return Err(ArgError(
                    "--batches and --batch-size must be at least 1; omit them for the defaults"
                        .into(),
                ));
            }
            let seed: u64 = args.opt_parse("seed", 42)?;
            let id_base: u64 = args.opt_parse("id-base", 1 << 40)?;
            let interval =
                std::time::Duration::from_millis(args.opt_parse::<u64>("interval-ms", 0)?);
            let stream = mutation_stream(seed, batches, batch_size, id_base);
            // The history file is written incrementally, and each batch
            // is appended + fsynced BEFORE its wire send: the server's
            // durably applied epoch can therefore never exceed the
            // batches on disk, so a SIGKILLed driver (or coordinator)
            // always leaves a valid replayable prefix — `replay`
            // (optionally `--batches E`) stays a correct oracle for
            // whatever prefix survived.
            let mut log_file = match args.opt("log") {
                Some(path) => {
                    let mut f = std::fs::File::create(path)
                        .map_err(|e| ArgError(format!("cannot write --log {path}: {e}")))?;
                    f.write_all(
                        b"# ringjoin-cli mutation log (rebuild offline with `replay --log`)\n",
                    )
                    .and_then(|()| f.sync_data())
                    .map_err(|e| ArgError(format!("cannot write --log {path}: {e}")))?;
                    Some((f, path))
                }
                None => None,
            };
            let mut applied = 0usize;
            let mut last = None;
            for (i, ops) in stream.iter().enumerate() {
                if i > 0 && !interval.is_zero() {
                    std::thread::sleep(interval);
                }
                if let Some((f, path)) = log_file.as_mut() {
                    let mut entry = String::new();
                    encode_log_batch(&mut entry, ops);
                    f.write_all(entry.as_bytes())
                        .and_then(|()| f.flush())
                        .and_then(|()| f.sync_data())
                        .map_err(|e| ArgError(format!("cannot append to --log {path}: {e}")))?;
                }
                let reply = send_stream_batch(&mut client, args, name, ops)?;
                applied += ops.len();
                if !args.flag("quiet") {
                    eprintln!(
                        "batch {}/{batches}: {}",
                        i + 1,
                        describe_update(name, &reply)
                    );
                }
                last = Some(reply);
            }
            let last = last.expect("--batches >= 1 was checked above");
            Ok(Some(format!(
                "streamed {batches} batch(es), {applied} mutation(s); {}",
                describe_update(name, &last)
            )))
        }
        "stats" => Ok(Some(client.stats().map_err(server_err)?)),
        "shutdown" => {
            client.shutdown().map_err(server_err)?;
            Ok(Some("server acknowledged shutdown".into()))
        }
        other => Err(ArgError(format!(
            "unknown client operation {other:?}\n\n{USAGE}"
        ))),
    }
}

/// The `replay` command: the offline oracle for live serving. Loads the
/// two files, applies a recorded mutation log batch by batch to the
/// target dataset through the same engine update path a server uses,
/// then joins — giving CI a CSV to diff against the live server's.
fn cmd_replay(args: &Args) -> Result<Option<String>, ArgError> {
    let target = args.req("target")?;
    if target != "p" && target != "q" {
        return Err(ArgError(format!(
            "--target must be p or q (got {target:?})"
        )));
    }
    let log_path = args.req("log")?;
    let text = std::fs::read_to_string(log_path)
        .map_err(|e| ArgError(format!("cannot read --log {log_path}: {e}")))?;
    let log = parse_mutation_log(&text)?;
    // `--batches N` replays only the first N batches — the oracle for a
    // crashed coordinator recovered to epoch N of a longer recorded
    // stream (the durable prefix).
    let limit: usize = args.opt_parse("batches", log.len())?;
    let algo = parse_algo(args.opt("algo"), "obj")?;
    let executor = parse_executor(args)?;
    let mut engine = build_engine(args, false)?;
    for ops in log.iter().take(limit) {
        apply_log_batch(&mut engine, target, ops)?;
    }
    let plan = query(&engine, false)
        .algorithm(algo)
        .executor(executor)
        .plan()
        .map_err(engine_err)?;
    let out = plan.collect();
    if args.flag("stats") {
        report_stats(&engine.pager(), &plan, &out);
    }
    write_pairs(args.opt("out"), &out.pairs)?;
    Ok(None)
}

/// Runs one parsed command; returns the text to print on stdout (pair
/// CSVs go straight to their sink instead).
pub fn run(args: &Args) -> Result<Option<String>, ArgError> {
    if args.command != "client" {
        if let Some(sub) = &args.sub {
            return Err(ArgError(format!(
                "unexpected positional argument {sub:?} after {:?}",
                args.command
            )));
        }
    }
    match args.command.as_str() {
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "replay" => cmd_replay(args),
        "help" => Ok(Some(USAGE.to_string())),
        "generate" => {
            let n: usize = args.req_parse("n")?;
            let seed: u64 = args.opt_parse("seed", 42)?;
            let out = args.req("out")?;
            let items = match args.req("kind")? {
                "uniform" => uniform(n, seed),
                "gaussian" => {
                    let w: usize = args.opt_parse("clusters", 10)?;
                    let sigma: f64 = args.opt_parse("sigma", 1000.0)?;
                    gaussian_clusters(n, w, sigma, seed)
                }
                "pp" => gnis_like(GnisDataset::PopulatedPlaces, n),
                "sc" => gnis_like(GnisDataset::Schools, n),
                "lo" => gnis_like(GnisDataset::Locales, n),
                other => return Err(ArgError(format!("unknown dataset kind {other:?}"))),
            };
            save_items(out, &items)?;
            Ok(Some(format!("wrote {n} points to {out}")))
        }
        "join" | "self-join" => {
            let self_join = args.command == "self-join";
            let algo = parse_algo(args.opt("algo"), "obj")?;
            let executor = parse_executor(args)?;
            let engine = build_engine(args, self_join)?;
            let plan = query(&engine, self_join)
                .algorithm(algo)
                .executor(executor)
                .plan()
                .map_err(engine_err)?;
            let out = plan.collect();
            if args.flag("stats") {
                report_stats(&engine.pager(), &plan, &out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "top-k" => {
            let k: usize = args.req_parse("k")?;
            let executor = parse_executor(args)?;
            let engine = build_engine(args, false)?;
            // The plan's top-k path streams in ascending ring diameter
            // with early exit — no full join, no sort.
            let plan = query(&engine, false)
                .executor(executor)
                .top_k(k)
                .plan()
                .map_err(engine_err)?;
            let out = plan.collect();
            if args.flag("stats") {
                report_stats(&engine.pager(), &plan, &out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "explain" => {
            let self_join = args.opt("input").is_some();
            let algo = parse_algo(args.opt("algo"), "auto")?;
            let executor = parse_executor(args)?;
            let engine = build_engine(args, self_join)?;
            let mut builder = query(&engine, self_join).algorithm(algo).executor(executor);
            if let Some(_k) = args.opt("k") {
                builder = builder.top_k(args.req_parse("k")?);
            }
            let plan = builder.plan().map_err(engine_err)?;
            Ok(Some(plan.to_string()))
        }
        "compare" => {
            let p_items = load_items(args.req("p")?)?;
            let q_items = load_items(args.req("q")?)?;
            let (_pager, tp, tq) = build_trees(p_items, q_items, 1024, 0.01);
            let rcj: HashSet<(u64, u64)> =
                ringjoin_core::pair_keys(&rcj_join(&tq, &tp, &RcjOptions::default()).pairs)
                    .into_iter()
                    .collect();
            let (name, keys): (String, Vec<(u64, u64)>) = if let Some(e) = args.opt("epsilon") {
                let eps: f64 = e
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --epsilon {e:?}")))?;
                (
                    format!("eps-join(eps={eps})"),
                    epsilon_join(&tp, &tq, eps)
                        .into_iter()
                        .map(|(a, b)| (a.id, b.id))
                        .collect(),
                )
            } else if let Some(k) = args.opt("kcp") {
                let k: usize = k
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --kcp {k:?}")))?;
                (
                    format!("{k}-closest-pairs"),
                    k_closest_pairs(&tp, &tq, k)
                        .into_iter()
                        .map(|(a, b, _)| (a.id, b.id))
                        .collect(),
                )
            } else if let Some(k) = args.opt("knn") {
                let k: usize = k
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --knn {k:?}")))?;
                (
                    format!("{k}NN-join"),
                    knn_join(&tp, &tq, k)
                        .into_iter()
                        .map(|(a, b)| (a.id, b.id))
                        .collect(),
                )
            } else {
                return Err(ArgError(
                    "compare needs one of --epsilon E, --kcp K, --knn K".into(),
                ));
            };
            let q = precision_recall(&keys, &rcj);
            Ok(Some(format!(
                "{name}: {} pairs, precision {:.1}%, recall {:.1}% (|RCJ| = {})",
                keys.len(),
                q.precision,
                q.recall,
                rcj.len()
            )))
        }
        "bound" => {
            let np: u64 = args.req_parse("np")?;
            let nq: u64 = args.req_parse("nq")?;
            Ok(Some(format!(
                "general-position bound: {}   worst case (degenerate): {}",
                bounds::general_position_bound(np, nq),
                bounds::worst_case_bound(np, nq)
            )))
        }
        other => Err(ArgError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        ringjoin_testsupport::scratch_dir("cli")
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_then_join_roundtrip() {
        let p = tmp("p.bin");
        let q = tmp("q.csv");
        let out = tmp("pairs.csv");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "400", "--seed", "1", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate",
            "--kind",
            "gaussian",
            "--n",
            "400",
            "--clusters",
            "4",
            "--out",
            &q,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "join", "--p", &p, "--q", &q, "--algo", "obj", "--out", &out,
        ]))
        .unwrap())
        .unwrap();
        let csv = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "p_id,q_id,center_x,center_y,radius");
        assert!(lines.len() > 100, "join produced {} rows", lines.len() - 1);
        // Every row parses.
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 5);
            fields[2].parse::<f64>().unwrap();
            fields[4].parse::<f64>().unwrap();
        }
        // The auto algorithm and the quadtree index produce the same
        // pair set over the same files.
        let out_auto = tmp("pairs_auto.csv");
        let out_quad = tmp("pairs_quad.csv");
        run(&parse(&s(&[
            "join", "--p", &p, "--q", &q, "--algo", "auto", "--out", &out_auto,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "join", "--p", &p, "--q", &q, "--index", "quadtree", "--out", &out_quad,
        ]))
        .unwrap())
        .unwrap();
        let keys = |csv: &str| -> std::collections::BTreeSet<String> {
            csv.lines()
                .skip(1)
                .map(|l| l.split(',').take(2).collect::<Vec<_>>().join(","))
                .collect()
        };
        let base = keys(&csv);
        assert_eq!(keys(&std::fs::read_to_string(&out_auto).unwrap()), base);
        assert_eq!(keys(&std::fs::read_to_string(&out_quad).unwrap()), base);
    }

    #[test]
    fn self_join_and_topk() {
        let input = tmp("buildings.bin");
        run(&parse(&s(&[
            "generate", "--kind", "pp", "--n", "300", "--out", &input,
        ]))
        .unwrap())
        .unwrap();
        let out = tmp("self.csv");
        run(&parse(&s(&["self-join", "--input", &input, "--out", &out])).unwrap()).unwrap();
        let n_self = std::fs::read_to_string(&out).unwrap().lines().count() - 1;
        assert!(n_self > 0);

        let p = tmp("tp.bin");
        let q = tmp("tq.bin");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "200", "--seed", "2", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "200", "--seed", "3", "--out", &q,
        ]))
        .unwrap())
        .unwrap();
        let out2 = tmp("topk.csv");
        run(&parse(&s(&[
            "top-k", "--p", &p, "--q", &q, "--k", "5", "--out", &out2,
        ]))
        .unwrap())
        .unwrap();
        let csv = std::fs::read_to_string(&out2).unwrap();
        assert_eq!(csv.lines().count(), 6); // header + 5
                                            // Radii ascending.
        let radii: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
            .collect();
        for w in radii.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn explain_prints_the_plan() {
        let p = tmp("ep.bin");
        let q = tmp("eq.bin");
        for (path, seed) in [(&p, "21"), (&q, "22")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "400", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let text = run(&parse(&s(&["explain", "--p", &p, "--q", &q])).unwrap())
            .unwrap()
            .unwrap();
        assert!(text.contains("RCJ join"), "{text}");
        assert!(text.contains("resolved from AUTO"), "{text}");
        assert!(text.contains("<- chosen"), "{text}");
        assert!(text.contains("plan line: algo="), "{text}");

        // Fixed algorithm and threads show up.
        let text = run(&parse(&s(&[
            "explain",
            "--p",
            &p,
            "--q",
            &q,
            "--algo",
            "inj",
            "--threads",
            "4",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(text.contains("INJ (fixed by the query)"), "{text}");
        assert!(text.contains("parallel (4 threads)"), "{text}");

        // Top-k plans are honest: the diameter stream bypasses the leaf
        // algorithms and has no parallel path, whatever the flags said.
        let text = run(&parse(&s(&[
            "explain",
            "--p",
            &p,
            "--q",
            &q,
            "--algo",
            "inj",
            "--threads",
            "4",
            "--k",
            "7",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(text.contains("top-k: 7"), "{text}");
        assert!(
            text.contains("diameter-ordered incremental stream"),
            "{text}"
        );
        assert!(text.contains("executor: sequential (forced"), "{text}");
        assert!(text.contains("algo=topk-stream"), "{text}");
        assert!(text.contains("threads=1"), "{text}");

        // Self-join form.
        let text = run(&parse(&s(&["explain", "--input", &p])).unwrap())
            .unwrap()
            .unwrap();
        assert!(text.contains("RCJ self-join"), "{text}");

        // Mixed-kind tag appears when --index differs between runs is
        // impossible through one flag, but the quadtree tag must show.
        let text = run(&parse(&s(&[
            "explain", "--p", &p, "--q", &q, "--index", "quadtree",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(text.contains("index=quadtree"), "{text}");
    }

    #[test]
    fn compare_and_bound() {
        let p = tmp("cp.bin");
        let q = tmp("cq.bin");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "300", "--seed", "5", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "300", "--seed", "6", "--out", &q,
        ]))
        .unwrap())
        .unwrap();
        let msg = run(&parse(&s(&["compare", "--p", &p, "--q", &q, "--knn", "1"])).unwrap())
            .unwrap()
            .unwrap();
        assert!(msg.contains("precision"), "{msg}");

        let b = run(&parse(&s(&["bound", "--np", "100", "--nq", "100"])).unwrap())
            .unwrap()
            .unwrap();
        assert!(b.contains("594"), "{b}");
        assert!(b.contains("10000"), "{b}");
    }

    #[test]
    fn threaded_join_output_is_identical_to_sequential() {
        let p = tmp("tp_par.bin");
        let q = tmp("tq_par.bin");
        for (path, seed) in [(&p, "11"), (&q, "12")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "600", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let seq = tmp("pairs_seq.csv");
        let par = tmp("pairs_par.csv");
        run(&parse(&s(&[
            "join",
            "--p",
            &p,
            "--q",
            &q,
            "--threads",
            "1",
            "--out",
            &seq,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "join",
            "--p",
            &p,
            "--q",
            &q,
            "--threads",
            "4",
            "--out",
            &par,
        ]))
        .unwrap())
        .unwrap();
        let seq_csv = std::fs::read_to_string(&seq).unwrap();
        assert_eq!(
            seq_csv,
            std::fs::read_to_string(&par).unwrap(),
            "parallel CSV must be byte-identical to sequential"
        );
        assert!(seq_csv.lines().count() > 1);
        // Bad thread counts surface as argument errors.
        assert!(
            run(&parse(&s(&["join", "--p", &p, "--q", &q, "--threads", "x"])).unwrap()).is_err()
        );
    }

    #[test]
    fn on_disk_join_csv_is_byte_identical_to_in_memory() {
        let p = tmp("od_p.bin");
        let q = tmp("od_q.bin");
        for (path, seed) in [(&p, "71"), (&q, "72")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "500", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let resident = tmp("od_resident.csv");
        run(&parse(&s(&["join", "--p", &p, "--q", &q, "--out", &resident])).unwrap()).unwrap();
        let reference = std::fs::read_to_string(&resident).unwrap();
        assert!(reference.lines().count() > 1);

        // Disk-native with a buffer budget far under the page space, in
        // both sequential and parallel form: byte-identical CSVs.
        for (threads, out_name) in [("1", "od_seq.csv"), ("4", "od_par.csv")] {
            let pages = tmp(&format!("od_pages_{threads}.rjp"));
            let out = tmp(out_name);
            run(&parse(&s(&[
                "join",
                "--p",
                &p,
                "--q",
                &q,
                "--on-disk",
                &pages,
                "--buffer-pages",
                "8",
                "--threads",
                threads,
                "--out",
                &out,
            ]))
            .unwrap())
            .unwrap();
            assert_eq!(
                std::fs::read_to_string(&out).unwrap(),
                reference,
                "disk-native join ({threads} thread(s)) must match in-memory byte for byte"
            );
            assert!(
                std::path::Path::new(&pages).is_file(),
                "--on-disk must materialize the page file"
            );
        }

        // --buffer-pages 0 is rejected with a clear error.
        let err = run(&parse(&s(&["join", "--p", &p, "--q", &q, "--buffer-pages", "0"])).unwrap())
            .unwrap_err();
        assert!(
            err.0.contains("--buffer-pages must be at least 1"),
            "{}",
            err.0
        );
    }

    #[test]
    fn zero_threads_is_rejected_with_a_clear_error() {
        let p = tmp("zt_p.bin");
        let q = tmp("zt_q.bin");
        for (path, seed) in [(&p, "31"), (&q, "32")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "50", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        for cmd in [
            vec!["join", "--p", &p, "--q", &q, "--threads", "0"],
            vec!["self-join", "--input", &p, "--threads", "0"],
            vec!["top-k", "--p", &p, "--q", &q, "--k", "3", "--threads", "0"],
            vec!["explain", "--p", &p, "--q", &q, "--threads", "0"],
        ] {
            let err = run(&parse(&s(&cmd)).unwrap()).unwrap_err();
            assert!(
                err.0.contains("--threads must be at least 1"),
                "{cmd:?}: unhelpful message {}",
                err.0
            );
        }
    }

    #[test]
    fn client_join_csv_is_byte_identical_to_in_process_join() {
        // The CI server-smoke job in shell form: generate data, serve,
        // load + join over TCP, and diff against the in-process answer.
        let p = tmp("srv_p.bin");
        let q = tmp("srv_q.bin");
        for (path, seed) in [(&p, "61"), (&q, "62")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "500", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.serve().unwrap());

        for (name, file) in [("p", &p), ("q", &q)] {
            let msg = run(&parse(&s(&[
                "client", "load", "--addr", &addr, "--name", name, "--input", file,
            ]))
            .unwrap())
            .unwrap()
            .unwrap();
            assert!(msg.contains("3 shard(s)"), "{msg}");
        }
        let remote_csv = tmp("srv_join.csv");
        let local_csv = tmp("srv_local.csv");
        run(&parse(&s(&[
            "client",
            "join",
            "--addr",
            &addr,
            "--outer",
            "q",
            "--inner",
            "p",
            "--out",
            &remote_csv,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&["join", "--p", &p, "--q", &q, "--out", &local_csv])).unwrap()).unwrap();
        let remote = std::fs::read_to_string(&remote_csv).unwrap();
        assert_eq!(
            remote,
            std::fs::read_to_string(&local_csv).unwrap(),
            "sharded server CSV must be byte-identical to the in-process join"
        );
        assert!(remote.lines().count() > 1);

        // A pipelined run sends N copies on one connection, asserts the
        // replies agree, and writes the same bytes.
        let piped_csv = tmp("srv_piped.csv");
        run(&parse(&s(&[
            "client",
            "join",
            "--addr",
            &addr,
            "--outer",
            "q",
            "--inner",
            "p",
            "--pipeline",
            "3",
            "--out",
            &piped_csv,
        ]))
        .unwrap())
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&piped_csv).unwrap(),
            remote,
            "pipelined CSV must be byte-identical to the single-request run"
        );

        // top-k, explain and stats round-trip too.
        let topk_csv = tmp("srv_topk.csv");
        run(&parse(&s(&[
            "client", "top-k", "--addr", &addr, "--outer", "q", "--inner", "p", "--k", "5",
            "--out", &topk_csv,
        ]))
        .unwrap())
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&topk_csv).unwrap().lines().count(),
            6
        );
        let text = run(&parse(&s(&[
            "client", "explain", "--addr", &addr, "--outer", "q", "--inner", "p",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(text.contains("sharding: 3 shard(s)"), "{text}");
        let stats = run(&parse(&s(&["client", "stats", "--addr", &addr])).unwrap())
            .unwrap()
            .unwrap();
        assert!(stats.contains("dataset p"), "{stats}");

        // Duplicate load is a clean client-visible error, then shutdown.
        let err = run(&parse(&s(&[
            "client", "load", "--addr", &addr, "--name", "p", "--input", &p,
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("already loaded"), "{}", err.0);
        run(&parse(&s(&["client", "shutdown", "--addr", &addr])).unwrap()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn mutation_stream_is_deterministic_and_round_trips_its_log() {
        let a = mutation_stream(7, 9, 5, 1000);
        assert_eq!(a, mutation_stream(7, 9, 5, 1000));
        assert_eq!(a.len(), 9);
        // Every batch is non-empty and homogeneous (one wire verb each).
        for ops in &a {
            assert!(!ops.is_empty());
            let kind = std::mem::discriminant(&ops[0]);
            assert!(ops.iter().all(|op| std::mem::discriminant(op) == kind));
        }
        // Rounds rotate INSERT / UPSERT / DELETE.
        assert!(matches!(a[0][0], Mutation::Insert(_)));
        assert!(matches!(a[1][0], Mutation::Upsert(_)));
        assert!(matches!(a[2][0], Mutation::Delete(_)));
        // The log encodes and parses back to the identical batches,
        // coordinates included.
        let mut log = String::new();
        for ops in &a {
            encode_log_batch(&mut log, ops);
        }
        assert_eq!(parse_mutation_log(&log).unwrap(), a);
        // Malformed logs are rejected with the offending line.
        for bad in ["+ 1 2 3\n", "batch\n* 1 2 3\n", "batch\n+ x 2 3\n"] {
            assert!(parse_mutation_log(bad).is_err(), "{bad:?} must not parse");
        }
        // Comments and blank lines are noise.
        assert_eq!(
            parse_mutation_log("# header\n\nbatch\n- 4\n").unwrap(),
            vec![vec![Mutation::Delete(4)]]
        );
    }

    /// `mutate-stream --log` fsyncs at batch boundaries, so the file a
    /// SIGKILLed driver leaves behind is a complete-line prefix plus at
    /// most one line cut mid-byte. Replaying any such truncation must
    /// succeed and preserve every fully-written batch.
    #[test]
    fn truncated_mutation_logs_replay_cleanly() {
        let stream = mutation_stream(11, 4, 3, 5000);
        let mut log = String::from("# torn-tail harness\n");
        let mut ends = Vec::new();
        for ops in &stream {
            encode_log_batch(&mut log, ops);
            ends.push(log.len());
        }
        assert_eq!(parse_mutation_log(&log).unwrap(), stream);

        // Cut the log at every byte position: the parse never errors,
        // and every batch fully inside the cut survives verbatim. (The
        // batch the cut lands in may keep its complete leading rows —
        // that is the durable prefix, not corruption.)
        for cut in 0..=log.len() {
            let parsed = parse_mutation_log(&log[..cut])
                .unwrap_or_else(|e| panic!("cut at byte {cut} failed to replay: {}", e.0));
            let whole = ends.iter().filter(|&&e| e <= cut).count();
            assert!(
                parsed.len() >= whole,
                "cut at byte {cut} lost a fully-written batch"
            );
            assert_eq!(
                &parsed[..whole],
                &stream[..whole],
                "cut at byte {cut} corrupted a fully-written batch"
            );
        }

        // Tolerance is ONLY for the unterminated last line: the same
        // malformed row followed by a newline is corruption and fails.
        assert!(parse_mutation_log("batch\n+ 1 2\n").is_err());
        assert_eq!(
            parse_mutation_log("batch\n- 4\nbatch\n+ 1 2").unwrap(),
            vec![vec![Mutation::Delete(4)], vec![]]
        );

        // End to end: `replay` on a torn log produces the same CSV as
        // on the log explicitly truncated at the last newline.
        let p = tmp("torn_p.bin");
        let q = tmp("torn_q.bin");
        for (path, seed) in [(&p, "91"), (&q, "92")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "200", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        // Cut after the first byte of the final row — a lone verb
        // character is never a valid row, so the torn tail is dropped.
        // (A cut mid-*number* can parse as a different op; bounding the
        // replay by the server's durable epoch — `--batches E`, as the
        // CI smoke job does — is what rules that case out.)
        let boundary = log[..log.len() - 1].rfind('\n').unwrap() + 1;
        let cut = boundary + 1;
        let torn = tmp("torn.log");
        let clean = tmp("torn_clean.log");
        std::fs::write(&torn, &log[..cut]).unwrap();
        std::fs::write(&clean, &log[..boundary]).unwrap();
        let torn_csv = tmp("torn_out.csv");
        let clean_csv = tmp("torn_clean_out.csv");
        for (file, out) in [(&torn, &torn_csv), (&clean, &clean_csv)] {
            run(&parse(&s(&[
                "replay", "--p", &p, "--q", &q, "--target", "p", "--log", file, "--out", out,
            ]))
            .unwrap())
            .unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&torn_csv).unwrap(),
            std::fs::read_to_string(&clean_csv).unwrap(),
            "a torn tail must replay exactly like the complete-line prefix"
        );
    }

    #[test]
    fn client_mutations_and_replay_oracle_agree() {
        let p = tmp("mut_p.bin");
        let q = tmp("mut_q.bin");
        for (path, seed) in [(&p, "81"), (&q, "82")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "400", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 3,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        for (name, file) in [("p", &p), ("q", &q)] {
            run(&parse(&s(&[
                "client", "load", "--addr", &addr, "--name", name, "--input", file,
            ]))
            .unwrap())
            .unwrap();
        }

        // Three manual batches: insert fresh points, delete one of them
        // plus an original, move one and mint another via upsert.
        let ins = tmp("mut_ins.csv");
        std::fs::write(
            &ins,
            "id,x,y\n900001,10.5,20.25\n900002,30,40\n900003,50,60\n",
        )
        .unwrap();
        let msg = run(&parse(&s(&[
            "client", "insert", "--addr", &addr, "--name", "p", "--input", &ins,
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(msg.contains("epoch 1"), "{msg}");
        assert!(msg.contains("applied 3"), "{msg}");
        let msg = run(&parse(&s(&[
            "client", "delete", "--addr", &addr, "--name", "p", "--ids", "900001,5",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(msg.contains("epoch 2"), "{msg}");
        let ups = tmp("mut_ups.csv");
        std::fs::write(&ups, "id,x,y\n900002,-5.5,7.75\n900004,70,80\n").unwrap();
        let msg = run(&parse(&s(&[
            "client", "upsert", "--addr", &addr, "--name", "p", "--input", &ups,
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(msg.contains("epoch 3"), "{msg}");

        // A deterministic seeded stream on top, recording its log.
        let mlog = tmp("mut_stream.log");
        let msg = run(&parse(&s(&[
            "client",
            "mutate-stream",
            "--addr",
            &addr,
            "--name",
            "p",
            "--seed",
            "7",
            "--batches",
            "6",
            "--batch-size",
            "5",
            "--id-base",
            "910000",
            "--log",
            &mlog,
            "--quiet",
        ]))
        .unwrap())
        .unwrap()
        .unwrap();
        assert!(msg.contains("streamed 6 batch(es)"), "{msg}");
        assert!(msg.contains("epoch 9"), "{msg}");

        let live = tmp("mut_live.csv");
        run(&parse(&s(&[
            "client", "join", "--addr", &addr, "--outer", "q", "--inner", "p", "--out", &live,
        ]))
        .unwrap())
        .unwrap();

        // The oracle replays the identical history — the hand-written
        // manual batches prepended to the recorded stream log — through
        // a single in-process engine. Byte-identity is the contract.
        let full = tmp("mut_full.log");
        let manual = "batch\n+ 900001 10.5 20.25\n+ 900002 30 40\n+ 900003 50 60\n\
                      batch\n- 900001\n- 5\n\
                      batch\n^ 900002 -5.5 7.75\n^ 900004 70 80\n";
        std::fs::write(
            &full,
            format!("{manual}{}", std::fs::read_to_string(&mlog).unwrap()),
        )
        .unwrap();
        let oracle = tmp("mut_oracle.csv");
        run(&parse(&s(&[
            "replay", "--p", &p, "--q", &q, "--target", "p", "--log", &full, "--out", &oracle,
        ]))
        .unwrap())
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&live).unwrap(),
            std::fs::read_to_string(&oracle).unwrap(),
            "live server CSV must be byte-identical to the replayed oracle"
        );

        // Refused batches surface as client errors and leave the epoch
        // alone: 900001 is already deleted, 900002/900003 already exist.
        let err = run(&parse(&s(&[
            "client", "delete", "--addr", &addr, "--name", "p", "--ids", "900001",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("missing id"), "{}", err.0);
        let err = run(&parse(&s(&[
            "client", "insert", "--addr", &addr, "--name", "p", "--input", &ins,
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("duplicate id"), "{}", err.0);
        let stats = run(&parse(&s(&["client", "stats", "--addr", &addr])).unwrap())
            .unwrap()
            .unwrap();
        assert!(stats.contains("epoch=9"), "{stats}");
        assert!(stats.contains("updates_total 9"), "{stats}");

        // Replay argument validation.
        let err = run(&parse(&s(&[
            "replay", "--p", &p, "--q", &q, "--target", "r", "--log", &full,
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("--target must be p or q"), "{}", err.0);

        run(&parse(&s(&["client", "shutdown", "--addr", &addr])).unwrap()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn serve_rejects_zero_shards_and_stray_positionals_error() {
        let err = run(&parse(&s(&["serve", "--shards", "0"])).unwrap()).unwrap_err();
        assert!(err.0.contains("--shards must be at least 1"), "{}", err.0);
        // Zero sessions would make the server unreachable: rejected.
        let err = run(&parse(&s(&["serve", "--max-sessions", "0"])).unwrap()).unwrap_err();
        assert!(
            err.0.contains("--max-sessions must be at least 1"),
            "{}",
            err.0
        );
        // --pipeline 0 would send nothing and hang: rejected before any
        // request goes out (the server is real, so the error is ours).
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let paddr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.serve().unwrap());
        let err = run(&parse(&s(&[
            "client",
            "join",
            "--addr",
            &paddr,
            "--outer",
            "q",
            "--inner",
            "p",
            "--pipeline",
            "0",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.0.contains("--pipeline must be at least 1"), "{}", err.0);
        run(&parse(&s(&["client", "shutdown", "--addr", &paddr])).unwrap()).unwrap();
        handle.join().unwrap();
        // Commands without a sub-operation reject a stray positional.
        let err = run(&parse(&s(&["join", "stray", "--p", "a", "--q", "b"])).unwrap()).unwrap_err();
        assert!(err.0.contains("stray"), "{}", err.0);
        // client without an operation names the valid ones.
        let err = run(&parse(&s(&["client", "--addr", "127.0.0.1:1"])).unwrap()).unwrap_err();
        assert!(err.0.contains("client needs an operation"), "{}", err.0);
        // Unknown client op is rejected (before any connection succeeds
        // it must still error cleanly — use an unreachable addr).
        let err = run(&parse(&s(&["client", "frobnicate", "--addr", "127.0.0.1:1"])).unwrap())
            .unwrap_err();
        assert!(!err.0.is_empty());
    }

    #[test]
    fn errors_are_reported() {
        assert!(
            run(&parse(&s(&["join", "--p", "/nonexistent.bin", "--q", "x.bin"])).unwrap()).is_err()
        );
        assert!(run(&parse(&s(&["frobnicate"])).unwrap()).is_err());
        assert!(run(&parse(&s(&["compare", "--p", "a", "--q", "b"])).unwrap()).is_err());
        assert!(run(&parse(&s(&[
            "generate", "--kind", "nope", "--n", "10", "--out", "/tmp/x"
        ]))
        .unwrap())
        .is_err());
        // Unknown index kinds and algorithms are argument errors too.
        assert!(run(&parse(&s(&[
            "join", "--p", "a.bin", "--q", "b.bin", "--index", "btree"
        ]))
        .unwrap())
        .is_err());
        assert!(run(&parse(&s(&[
            "join", "--p", "a.bin", "--q", "b.bin", "--algo", "fastest"
        ]))
        .unwrap())
        .is_err());
    }
}
