//! Subcommand implementations.

use crate::args::{ArgError, Args};
use ringjoin_core::{
    bounds, rcj_join, rcj_self_join, sort_by_diameter, Executor, RcjAlgorithm, RcjOptions,
    RcjOutput,
};
use ringjoin_datagen::{gaussian_clusters, gnis_like, io as dio, uniform, GnisDataset};
use ringjoin_rtree::{bulk_load, Item, RTree};
use ringjoin_spatialjoin::{epsilon_join, k_closest_pairs, knn_join, precision_recall};
use ringjoin_storage::{CostModel, MemDisk, Pager, SharedPager};
use std::collections::HashSet;
use std::io::Write;
use std::path::Path;

/// Usage text printed on error or `help`.
pub const USAGE: &str = "\
ringjoin-cli — the ring-constrained join (EDBT 2008)

USAGE: ringjoin-cli <command> [options]

COMMANDS
  generate   --kind uniform|gaussian|pp|sc|lo --n N --out FILE
             [--seed S] [--clusters W] [--sigma X]
  join       --p FILE --q FILE [--algo inj|bij|obj] [--out FILE]
             [--buffer-frac F] [--page-size B] [--threads N] [--stats]
  self-join  --input FILE [--algo inj|bij|obj] [--out FILE]
             [--threads N] [--stats]
  top-k      --p FILE --q FILE --k K [--threads N]
             (smallest ring diameters first)
  compare    --p FILE --q FILE (--epsilon E | --kcp K | --knn K)
  bound      --np N --nq N  (result-size bounds)
  help

Dataset files are .csv (id,x,y with header) or the .bin format written
by `generate`; the extension decides the codec.

`--threads N` runs the join on N worker threads (default 1, or the
RINGJOIN_THREADS environment variable); parallel output is identical to
sequential output, pair for pair.";

/// Executor selection: an explicit `--threads` wins; otherwise the
/// `RINGJOIN_THREADS`-aware default applies.
fn parse_executor(args: &Args) -> Result<Executor, ArgError> {
    Ok(match args.opt("threads") {
        None => Executor::default(),
        Some(_) => Executor::threads(args.req_parse("threads")?),
    })
}

fn load_items(path: &str) -> Result<Vec<Item>, ArgError> {
    let res = if path.ends_with(".csv") {
        dio::load_csv(path)
    } else {
        dio::load_bin(path)
    };
    res.map_err(|e| ArgError(format!("cannot read {path}: {e}")))
}

fn save_items(path: &str, items: &[Item]) -> Result<(), ArgError> {
    let res = if path.ends_with(".csv") {
        dio::save_csv(path, items)
    } else {
        dio::save_bin(path, items)
    };
    res.map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

fn parse_algo(s: Option<&str>) -> Result<RcjAlgorithm, ArgError> {
    match s.unwrap_or("obj") {
        "inj" => Ok(RcjAlgorithm::Inj),
        "bij" => Ok(RcjAlgorithm::Bij),
        "obj" => Ok(RcjAlgorithm::Obj),
        other => Err(ArgError(format!("unknown algorithm {other:?}"))),
    }
}

/// Builds both trees in one pager with the paper's buffer rule.
fn build_trees(
    p_items: Vec<Item>,
    q_items: Vec<Item>,
    page_size: usize,
    buffer_frac: f64,
) -> (SharedPager, RTree, RTree) {
    let pager = Pager::new(MemDisk::new(page_size), usize::MAX / 2).into_shared();
    let tp = bulk_load(pager.clone(), p_items);
    let tq = bulk_load(pager.clone(), q_items);
    let buffer =
        (((tp.node_pages() + tq.node_pages()) as f64 * buffer_frac).ceil() as usize).max(1);
    {
        let mut pg = pager.borrow_mut();
        pg.set_buffer_capacity(buffer);
        pg.clear_buffer();
        pg.reset_stats();
    }
    (pager, tp, tq)
}

fn write_pairs(out: Option<&str>, pairs: &[ringjoin_core::RcjPair]) -> Result<(), ArgError> {
    let mut sink: Box<dyn Write> = match out {
        Some(path) => Box::new(
            std::fs::File::create(Path::new(path))
                .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut emit = || -> std::io::Result<()> {
        writeln!(sink, "p_id,q_id,center_x,center_y,radius")?;
        for pr in pairs {
            let c = pr.center();
            writeln!(
                sink,
                "{},{},{},{},{}",
                pr.p.id,
                pr.q.id,
                c.x,
                c.y,
                pr.radius()
            )?;
        }
        Ok(())
    };
    emit().map_err(|e| ArgError(format!("write failed: {e}")))
}

fn report_stats(pager: &SharedPager, out: &RcjOutput) {
    let io = pager.borrow().stats();
    eprintln!(
        "pairs: {}  candidates: {}  node accesses: {}  faults: {}  io-time: {:.2}s (10ms/fault)",
        out.stats.result_pairs,
        out.stats.candidate_pairs,
        io.logical_reads,
        io.read_faults,
        CostModel::default().io_seconds(&io),
    );
}

/// Runs one parsed command; returns the text to print on stdout (pair
/// CSVs go straight to their sink instead).
pub fn run(args: &Args) -> Result<Option<String>, ArgError> {
    match args.command.as_str() {
        "help" => Ok(Some(USAGE.to_string())),
        "generate" => {
            let n: usize = args.req_parse("n")?;
            let seed: u64 = args.opt_parse("seed", 42)?;
            let out = args.req("out")?;
            let items = match args.req("kind")? {
                "uniform" => uniform(n, seed),
                "gaussian" => {
                    let w: usize = args.opt_parse("clusters", 10)?;
                    let sigma: f64 = args.opt_parse("sigma", 1000.0)?;
                    gaussian_clusters(n, w, sigma, seed)
                }
                "pp" => gnis_like(GnisDataset::PopulatedPlaces, n),
                "sc" => gnis_like(GnisDataset::Schools, n),
                "lo" => gnis_like(GnisDataset::Locales, n),
                other => return Err(ArgError(format!("unknown dataset kind {other:?}"))),
            };
            save_items(out, &items)?;
            Ok(Some(format!("wrote {n} points to {out}")))
        }
        "join" | "self-join" => {
            let self_join = args.command == "self-join";
            let algo = parse_algo(args.opt("algo"))?;
            let page_size: usize = args.opt_parse("page-size", 1024)?;
            let buffer_frac: f64 = args.opt_parse("buffer-frac", 0.01)?;
            let opts = RcjOptions::algorithm(algo).with_executor(parse_executor(args)?);
            let (pager, out) = if self_join {
                let items = load_items(args.req("input")?)?;
                let (pager, tree, _empty) = build_trees(items, Vec::new(), page_size, buffer_frac);
                let out = rcj_self_join(&tree, &opts);
                (pager, out)
            } else {
                let p_items = load_items(args.req("p")?)?;
                let q_items = load_items(args.req("q")?)?;
                let (pager, tp, tq) = build_trees(p_items, q_items, page_size, buffer_frac);
                let out = rcj_join(&tq, &tp, &opts);
                (pager, out)
            };
            if args.flag("stats") {
                report_stats(&pager, &out);
            }
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "top-k" => {
            let k: usize = args.req_parse("k")?;
            let p_items = load_items(args.req("p")?)?;
            let q_items = load_items(args.req("q")?)?;
            let (_pager, tp, tq) = build_trees(p_items, q_items, 1024, 0.01);
            // Full join then sort: simple and exact; the streaming path
            // lives in the `ringjoin` facade crate.
            let opts = RcjOptions::default().with_executor(parse_executor(args)?);
            let mut out = rcj_join(&tq, &tp, &opts);
            sort_by_diameter(&mut out.pairs);
            out.pairs.truncate(k);
            write_pairs(args.opt("out"), &out.pairs)?;
            Ok(None)
        }
        "compare" => {
            let p_items = load_items(args.req("p")?)?;
            let q_items = load_items(args.req("q")?)?;
            let (_pager, tp, tq) = build_trees(p_items, q_items, 1024, 0.01);
            let rcj: HashSet<(u64, u64)> =
                ringjoin_core::pair_keys(&rcj_join(&tq, &tp, &RcjOptions::default()).pairs)
                    .into_iter()
                    .collect();
            let (name, keys): (String, Vec<(u64, u64)>) = if let Some(e) = args.opt("epsilon") {
                let eps: f64 = e
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --epsilon {e:?}")))?;
                (
                    format!("eps-join(eps={eps})"),
                    epsilon_join(&tp, &tq, eps)
                        .into_iter()
                        .map(|(a, b)| (a.id, b.id))
                        .collect(),
                )
            } else if let Some(k) = args.opt("kcp") {
                let k: usize = k
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --kcp {k:?}")))?;
                (
                    format!("{k}-closest-pairs"),
                    k_closest_pairs(&tp, &tq, k)
                        .into_iter()
                        .map(|(a, b, _)| (a.id, b.id))
                        .collect(),
                )
            } else if let Some(k) = args.opt("knn") {
                let k: usize = k
                    .parse()
                    .map_err(|_| ArgError(format!("invalid --knn {k:?}")))?;
                (
                    format!("{k}NN-join"),
                    knn_join(&tp, &tq, k)
                        .into_iter()
                        .map(|(a, b)| (a.id, b.id))
                        .collect(),
                )
            } else {
                return Err(ArgError(
                    "compare needs one of --epsilon E, --kcp K, --knn K".into(),
                ));
            };
            let q = precision_recall(&keys, &rcj);
            Ok(Some(format!(
                "{name}: {} pairs, precision {:.1}%, recall {:.1}% (|RCJ| = {})",
                keys.len(),
                q.precision,
                q.recall,
                rcj.len()
            )))
        }
        "bound" => {
            let np: u64 = args.req_parse("np")?;
            let nq: u64 = args.req_parse("nq")?;
            Ok(Some(format!(
                "general-position bound: {}   worst case (degenerate): {}",
                bounds::general_position_bound(np, nq),
                bounds::worst_case_bound(np, nq)
            )))
        }
        other => Err(ArgError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        ringjoin_testsupport::scratch_dir("cli")
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_then_join_roundtrip() {
        let p = tmp("p.bin");
        let q = tmp("q.csv");
        let out = tmp("pairs.csv");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "400", "--seed", "1", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate",
            "--kind",
            "gaussian",
            "--n",
            "400",
            "--clusters",
            "4",
            "--out",
            &q,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "join", "--p", &p, "--q", &q, "--algo", "obj", "--out", &out,
        ]))
        .unwrap())
        .unwrap();
        let csv = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "p_id,q_id,center_x,center_y,radius");
        assert!(lines.len() > 100, "join produced {} rows", lines.len() - 1);
        // Every row parses.
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 5);
            fields[2].parse::<f64>().unwrap();
            fields[4].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn self_join_and_topk() {
        let input = tmp("buildings.bin");
        run(&parse(&s(&[
            "generate", "--kind", "pp", "--n", "300", "--out", &input,
        ]))
        .unwrap())
        .unwrap();
        let out = tmp("self.csv");
        run(&parse(&s(&["self-join", "--input", &input, "--out", &out])).unwrap()).unwrap();
        let n_self = std::fs::read_to_string(&out).unwrap().lines().count() - 1;
        assert!(n_self > 0);

        let p = tmp("tp.bin");
        let q = tmp("tq.bin");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "200", "--seed", "2", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "200", "--seed", "3", "--out", &q,
        ]))
        .unwrap())
        .unwrap();
        let out2 = tmp("topk.csv");
        run(&parse(&s(&[
            "top-k", "--p", &p, "--q", &q, "--k", "5", "--out", &out2,
        ]))
        .unwrap())
        .unwrap();
        let csv = std::fs::read_to_string(&out2).unwrap();
        assert_eq!(csv.lines().count(), 6); // header + 5
                                            // Radii ascending.
        let radii: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(4).unwrap().parse().unwrap())
            .collect();
        for w in radii.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn compare_and_bound() {
        let p = tmp("cp.bin");
        let q = tmp("cq.bin");
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "300", "--seed", "5", "--out", &p,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "generate", "--kind", "uniform", "--n", "300", "--seed", "6", "--out", &q,
        ]))
        .unwrap())
        .unwrap();
        let msg = run(&parse(&s(&["compare", "--p", &p, "--q", &q, "--knn", "1"])).unwrap())
            .unwrap()
            .unwrap();
        assert!(msg.contains("precision"), "{msg}");

        let b = run(&parse(&s(&["bound", "--np", "100", "--nq", "100"])).unwrap())
            .unwrap()
            .unwrap();
        assert!(b.contains("594"), "{b}");
        assert!(b.contains("10000"), "{b}");
    }

    #[test]
    fn threaded_join_output_is_identical_to_sequential() {
        let p = tmp("tp_par.bin");
        let q = tmp("tq_par.bin");
        for (path, seed) in [(&p, "11"), (&q, "12")] {
            run(&parse(&s(&[
                "generate", "--kind", "uniform", "--n", "600", "--seed", seed, "--out", path,
            ]))
            .unwrap())
            .unwrap();
        }
        let seq = tmp("pairs_seq.csv");
        let par = tmp("pairs_par.csv");
        run(&parse(&s(&[
            "join",
            "--p",
            &p,
            "--q",
            &q,
            "--threads",
            "1",
            "--out",
            &seq,
        ]))
        .unwrap())
        .unwrap();
        run(&parse(&s(&[
            "join",
            "--p",
            &p,
            "--q",
            &q,
            "--threads",
            "4",
            "--out",
            &par,
        ]))
        .unwrap())
        .unwrap();
        let seq_csv = std::fs::read_to_string(&seq).unwrap();
        assert_eq!(
            seq_csv,
            std::fs::read_to_string(&par).unwrap(),
            "parallel CSV must be byte-identical to sequential"
        );
        assert!(seq_csv.lines().count() > 1);
        // Bad thread counts surface as argument errors.
        assert!(
            run(&parse(&s(&["join", "--p", &p, "--q", &q, "--threads", "x"])).unwrap()).is_err()
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(
            run(&parse(&s(&["join", "--p", "/nonexistent.bin", "--q", "x.bin"])).unwrap()).is_err()
        );
        assert!(run(&parse(&s(&["frobnicate"])).unwrap()).is_err());
        assert!(run(&parse(&s(&["compare", "--p", "a", "--q", "b"])).unwrap()).is_err());
        assert!(run(&parse(&s(&[
            "generate", "--kind", "nope", "--n", "10", "--out", "/tmp/x"
        ]))
        .unwrap())
        .is_err());
    }
}
