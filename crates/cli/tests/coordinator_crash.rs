//! Crash-fault injection against a *real* durable coordinator process:
//! the suite kills `ringjoin serve --data-dir ...` mid-mutation-stream
//! — via the `RINGJOIN_CRASH_POINT` abort hook at each WAL crash point
//! (before fsync, after fsync, mid-fan-out) and via a plain SIGKILL —
//! restarts it on the same directory, and requires the healed fleet's
//! join to be **byte-identical** to the replayed-history oracle over
//! the durable prefix the restarted server reports.
//!
//! The durability invariant under test: the recovered epoch `E` always
//! satisfies `acked <= E <= sent` (every batch the client saw an OK for
//! survives; at most the single in-flight batch is additionally kept or
//! lost), and the fleet's answer equals the oracle replaying exactly
//! the first `E` batches.

use ringjoin_core::{Engine, IndexKind, RcjAlgorithm, RcjPair};
use ringjoin_rtree::Item;
use ringjoin_server::proto::Request;
use ringjoin_server::{Client, ServerError};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const REGION: f64 = 600.0;
const BATCHES: usize = 6;
const BATCH_SIZE: usize = 3;

fn lcg_items(n: usize, base_id: u64, seed: u64) -> Vec<Item> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * REGION
            };
            let (x, y) = (next(), next());
            Item::new(base_id + i as u64, ringjoin_geom::pt(x, y))
        })
        .collect()
}

/// The mutation stream: `BATCHES` homogeneous INSERT batches minting
/// fresh ids from 1000 up — deterministic, so the oracle can replay any
/// prefix of it.
fn insert_batches() -> Vec<Vec<Item>> {
    (0..BATCHES)
        .map(|i| {
            lcg_items(
                BATCH_SIZE,
                1000 + (i * BATCH_SIZE) as u64,
                0xABC0 + i as u64,
            )
        })
        .collect()
}

/// The replayed-history oracle: a single engine applying exactly the
/// first `epochs` batches of the stream.
fn oracle_pairs(p: &[Item], q: &[Item], epochs: usize) -> Vec<RcjPair> {
    let mut engine = Engine::new();
    engine.load("p", p.to_vec()).index(IndexKind::Rtree);
    engine.load("q", q.to_vec()).index(IndexKind::Rtree);
    for batch in insert_batches().into_iter().take(epochs) {
        engine
            .update("p")
            .insert(batch)
            .apply()
            .expect("oracle batch");
    }
    engine
        .query()
        .join("q", "p")
        .collect()
        .expect("oracle join")
        .pairs
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringjoin-crash-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns a durable coordinator (`--shards 2`, local workers) on an
/// ephemeral port, optionally armed with a crash point, and polls its
/// address file until it is ready to serve (startup recovery included —
/// the address file is written only after `bind` returns).
fn spawn_coordinator(data_dir: &PathBuf, crash_point: Option<&str>, tag: &str) -> (Child, String) {
    let addr_file = data_dir.join(format!("addr-{tag}"));
    let _ = std::fs::remove_file(&addr_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ringjoin"));
    cmd.args([
        "serve",
        "--shards",
        "2",
        "--addr",
        "127.0.0.1:0",
        "--addr-file",
    ])
    .arg(&addr_file)
    .arg("--data-dir")
    .arg(data_dir)
    .stdin(Stdio::null())
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if let Some(point) = crash_point {
        cmd.env("RINGJOIN_CRASH_POINT", point);
    }
    let child = cmd.spawn().expect("spawn coordinator");
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&addr_file) {
            if let Some(addr) = contents.strip_suffix('\n') {
                break addr.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "coordinator never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

fn wait_exit(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            _ if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("{what}: coordinator never exited");
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Pulls `epoch=` of dataset `p` and a named counter out of a STATS
/// text blob.
fn stats_number(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("STATS is missing {key:?}:\n{stats}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("STATS {key} is not a number:\n{stats}"))
}

fn dataset_epoch(stats: &str, name: &str) -> u64 {
    let line = stats
        .lines()
        .find(|l| l.starts_with(&format!("dataset {name} ")))
        .unwrap_or_else(|| panic!("STATS has no dataset {name:?}:\n{stats}"));
    line.split_whitespace()
        .find_map(|field| field.strip_prefix("epoch=")?.parse().ok())
        .unwrap_or_else(|| panic!("no epoch= in {line:?}"))
}

/// How the coordinator dies mid-stream.
enum CrashMode {
    /// Arm `RINGJOIN_CRASH_POINT=<point>:<skip>` at spawn.
    Inject { point: &'static str, skip: u64 },
    /// SIGKILL the process after `after_batches` acked batches.
    Sigkill { after_batches: usize },
}

/// The shared harness: load p and q, stream INSERT batches until the
/// coordinator dies, restart it on the same `--data-dir`, and assert
/// the durability invariant plus byte-identity with the oracle over the
/// recovered prefix.
fn crash_and_recover(label: &str, mode: CrashMode) {
    let dir = scratch(label);
    let p = lcg_items(60, 0, 0xD15C);
    let q = lcg_items(40, 0, 0x0FF5E7);

    let (mut child, addr) = match &mode {
        CrashMode::Inject { point, skip } => {
            spawn_coordinator(&dir, Some(&format!("{point}:{skip}")), "first")
        }
        CrashMode::Sigkill { .. } => spawn_coordinator(&dir, None, "first"),
    };
    let mut client = Client::connect(&addr).expect("connect");
    client
        .request(&Request::Load {
            name: "p".into(),
            kind: IndexKind::Rtree,
            items: p.clone(),
        })
        .expect("LOAD p");
    client
        .request(&Request::Load {
            name: "q".into(),
            kind: IndexKind::Rtree,
            items: q.clone(),
        })
        .expect("LOAD q");

    let mut acked = 0usize;
    let mut sent = 0usize;
    let mut died = false;
    for (i, batch) in insert_batches().into_iter().enumerate() {
        if let CrashMode::Sigkill { after_batches } = &mode {
            if i == *after_batches {
                let pid = child.id().to_string();
                let killed = Command::new("kill")
                    .args(["-9", &pid])
                    .status()
                    .expect("spawn kill(1)");
                assert!(killed.success(), "kill -9 {pid} failed");
            }
        }
        sent += 1;
        match client.request(&Request::Insert {
            name: "p".into(),
            items: batch,
        }) {
            Ok(_) => acked += 1,
            Err(ServerError::Io(_)) => {
                died = true;
                break;
            }
            Err(e) => panic!("unexpected mid-stream error: {e}"),
        }
    }
    assert!(died, "{label}: the coordinator survived the whole stream");
    wait_exit(&mut child, label);

    // Restart on the same directory — startup recovery runs before the
    // address file is written, so a successful connect means the fleet
    // is already healed to the durable prefix.
    let (mut child, addr) = spawn_coordinator(&dir, None, "second");
    let mut client = Client::connect(&addr).expect("reconnect");
    let stats = client.stats().expect("STATS");
    let recovered = stats_number(&stats, "recovered_epochs");
    let shards_up = stats_number(&stats, "shards_up");
    let epoch = dataset_epoch(&stats, "p") as usize;
    assert_eq!(shards_up, 2, "{label}: fleet not fully up after recovery");
    assert_eq!(dataset_epoch(&stats, "q"), 0, "{label}: q lost its load");
    // recovered_epochs counts replayed records: 2 LOADs + epoch batches.
    assert_eq!(
        recovered,
        2 + epoch as u64,
        "{label}: recovered_epochs disagrees with the catalog"
    );
    assert!(
        (acked..=sent).contains(&epoch),
        "{label}: durable epoch {epoch} outside acked..=sent ({acked}..={sent})"
    );

    let reply = client
        .request(&Request::Join {
            outer: "q".into(),
            inner: "p".into(),
            algo: RcjAlgorithm::Auto,
            bounds: None,
        })
        .expect("post-recovery join");
    let out = Client::decode_output(&reply).expect("join payload");
    assert_eq!(
        out.pairs,
        oracle_pairs(&p, &q, epoch),
        "{label}: healed fleet diverged from the oracle over the durable prefix (epoch {epoch})"
    );

    client.shutdown().expect("SHUTDOWN");
    wait_exit(&mut child, label);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash between the WAL append and its fsync (hits: 2 LOADs + 2
/// batches skipped → dies appending batch 3). The record may or may not
/// survive — `abort` does not drop page-cache writes — so only the
/// invariant is asserted, not batch loss.
#[test]
fn crash_before_fsync_recovers_to_oracle() {
    crash_and_recover(
        "pre-sync",
        CrashMode::Inject {
            point: "wal-pre-sync",
            skip: 4,
        },
    );
}

/// Crash right after the fsync, before any worker saw the batch: the
/// batch is durable but unacked — recovery must still apply it.
#[test]
fn crash_after_fsync_recovers_to_oracle() {
    crash_and_recover(
        "post-sync",
        CrashMode::Inject {
            point: "wal-post-sync",
            skip: 4,
        },
    );
}

/// Crash mid-fan-out: slot 0 applied the batch, the rest may not have —
/// the recovered fleet must heal the partial application to the logged
/// epoch on every replica.
#[test]
fn crash_mid_fanout_recovers_to_oracle() {
    crash_and_recover(
        "mid-fanout",
        CrashMode::Inject {
            point: "mid-fanout",
            skip: 2,
        },
    );
}

/// Plain SIGKILL racing the stream — no cooperation from the process at
/// all, the scenario the CI smoke job reproduces across shell tooling.
#[test]
fn sigkill_mid_stream_recovers_to_oracle() {
    crash_and_recover("sigkill", CrashMode::Sigkill { after_batches: 3 });
}
