//! Distributed serving against *real* worker processes: the
//! coordinator spawns `ringjoin serve --shard-of auto` children
//! (`WorkerSpec::Spawn`), and the suite SIGKILLs one mid-run — the
//! ISSUE's acceptance bar is that a killed worker with `--replicas 2`
//! never surfaces an error to the caller, and that the respawned,
//! replayed topology stays byte-identical to a local single engine.

use ringjoin_core::{Engine, IndexKind, RcjAlgorithm, RcjPair, RcjStats};
use ringjoin_rtree::Item;
use ringjoin_server::{ShardedEngine, TopologyConfig, WorkerSpec};
use std::path::PathBuf;
use std::time::Duration;

const REGION: f64 = 1000.0;

fn lcg_items(n: usize, seed: u64) -> Vec<Item> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let (x, y) = (next() * REGION, next() * REGION);
            Item::new(i as u64, ringjoin_geom::pt(x, y))
        })
        .collect()
}

fn reference(p: &[Item], q: &[Item]) -> (Vec<RcjPair>, RcjStats) {
    let mut engine = Engine::new();
    engine.load("p", p.to_vec()).index(IndexKind::Rtree);
    engine.load("q", q.to_vec()).index(IndexKind::Rtree);
    let out = engine.query().join("q", "p").collect().unwrap();
    (out.pairs, out.stats)
}

fn spawned_engine(shards: usize, replicas: usize) -> ShardedEngine {
    ShardedEngine::with_topology(TopologyConfig {
        shards,
        replicas,
        workers: WorkerSpec::Spawn {
            program: PathBuf::from(env!("CARGO_BIN_EXE_ringjoin")),
        },
        request_timeout: Duration::from_secs(20),
        respawn_backoff: Duration::from_millis(25),
        ..TopologyConfig::default()
    })
    .expect("spawned topology")
}

/// 2 shards x 2 replicas = 4 real child processes. One is SIGKILLed
/// between queries; with a spare replica per cell the client must
/// never see an error, and every answer — degraded, healing, healed —
/// must be byte-identical to the local reference.
#[test]
fn sigkilled_worker_with_a_spare_replica_is_invisible_to_the_client() {
    let p = lcg_items(120, 7);
    let q = lcg_items(120, 13);
    let (ref_pairs, ref_stats) = reference(&p, &q);

    let se = spawned_engine(2, 2);
    se.load("p", p, IndexKind::Rtree).unwrap();
    se.load("q", q, IndexKind::Rtree).unwrap();

    let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(out.pairs, ref_pairs, "pre-kill join diverged");
    assert_eq!(out.stats, ref_stats, "pre-kill stats diverged");

    // SIGKILL the first worker process — no shutdown handshake, the
    // coordinator finds out the hard way.
    let victim = se.worker_pids()[0].expect("spawned slot 0 has a pid");
    let killed = std::process::Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("spawn kill(1)");
    assert!(killed.success(), "kill -9 {victim} failed");

    // Every query during the outage and the heal must succeed and
    // match: that is the whole point of --replicas 2.
    for round in 0..6 {
        let out = se
            .join("q", "p", RcjAlgorithm::Auto, None)
            .unwrap_or_else(|e| {
                panic!("round {round} surfaced an error despite a spare replica: {e}")
            });
        assert_eq!(out.pairs, ref_pairs, "round {round} join diverged");
        assert_eq!(out.stats, ref_stats, "round {round} stats diverged");
    }

    assert!(
        se.wait_healthy(Duration::from_secs(30)),
        "supervisor never respawned the SIGKILLed worker"
    );
    assert!(
        se.replays_total() >= 2,
        "respawn must replay both LOAD records, saw {}",
        se.replays_total()
    );
    let pid_after = se.worker_pids()[0].expect("healed slot 0 has a pid");
    assert_ne!(pid_after, victim, "healed slot must be a fresh process");

    for _ in 0..4 {
        let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
        assert_eq!(out.pairs, ref_pairs, "healed join diverged");
        assert_eq!(out.stats, ref_stats, "healed stats diverged");
    }
    se.shutdown();
}

/// The CLI worker mode end to end: a real `ringjoin serve --shard-of
/// auto --addr-file ...` child, discovered through its address file and
/// addressed via `WorkerSpec::Remote`, answers byte-identically.
#[test]
fn shard_of_worker_discovered_by_addr_file_answers_byte_identically() {
    let p = lcg_items(80, 17);
    let q = lcg_items(80, 19);
    let (ref_pairs, ref_stats) = reference(&p, &q);

    let addr_file = std::env::temp_dir().join(format!(
        "ringjoin-distributed-test-{}.addr",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&addr_file);
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ringjoin"))
        .args([
            "serve",
            "--shard-of",
            "auto",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
        ])
        .arg(&addr_file)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn worker");

    // Poll the address file: the trailing newline marks a complete write.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(contents) = std::fs::read_to_string(&addr_file) {
            if let Some(addr) = contents.strip_suffix('\n') {
                break addr.trim().to_string();
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_file(&addr_file);

    let se = ShardedEngine::with_topology(TopologyConfig {
        shards: 1,
        workers: WorkerSpec::Remote(vec![addr]),
        request_timeout: Duration::from_secs(20),
        ..TopologyConfig::default()
    })
    .expect("remote topology over the addr-file worker");
    se.load("p", p, IndexKind::Rtree).unwrap();
    se.load("q", q, IndexKind::Rtree).unwrap();
    let out = se.join("q", "p", RcjAlgorithm::Auto, None).unwrap();
    assert_eq!(out.pairs, ref_pairs, "addr-file worker join diverged");
    assert_eq!(out.stats, ref_stats, "addr-file worker stats diverged");

    // Engine shutdown sends the worker SHUTDOWN; the process exits.
    se.shutdown();
    let exit_deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match child.try_wait() {
            Ok(Some(_)) => break,
            _ if std::time::Instant::now() >= exit_deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("worker ignored SHUTDOWN");
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
