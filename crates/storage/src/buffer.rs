//! A strict-LRU page cache.

use crate::disk::PageId;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// One cached page frame plus its intrusive LRU links.
struct Frame {
    page: PageId,
    data: Box<[u8]>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity page cache with strict least-recently-used eviction.
///
/// The paper sizes this buffer as a *fraction of the total size of both
/// R-trees* (default 1%, swept in Figure 15), which is why capacity is
/// mutable at runtime via [`BufferManager::set_capacity`].
///
/// Implementation: a `HashMap<PageId, frame index>` plus an intrusive
/// doubly-linked list over a frame arena — O(1) hit, O(1) eviction, no
/// allocation after warm-up.
pub struct BufferManager {
    page_size: usize,
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

impl BufferManager {
    /// Creates a buffer holding at most `capacity` pages of `page_size`
    /// bytes. Capacity is clamped to at least 1 (a zero-page buffer would
    /// make every access a fault *and* leave nowhere to stage a page).
    pub fn new(page_size: usize, capacity: usize) -> Self {
        BufferManager {
            page_size,
            capacity: capacity.max(1),
            frames: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of pages the buffer may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no page is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Changes the capacity; shrinking evicts least-recently-used pages
    /// immediately.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Drops every cached page (used between experiment runs for cold
    /// starts).
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up `page`; on a hit, promotes it to most-recently-used and
    /// returns its bytes.
    pub fn get(&mut self, page: PageId) -> Option<&[u8]> {
        let idx = *self.map.get(&page)?;
        self.touch(idx);
        Some(&self.frames[idx].data)
    }

    /// Mutable variant of [`BufferManager::get`].
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut [u8]> {
        let idx = *self.map.get(&page)?;
        self.touch(idx);
        Some(&mut self.frames[idx].data)
    }

    /// Inserts `page` as most-recently-used, evicting the LRU page if the
    /// buffer is full, and returns a mutable slice for the caller to fill.
    ///
    /// The caller must ensure the page is not already cached (checked by a
    /// debug assertion) — the [`Pager`](crate::Pager) access path always
    /// probes [`BufferManager::get`] first.
    pub fn insert(&mut self, page: PageId) -> &mut [u8] {
        debug_assert!(
            !self.map.contains_key(&page),
            "page {page:?} already cached"
        );
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.frames[idx].page = page;
            idx
        } else {
            self.frames.push(Frame {
                page,
                data: vec![0u8; self.page_size].into_boxed_slice(),
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(page, idx);
        self.push_front(idx);
        &mut self.frames[idx].data
    }

    /// Removes `page` from the cache if present (used when a page is
    /// superseded, e.g. after a node split rewrites it wholesale).
    pub fn invalidate(&mut self, page: PageId) {
        if let Some(idx) = self.map.remove(&page) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// The cached pages from most to least recently used (test hook).
    pub fn lru_order(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.frames[cur].page);
            cur = self.frames[cur].next;
        }
        out
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict on empty buffer");
        let page = self.frames[idx].page;
        self.map.remove(&page);
        self.unlink(idx);
        self.free.push(idx);
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<PageId> {
        v.iter().map(|&x| PageId(x)).collect()
    }

    #[test]
    fn insert_then_get() {
        let mut b = BufferManager::new(64, 4);
        b.insert(PageId(3))[0] = 42;
        assert_eq!(b.get(PageId(3)).unwrap()[0], 42);
        assert!(b.get(PageId(9)).is_none());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut b = BufferManager::new(64, 3);
        for i in 0..3 {
            b.insert(PageId(i));
        }
        assert_eq!(b.lru_order(), ids(&[2, 1, 0]));
        // Touch 0 -> becomes MRU.
        b.get(PageId(0));
        assert_eq!(b.lru_order(), ids(&[0, 2, 1]));
        // Insert 3 -> evicts 1 (the LRU).
        b.insert(PageId(3));
        assert!(b.get(PageId(1)).is_none());
        assert_eq!(b.lru_order(), ids(&[3, 0, 2]));
    }

    #[test]
    fn capacity_one() {
        let mut b = BufferManager::new(64, 1);
        b.insert(PageId(0));
        b.insert(PageId(1));
        assert!(b.get(PageId(0)).is_none());
        assert!(b.get(PageId(1)).is_some());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let b = BufferManager::new(64, 0);
        assert_eq!(b.capacity(), 1);
    }

    #[test]
    fn shrink_evicts_lru_first() {
        let mut b = BufferManager::new(64, 4);
        for i in 0..4 {
            b.insert(PageId(i));
        }
        b.get(PageId(0)); // order: 0,3,2,1
        b.set_capacity(2);
        assert_eq!(b.lru_order(), ids(&[0, 3]));
    }

    #[test]
    fn invalidate_frees_frame() {
        let mut b = BufferManager::new(64, 2);
        b.insert(PageId(0));
        b.insert(PageId(1));
        b.invalidate(PageId(0));
        assert_eq!(b.len(), 1);
        // The freed frame is reused without eviction.
        b.insert(PageId(2));
        assert_eq!(b.len(), 2);
        assert!(b.get(PageId(1)).is_some());
        assert!(b.get(PageId(2)).is_some());
    }

    #[test]
    fn clear_resets() {
        let mut b = BufferManager::new(64, 2);
        b.insert(PageId(0));
        b.clear();
        assert!(b.is_empty());
        assert!(b.get(PageId(0)).is_none());
        b.insert(PageId(5))[1] = 9;
        assert_eq!(b.get(PageId(5)).unwrap()[1], 9);
    }

    /// Model-based test: compare against a naive Vec-backed LRU across a
    /// pseudo-random workload.
    #[test]
    fn matches_reference_model() {
        struct RefLru {
            cap: usize,
            order: Vec<u32>, // front = MRU
        }
        impl RefLru {
            fn access(&mut self, p: u32) -> bool {
                if let Some(pos) = self.order.iter().position(|&x| x == p) {
                    self.order.remove(pos);
                    self.order.insert(0, p);
                    true
                } else {
                    if self.order.len() >= self.cap {
                        self.order.pop();
                    }
                    self.order.insert(0, p);
                    false
                }
            }
        }

        let mut b = BufferManager::new(64, 7);
        let mut model = RefLru {
            cap: 7,
            order: Vec::new(),
        };
        let mut state = 0x12345678u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let p = ((state >> 33) % 20) as u32;
            let hit = b.get(PageId(p)).is_some();
            if !hit {
                b.insert(PageId(p));
            }
            let model_hit = model.access(p);
            assert_eq!(hit, model_hit, "divergence at page {p}");
            assert_eq!(
                b.lru_order(),
                model.order.iter().map(|&x| PageId(x)).collect::<Vec<_>>()
            );
        }
    }
}
