//! Disk-page and buffer-manager substrate for the RCJ reproduction.
//!
//! The EDBT 2008 evaluation is I/O-centric: each dataset is indexed by a
//! *disk-based* R\*-tree with a 1 KB page size, a small LRU memory buffer
//! (default 1% of the total size of both trees) exploits access locality,
//! and the cost model charges **10 ms per page fault** while CPU time tracks
//! the number of (possibly repeated) node accesses. This crate provides that
//! exact machinery:
//!
//! * [`DiskStorage`] — the raw page device, with an in-memory
//!   implementation ([`MemDisk`], used by tests and benchmarks for
//!   determinism) and a real file-backed one ([`FileDisk`]).
//! * [`BufferManager`] — a strict-LRU page cache of configurable capacity.
//! * [`Pager`] — ties the two together and maintains [`IoStats`]: logical
//!   reads (the paper's CPU proxy), page faults (the paper's I/O unit), and
//!   writes.
//! * [`CostModel`] — converts fault counts into the simulated I/O time the
//!   paper reports (10 ms per fault by default).
//! * [`PageAccess`] + [`PageSnapshot`] — the concurrency seam: an
//!   object-safe read path implemented by both the shared sequential
//!   pager and per-worker handles over an `Arc`-shared read-only
//!   snapshot, which is what lets the join executor run workers without
//!   a contended lock on the bytes.
//! * [`BufferPool`] + [`PooledPager`] — the shared, sharded clock-sweep
//!   cache parallel workers account through ([`Pager::shared_pool`]):
//!   one warm cache at the sequential budget instead of `workers` cold
//!   per-worker LRUs, with atomic hit/fault counters for observability.
//! * [`PageStore`] + [`PageSource`] — the disk-native residency layer:
//!   [`Pager::spill_to`] moves a dataset onto a real on-disk page file
//!   ([`FilePageStore`]), the pool's frames then *own* whatever page
//!   bytes fit the budget, and a [`Prefetcher`] stages upcoming pages
//!   in the background so `read_faults` tracks the paper's I/O model
//!   instead of RAM size.
//! * [`Wal`] — the durable write-ahead mutation log the serving
//!   coordinator appends LOAD/mutation batches to (length-prefixed,
//!   CRC32-checksummed, fsynced before fan-out), with segment rotation
//!   and torn-tail-tolerant recovery ([`decode_segment`]) so a
//!   restarted coordinator can replay its fleet back to the logged
//!   epochs.
//!
//! # Example
//!
//! ```
//! use ringjoin_storage::{MemDisk, Pager, CostModel};
//!
//! let mut pager = Pager::new(MemDisk::new(1024), 2); // 2-page buffer
//! let a = pager.allocate();
//! let b = pager.allocate();
//! let c = pager.allocate();
//! pager.write(a, |bytes| bytes[0] = 7);
//! pager.read(a, |bytes| assert_eq!(bytes[0], 7));
//! pager.read(b, |_| ());
//! pager.read(c, |_| ()); // evicts a (LRU)
//! pager.read(a, |bytes| assert_eq!(bytes[0], 7)); // faults again
//! let stats = pager.stats();
//! assert_eq!(stats.logical_reads, 4);
//! assert!(stats.read_faults >= 2);
//! let model = CostModel::default();
//! assert!(model.io_seconds(&stats) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod buffer_pool;
mod disk;
mod pager;
mod snapshot;
mod wal;

pub use buffer::BufferManager;
pub use buffer_pool::{
    BufferPool, PageSource, PoolRead, PooledPager, Prefetcher, DEFAULT_POOL_SHARDS,
};
pub use disk::{DiskStorage, FileDisk, FilePageStore, MemDisk, PageId, PageStore};
pub use pager::{read_page_as, CostModel, IoStats, PageAccess, Pager, SharedPager};
pub use snapshot::PageSnapshot;
pub use wal::{crc32, decode_segment, Wal, DEFAULT_SEGMENT_BYTES, MAX_RECORD_BYTES};
