//! Raw page devices and the shared read-only [`PageStore`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
#[cfg(not(unix))]
use std::sync::Mutex;

/// Identifier of a disk page. Pages are allocated sequentially from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in serialized node headers for "no page" (e.g. the
    /// parent of the root). Never returned by an allocator.
    pub const INVALID: PageId = PageId(u32::MAX);

    /// `true` if this is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_invalid(&self) -> bool {
        *self == Self::INVALID
    }
}

/// A device that stores fixed-size pages addressed by [`PageId`].
///
/// Implementations do not count I/O — accounting lives in the
/// [`Pager`](crate::Pager), which sees every access. A `DiskStorage` is the
/// "platter": dumb, page-granular, and with no notion of caching.
pub trait DiskStorage {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Appends a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> PageId;

    /// Reads page `id` into `buf` (`buf.len() == page_size()`).
    ///
    /// # Panics
    /// Panics if `id` was never allocated — an unallocated read is a logic
    /// error in the index layer, not a runtime condition to handle.
    fn read_page(&mut self, id: PageId, buf: &mut [u8]);

    /// Writes `buf` to page `id` (`buf.len() == page_size()`).
    fn write_page(&mut self, id: PageId, buf: &[u8]);
}

/// An in-memory page device.
///
/// Used throughout the benchmarks: the paper's cost model *charges* a fixed
/// 10 ms per page fault rather than timing a physical device, so the
/// experiments are deterministic with a memory-backed "disk" while
/// reproducing the same accounting.
pub struct MemDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl MemDisk {
    /// Creates an empty device with the given page size (the paper uses
    /// 1024 bytes).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small to hold a node header");
        MemDisk {
            page_size,
            pages: Vec::new(),
        }
    }
}

impl DiskStorage for MemDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn allocate(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        id
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) {
        buf.copy_from_slice(&self.pages[id.0 as usize]);
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) {
        self.pages[id.0 as usize].copy_from_slice(buf);
    }
}

/// A file-backed page device, for datasets that should persist across
/// processes (e.g. generating a workload once and joining it many times).
pub struct FileDisk {
    page_size: usize,
    num_pages: u32,
    file: File,
}

impl FileDisk {
    /// Creates (truncating) a page file at `path`.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> std::io::Result<Self> {
        assert!(page_size >= 64, "page size too small to hold a node header");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileDisk {
            page_size,
            num_pages: 0,
            file,
        })
    }

    /// Opens an existing page file; its length must be a multiple of
    /// `page_size`.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> std::io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        assert_eq!(
            len % page_size as u64,
            0,
            "file length {len} is not a multiple of the page size {page_size}"
        );
        Ok(FileDisk {
            page_size,
            num_pages: (len / page_size as u64) as u32,
            file,
        })
    }

    fn offset(&self, id: PageId) -> u64 {
        id.0 as u64 * self.page_size as u64
    }
}

impl DiskStorage for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn allocate(&mut self) -> PageId {
        let id = PageId(self.num_pages);
        self.num_pages += 1;
        // Extend the file eagerly so reads of freshly allocated pages see
        // zeroes, matching MemDisk.
        self.file
            .set_len(self.num_pages as u64 * self.page_size as u64)
            .expect("extending page file");
        id
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) {
        assert!(id.0 < self.num_pages, "read of unallocated page {id:?}");
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.read_exact(buf))
            .expect("reading page");
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) {
        assert!(id.0 < self.num_pages, "write of unallocated page {id:?}");
        self.file
            .seek(SeekFrom::Start(self.offset(id)))
            .and_then(|_| self.file.write_all(buf))
            .expect("writing page");
    }
}

/// A shared, read-only page source that many readers can hit at once.
///
/// This is the residency boundary of the disk-native engine: the
/// [`BufferPool`](crate::BufferPool) reads pages *from* a store into its
/// frames on a miss, and serves frame bytes on a hit. Unlike
/// [`DiskStorage`] (the pager's exclusive, mutable device), a
/// `PageStore` takes `&self` so one handle can serve parallel join
/// workers and the background prefetch thread concurrently.
pub trait PageStore: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Number of readable pages.
    fn num_pages(&self) -> u32;

    /// Reads page `id` into `buf` (`buf.len() == page_size()`).
    ///
    /// # Panics
    /// Panics if `id` is out of range — like [`DiskStorage::read_page`],
    /// an unallocated read is a logic error in the index layer.
    fn read_into(&self, id: PageId, buf: &mut [u8]);
}

/// A file-backed [`PageStore`] over a page file written by
/// [`Pager::spill_to`](crate::Pager::spill_to) (same layout as
/// [`FileDisk`]: page `i` at byte offset `i * page_size`).
///
/// On Unix, reads use positioned I/O (`read_at`), so concurrent readers
/// never contend on a seek cursor; elsewhere a mutex serializes the
/// seek+read pair.
pub struct FilePageStore {
    page_size: usize,
    num_pages: u32,
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: Mutex<File>,
}

impl FilePageStore {
    /// Opens the page file at `path` read-only; its length must be a
    /// multiple of `page_size`.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> std::io::Result<Self> {
        assert!(page_size >= 64, "page size too small to hold a node header");
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        assert_eq!(
            len % page_size as u64,
            0,
            "file length {len} is not a multiple of the page size {page_size}"
        );
        Ok(FilePageStore {
            page_size,
            num_pages: (len / page_size as u64) as u32,
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: Mutex::new(file),
        })
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn read_into(&self, id: PageId, buf: &mut [u8]) {
        assert!(id.0 < self.num_pages, "read of unallocated page {id:?}");
        let offset = id.0 as u64 * self.page_size as u64;
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset).expect("reading page");
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.lock().expect("page store file poisoned");
            file.seek(SeekFrom::Start(offset))
                .and_then(|_| file.read_exact(buf))
                .expect("reading page");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &mut dyn DiskStorage) {
        let a = disk.allocate();
        let b = disk.allocate();
        assert_eq!(disk.num_pages(), 2);

        let ps = disk.page_size();
        let mut buf = vec![0u8; ps];

        // Fresh pages read as zeroes.
        disk.read_page(a, &mut buf);
        assert!(buf.iter().all(|&x| x == 0));

        buf[0] = 0xAB;
        buf[ps - 1] = 0xCD;
        disk.write_page(b, &buf);

        let mut out = vec![0u8; ps];
        disk.read_page(b, &mut out);
        assert_eq!(out, buf);
        // Page a is untouched.
        disk.read_page(a, &mut out);
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn memdisk_roundtrip() {
        let mut d = MemDisk::new(256);
        roundtrip(&mut d);
    }

    #[test]
    fn filedisk_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ringjoin-filedisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        {
            let mut d = FileDisk::create(&path, 256).unwrap();
            roundtrip(&mut d);
        }
        {
            let mut d = FileDisk::open(&path, 256).unwrap();
            assert_eq!(d.num_pages(), 2);
            let mut buf = vec![0u8; 256];
            d.read_page(PageId(1), &mut buf);
            assert_eq!(buf[0], 0xAB);
            assert_eq!(buf[255], 0xCD);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn filedisk_read_unallocated_panics() {
        let dir = std::env::temp_dir().join(format!("ringjoin-filedisk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        let mut d = FileDisk::create(&path, 256).unwrap();
        let mut buf = vec![0u8; 256];
        d.read_page(PageId(0), &mut buf);
    }

    #[test]
    fn file_page_store_serves_concurrent_readers() {
        let dir = std::env::temp_dir().join(format!("ringjoin-pagestore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        {
            let mut d = FileDisk::create(&path, 128).unwrap();
            for i in 0..16u32 {
                let id = d.allocate();
                let mut buf = vec![0u8; 128];
                buf[0] = i as u8 + 1;
                d.write_page(id, &buf);
            }
        }
        let store = FilePageStore::open(&path, 128).unwrap();
        assert_eq!(store.num_pages(), 16);
        assert_eq!(store.page_size(), 128);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    for i in 0..16u32 {
                        store.read_into(PageId(i), &mut buf);
                        assert_eq!(buf[0], i as u8 + 1);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_sentinel() {
        assert!(PageId::INVALID.is_invalid());
        assert!(!PageId(0).is_invalid());
    }
}
