//! The pager: buffer-managed page access with the paper's I/O accounting.

use crate::buffer::BufferManager;
use crate::disk::{DiskStorage, FileDisk, PageId};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Arc;

/// I/O statistics accumulated by a [`Pager`].
///
/// * `logical_reads` counts every page access, cached or not — the paper's
///   CPU-cost proxy ("CPU time roughly models the total number (including
///   repeated) of R-tree node accesses", Section 5).
/// * `read_faults` / `write_faults` count buffer misses — the paper's I/O
///   unit, charged at 10 ms each by the default [`CostModel`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct IoStats {
    /// Page accesses for reading, including buffer hits.
    pub logical_reads: u64,
    /// Read accesses served from the buffer (or the shared
    /// [`BufferPool`](crate::BufferPool)) — always
    /// `logical_reads - read_faults`, maintained explicitly so hit
    /// rates survive [`IoStats::merge`]/[`IoStats::since`] arithmetic
    /// without re-derivation.
    pub read_hits: u64,
    /// Read accesses that missed the buffer and went to the device.
    pub read_faults: u64,
    /// Read accesses that hit a frame only because the background
    /// prefetcher staged it — always a subset of `read_hits` (the
    /// hit/fault split is unaffected; this isolates how much of the hit
    /// rate the prefetch schedule bought). Only store-backed reads can
    /// produce prefetch hits; resident-snapshot runs keep this at 0.
    pub prefetch_hits: u64,
    /// Page accesses for writing, including buffer hits.
    pub logical_writes: u64,
    /// Write accesses that had to fetch the page from the device first.
    pub write_faults: u64,
}

impl IoStats {
    /// Total buffer misses (read + write).
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Total logical accesses (read + write).
    pub fn accesses(&self) -> u64 {
        self.logical_reads + self.logical_writes
    }

    /// Fraction of read accesses served without a fault, in `[0, 1]`
    /// (`0` before any read). The observability headline of the shared
    /// buffer pool: parallel runs should hold this near the sequential
    /// figure instead of collapsing toward zero as workers multiply.
    pub fn read_hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference `self - earlier`, for measuring a phase.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            read_hits: self.read_hits - earlier.read_hits,
            read_faults: self.read_faults - earlier.read_faults,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            logical_writes: self.logical_writes - earlier.logical_writes,
            write_faults: self.write_faults - earlier.write_faults,
        }
    }

    /// Component-wise sum — aggregates per-worker counters into the
    /// totals the paper reports for a whole join.
    pub fn merge(&mut self, other: IoStats) {
        self.logical_reads += other.logical_reads;
        self.read_hits += other.read_hits;
        self.read_faults += other.read_faults;
        self.prefetch_hits += other.prefetch_hits;
        self.logical_writes += other.logical_writes;
        self.write_faults += other.write_faults;
    }
}

/// Converts [`IoStats`] into simulated I/O time.
///
/// The paper charges 10 ms per page fault ("a typical value", citing
/// Silberschatz et al.); experiments report `faults × ms_per_fault` as I/O
/// time next to measured CPU time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Milliseconds charged per page fault.
    pub ms_per_fault: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { ms_per_fault: 10.0 }
    }
}

impl CostModel {
    /// Simulated I/O time in seconds for the given stats.
    pub fn io_seconds(&self, stats: &IoStats) -> f64 {
        stats.faults() as f64 * self.ms_per_fault / 1000.0
    }
}

/// Buffer-managed access to a [`DiskStorage`], with I/O accounting.
///
/// Both R-trees of a join live in **one** pager so they share the single
/// LRU buffer, exactly as in the paper ("the default size of the memory
/// buffer is 1% of the sum of both tree sizes").
pub struct Pager {
    disk: Box<dyn DiskStorage>,
    buffer: BufferManager,
    stats: IoStats,
    /// Last snapshot taken, reused while no write/allocation has
    /// invalidated it — repeated parallel joins over unmodified trees
    /// must not each pay an O(database) copy.
    snapshot_cache: Option<crate::PageSnapshot>,
    /// The shared buffer pool parallel runs account through, sized to
    /// this pager's buffer capacity and kept **warm across runs** (the
    /// whole point of the shared-pool design). Resized **in place** when
    /// the capacity changes (outstanding worker handles must see the
    /// new budget, not keep accounting against a dead pool); emptied —
    /// but not replaced — by [`Pager::clear_buffer`].
    pool_cache: Option<crate::BufferPool>,
    /// Path of the on-disk page file, once [`Pager::spill_to`] or
    /// [`Pager::attach_store`] made this pager disk-native.
    store_path: Option<PathBuf>,
    /// Cached read-only store over `store_path`, reopened lazily after
    /// any write or allocation (which may grow or change the file).
    store_cache: Option<Arc<crate::FilePageStore>>,
    /// `true` when this pager's own device *is* the page file
    /// ([`Pager::spill_to`]); `false` when the file is externally
    /// maintained ([`Pager::attach_store`]). Only an owned store may be
    /// re-versioned by [`Pager::begin_epoch`].
    store_owned: bool,
    /// Base path epoch-versioned page files derive from — the path the
    /// first [`Pager::spill_to`]/[`Pager::attach_store`] named, stable
    /// while [`Pager::begin_epoch`] retargets `store_path` to
    /// `<base>.e<N>` files.
    store_base: Option<PathBuf>,
    /// Dataset version counter: bumped by [`Pager::begin_epoch`] before
    /// a mutation batch, so snapshot and pool keys taken under the old
    /// epoch stay isolated from pages rewritten under the new one.
    epoch: u64,
}

impl Pager {
    /// Creates a pager over `disk` with a buffer of `buffer_pages` pages.
    pub fn new<D: DiskStorage + 'static>(disk: D, buffer_pages: usize) -> Self {
        let page_size = disk.page_size();
        Pager {
            disk: Box::new(disk),
            buffer: BufferManager::new(page_size, buffer_pages),
            stats: IoStats::default(),
            snapshot_cache: None,
            pool_cache: None,
            store_path: None,
            store_cache: None,
            store_owned: false,
            store_base: None,
            epoch: 0,
        }
    }

    /// Wraps this pager for shared ownership by several indexes.
    pub fn into_shared(self) -> SharedPager {
        Rc::new(RefCell::new(self))
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// Number of allocated pages on the device.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Allocates a fresh zeroed page.
    pub fn allocate(&mut self) -> PageId {
        self.snapshot_cache = None;
        // The page file grew: a cached read-only store has a stale page
        // count and must be reopened on next use.
        self.store_cache = None;
        self.disk.allocate()
    }

    /// Reads page `id`, faulting it in if absent, and passes its bytes to
    /// `f`.
    pub fn read<T>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> T) -> T {
        self.stats.logical_reads += 1;
        if self.buffer.get(id).is_some() {
            self.stats.read_hits += 1;
        } else {
            self.stats.read_faults += 1;
            let mut staging = vec![0u8; self.disk.page_size()];
            self.disk.read_page(id, &mut staging);
            self.buffer.insert(id).copy_from_slice(&staging);
        }
        f(self
            .buffer
            .get(id)
            .expect("page just inserted must be cached"))
    }

    /// Updates page `id` through `f` and writes it through to the device.
    ///
    /// Write-through keeps the device authoritative, so evictions never
    /// need a dirty-page flush — the join algorithms are read-only and the
    /// paper's measurements exclude index construction anyway.
    pub fn write(&mut self, id: PageId, f: impl FnOnce(&mut [u8])) {
        self.snapshot_cache = None;
        if self.store_path.is_some() {
            // The bytes behind the store change: reopen it on next use
            // and evict any pool frame that may hold the old bytes.
            // Writes only happen during (unmeasured) index builds, so
            // the cost of restarting the pool cold is irrelevant.
            self.store_cache = None;
            if let Some(pool) = &self.pool_cache {
                pool.clear();
            }
        }
        self.stats.logical_writes += 1;
        if self.buffer.get_mut(id).is_none() {
            self.stats.write_faults += 1;
            let mut staging = vec![0u8; self.disk.page_size()];
            self.disk.read_page(id, &mut staging);
            self.buffer.insert(id).copy_from_slice(&staging);
        }
        let bytes = self
            .buffer
            .get_mut(id)
            .expect("page just inserted must be cached");
        f(bytes);
        let snapshot = bytes.to_vec();
        self.disk.write_page(id, &snapshot);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Adds externally accumulated statistics (per-worker counters from
    /// a parallel run) into this pager's totals, so `stats()` reports the
    /// same aggregate figures a sequential run would.
    pub fn absorb(&mut self, delta: IoStats) {
        self.stats.merge(delta);
    }

    /// Captures an immutable, `Arc`-shared copy of every allocated page,
    /// read straight from the device — no buffer pollution, no
    /// statistics. This is the read-only page source the parallel
    /// executor hands to its [`PooledPager`](crate::PooledPager)s; the
    /// write-through discipline of [`Pager::write`] guarantees the device
    /// is current.
    ///
    /// The snapshot is cached: while no write or allocation has gone
    /// through this pager since the last call, the same `Arc` is handed
    /// back, so back-to-back parallel joins over unmodified trees copy
    /// the database once, not once per run. (Mutating the device behind
    /// the pager's back is outside the contract — all index writes go
    /// through [`Pager::write`].)
    pub fn snapshot(&mut self) -> crate::PageSnapshot {
        if let Some(snap) = &self.snapshot_cache {
            return snap.clone();
        }
        let page_size = self.disk.page_size();
        let n = self.disk.num_pages();
        let mut pages = Vec::with_capacity(n as usize);
        for i in 0..n {
            // Read straight into the page's final allocation: one copy
            // per page, not a staging read plus a clone.
            let mut page = vec![0u8; page_size];
            self.disk.read_page(PageId(i), &mut page);
            pages.push(page.into_boxed_slice());
        }
        let snap = crate::PageSnapshot::from_pages(page_size, pages);
        self.snapshot_cache = Some(snap.clone());
        snap
    }

    /// Spills every allocated page to a page file at `path` and switches
    /// this pager's device to that file — from here on the pager is
    /// **disk-native**: sequential reads fault pages in from the file,
    /// write-through keeps the file authoritative, and
    /// [`Pager::page_source`] hands parallel runs a shared read-only
    /// [`FilePageStore`](crate::FilePageStore) over it instead of a
    /// resident snapshot.
    ///
    /// Spilling an **owned** store to the *same* path is a no-op (the
    /// write-through discipline already keeps the file current —
    /// re-copying would truncate the very file the pager is reading
    /// from). Spilling to a new path re-copies and re-targets, and an
    /// *attached* pager asked to spill always copies: it holds current
    /// pages locally but never wrote the file, so when it is promoted
    /// to writer (the previous writer died) it must materialize its own
    /// page space — mutation batches may have made the file stale.
    pub fn spill_to<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        if self.store_owned && self.store_path.as_deref() == Some(path) {
            return Ok(());
        }
        let page_size = self.disk.page_size();
        let mut file = FileDisk::create(path, page_size)?;
        let mut buf = vec![0u8; page_size];
        for i in 0..self.disk.num_pages() {
            let id = PageId(i);
            file.allocate();
            self.disk.read_page(id, &mut buf);
            file.write_page(id, &buf);
        }
        self.disk = Box::new(file);
        self.store_path = Some(path.to_path_buf());
        self.store_cache = None;
        self.store_owned = true;
        self.store_base = Some(path.to_path_buf());
        // The resident copy is now redundant; drop it so the disk-native
        // pager actually runs at file + frames, not file + frames + RAM.
        self.snapshot_cache = None;
        Ok(())
    }

    /// Marks this pager disk-native over an **externally maintained**
    /// page file at `path`, without copying anything. The caller
    /// guarantees the file holds byte-identical pages under the same
    /// page-id space as this pager's own device — the sharded server's
    /// replicas satisfy this by construction: every shard builds the
    /// same indexes in the same order, and shard 0 spills (and
    /// write-through maintains) the one file all replicas then read.
    pub fn attach_store<P: AsRef<Path>>(&mut self, path: P) {
        self.store_path = Some(path.as_ref().to_path_buf());
        self.store_cache = None;
        self.store_owned = false;
        self.store_base = Some(path.as_ref().to_path_buf());
        self.snapshot_cache = None;
    }

    /// Drops an **attached** (non-owned) store, returning reads to this
    /// pager's own device; an owned store (or no store) is untouched and
    /// returns `false`. An attached file is maintained by its writer's
    /// write-through — the moment this pager mutates its *local* pages
    /// (a live-update batch) the file no longer speaks for them, and a
    /// dead writer would leave it stale forever, so updaters detach and
    /// serve resident from their own (current) page space.
    pub fn detach_unowned_store(&mut self) -> bool {
        if self.store_path.is_none() || self.store_owned {
            return false;
        }
        self.store_path = None;
        self.store_cache = None;
        self.store_base = None;
        self.snapshot_cache = None;
        true
    }

    /// Current dataset epoch: `0` until the first
    /// [`Pager::begin_epoch`], then one per mutation batch. Readers that
    /// pin a [`page_source`](Pager::page_source) tag their pool frames
    /// with this value, so frames populated under different epochs never
    /// alias.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Opens a new epoch ahead of a mutation batch: bumps the epoch
    /// counter and invalidates the cached snapshot and read-only store,
    /// so page sources handed out *before* this call keep the old bytes
    /// (resident snapshots are immutable; a disk-native store keeps its
    /// open descriptor) while sources taken *after* the batch see the new
    /// page versions.
    ///
    /// With `version_store` set on a pager whose page file is **owned**
    /// (made disk-native by [`Pager::spill_to`]), the current page space
    /// is first copied to `<base>.e<N>` and the pager retargeted there —
    /// in-place write-through then never touches the file in-flight
    /// readers hold open. The previous epoch's file is unlinked (POSIX
    /// keeps it readable through open descriptors); the original base
    /// file is never removed. Attached (externally maintained) stores
    /// are never versioned — their replication protocol serializes
    /// readers and writers above this layer.
    ///
    /// # Panics
    /// Panics if the versioned page file cannot be written, matching
    /// [`Pager::spill_to`]'s callers.
    pub fn begin_epoch(&mut self, version_store: bool) -> u64 {
        self.epoch += 1;
        self.snapshot_cache = None;
        if self.store_path.is_some() {
            self.store_cache = None;
            if version_store && self.store_owned {
                let base = self
                    .store_base
                    .clone()
                    .expect("owned store always records its base path");
                let mut next = base.clone().into_os_string();
                next.push(format!(".e{}", self.epoch));
                let next = PathBuf::from(next);
                let prev = self.store_path.clone();
                self.spill_to(&next)
                    .unwrap_or_else(|e| panic!("versioning page file to {}: {e}", next.display()));
                // spill_to re-derives the base from its argument; epoch
                // files must keep chaining off the original path.
                self.store_base = Some(base.clone());
                if let Some(prev) = prev {
                    if prev != base {
                        let _ = std::fs::remove_file(prev);
                    }
                }
            }
        }
        self.epoch
    }

    /// Path of the on-disk page file, if this pager is disk-native.
    pub fn store_path(&self) -> Option<&Path> {
        self.store_path.as_deref()
    }

    /// The shared read-only page store parallel runs read through, if
    /// this pager is disk-native (opened lazily, cached until a write
    /// or allocation touches the page space).
    ///
    /// # Panics
    /// Panics if the page file cannot be opened — a disk-native pager
    /// whose file vanished is not a recoverable condition here.
    pub fn page_store(&mut self) -> Option<Arc<crate::FilePageStore>> {
        let path = self.store_path.as_deref()?;
        if let Some(store) = &self.store_cache {
            return Some(Arc::clone(store));
        }
        let store = crate::FilePageStore::open(path, self.disk.page_size())
            .unwrap_or_else(|e| panic!("opening page store {}: {e}", path.display()));
        let store = Arc::new(store);
        self.store_cache = Some(Arc::clone(&store));
        Some(store)
    }

    /// The page source parallel runs should read through: the shared
    /// [`FilePageStore`](crate::FilePageStore) when disk-native, else a
    /// resident [`PageSnapshot`](crate::PageSnapshot).
    pub fn page_source(&mut self) -> crate::PageSource {
        match self.page_store() {
            Some(store) => crate::PageSource::Store(store as Arc<dyn crate::PageStore>),
            None => crate::PageSource::Resident(self.snapshot()),
        }
    }

    /// The shared [`BufferPool`](crate::BufferPool) parallel runs over
    /// this pager account through, sized to the current buffer capacity
    /// — a parallel run competes with the sequential LRU at the **same
    /// total budget**, it does not get `workers ×` the memory.
    ///
    /// Cached like the snapshot: repeated parallel runs (and streaming
    /// waves) over an unmodified pager share one pool and therefore hit
    /// pages earlier runs warmed. [`Pager::set_buffer_capacity`]
    /// resizes the pool in place (the budget changed);
    /// [`Pager::clear_buffer`] empties it in place (a cold start). In
    /// both cases outstanding handles stay live and correct.
    pub fn shared_pool(&mut self) -> crate::BufferPool {
        if let Some(pool) = &self.pool_cache {
            return pool.clone();
        }
        let pool = crate::BufferPool::new(self.buffer.capacity());
        self.pool_cache = Some(pool.clone());
        pool
    }

    /// Zeroes the statistics (e.g. after index construction, before the
    /// measured join phase).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Resizes the LRU buffer (Figure 15 sweeps this). If a shared pool
    /// was handed out it is resized **in place**, so workers holding an
    /// old handle account against the live, re-budgeted pool — not a
    /// detached one that silently kept the stale capacity.
    pub fn set_buffer_capacity(&mut self, pages: usize) {
        self.buffer.set_capacity(pages);
        if let Some(pool) = &self.pool_cache {
            pool.set_capacity(pages);
        }
    }

    /// Current buffer capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// Empties the buffer — and the shared pool, if one was handed out —
    /// for a cold start without touching statistics. Outstanding pool
    /// handles stay valid (the pool is emptied in place, not replaced),
    /// so measured runs restart cold under both execution modes.
    pub fn clear_buffer(&mut self) {
        self.buffer.clear();
        if let Some(pool) = &self.pool_cache {
            pool.clear();
        }
    }
}

/// Shared-ownership handle to a [`Pager`], letting two R-trees (and the
/// join operators walking both) go through one buffer pool.
///
/// This is the *sequential* access path — the paper's cost model counts
/// page faults through one LRU buffer, so `Rc<RefCell<_>>` suffices and
/// no lock is ever contended. Parallel runs never touch it: they go
/// through an [`Arc`-shared snapshot](Pager::snapshot) with per-worker
/// [`PooledPager`](crate::PooledPager)s over the shared
/// [`BufferPool`](crate::BufferPool) instead, and both paths meet in
/// the [`PageAccess`] trait.
pub type SharedPager = Rc<RefCell<Pager>>;

/// Object-safe read access to pages.
///
/// The join drivers are generic over this, so one implementation serves
/// both execution modes: the owning [`SharedPager`] for sequential runs
/// and a per-worker [`PooledPager`](crate::PooledPager) for parallel
/// runs. Every call counts as one logical read (and possibly one fault)
/// in the implementation's statistics.
pub trait PageAccess {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Reads page `id`, counting the access, and hands its bytes to `f`
    /// exactly once.
    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8]));
}

/// Reads a page through a [`PageAccess`] and maps its bytes to a value —
/// the ergonomic (non-object-safe) wrapper over
/// [`PageAccess::with_page`].
pub fn read_page_as<T>(
    pg: &mut (impl PageAccess + ?Sized),
    id: PageId,
    f: impl FnOnce(&[u8]) -> T,
) -> T {
    let mut f = Some(f);
    let mut out = None;
    pg.with_page(id, &mut |bytes| {
        if let Some(f) = f.take() {
            out = Some(f(bytes));
        }
    });
    out.expect("PageAccess::with_page must invoke the callback")
}

impl PageAccess for Pager {
    fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8])) {
        self.read(id, |bytes| f(bytes));
    }
}

impl PageAccess for SharedPager {
    fn page_size(&self) -> usize {
        self.borrow().page_size()
    }

    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8])) {
        self.borrow_mut().read(id, |bytes| f(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{MemDisk, PageStore};

    #[test]
    fn read_faults_then_hits() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.read(a, |_| ());
        p.read(a, |_| ());
        p.read(a, |_| ());
        let s = p.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.read_faults, 1);
    }

    #[test]
    fn write_through_persists_across_eviction() {
        let mut p = Pager::new(MemDisk::new(128), 1);
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, |bytes| bytes[7] = 99);
        p.read(b, |_| ()); // evicts a
        p.read(a, |bytes| assert_eq!(bytes[7], 99)); // must come from disk
        let s = p.stats();
        assert_eq!(s.read_faults, 2);
        // The write path stages the page from the device before mutating,
        // so the first touch of a page via write() is a write fault.
        assert_eq!(s.write_faults, 1);
    }

    #[test]
    fn write_to_uncached_page_counts_write_fault() {
        let mut p = Pager::new(MemDisk::new(128), 1);
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, |bytes| bytes[0] = 1);
        p.write(b, |bytes| bytes[0] = 2); // evicts a
        p.write(a, |bytes| bytes[1] = 3); // a no longer cached -> write fault
        let s = p.stats();
        assert_eq!(s.logical_writes, 3);
        assert_eq!(s.write_faults, 3);
        // Partial update preserved earlier write-through content.
        p.read(a, |bytes| {
            assert_eq!(bytes[0], 1);
            assert_eq!(bytes[1], 3);
        });
    }

    #[test]
    fn stats_since_and_reset() {
        let mut p = Pager::new(MemDisk::new(128), 2);
        let a = p.allocate();
        p.read(a, |_| ());
        let before = p.stats();
        p.read(a, |_| ());
        let delta = p.stats().since(before);
        assert_eq!(delta.logical_reads, 1);
        assert_eq!(delta.read_faults, 0);
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
    }

    #[test]
    fn cost_model_default_is_ten_ms() {
        let stats = IoStats {
            read_faults: 100,
            write_faults: 50,
            ..Default::default()
        };
        assert_eq!(CostModel::default().io_seconds(&stats), 1.5);
    }

    #[test]
    fn buffer_resize_affects_fault_rate() {
        let mut p = Pager::new(MemDisk::new(128), 8);
        let pages: Vec<_> = (0..8).map(|_| p.allocate()).collect();
        // Warm all 8 in an 8-page buffer: 8 faults, then loops are free.
        for _ in 0..3 {
            for &id in &pages {
                p.read(id, |_| ());
            }
        }
        assert_eq!(p.stats().read_faults, 8);
        // Shrink to 4: cyclic scanning now faults every access.
        p.set_buffer_capacity(4);
        p.reset_stats();
        for _ in 0..2 {
            for &id in &pages {
                p.read(id, |_| ());
            }
        }
        assert_eq!(p.stats().read_faults, 16);
    }

    #[test]
    fn clear_buffer_forces_cold_reads() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.read(a, |_| ());
        p.clear_buffer();
        p.read(a, |_| ());
        assert_eq!(p.stats().read_faults, 2);
    }

    #[test]
    fn resize_reaches_workers_holding_an_old_pool_handle() {
        // Regression: set_buffer_capacity used to *replace* the shared
        // pool, so a worker handle taken before the resize kept
        // accounting against a dead pool at the stale budget.
        let mut p = Pager::new(MemDisk::new(128), 8);
        for _ in 0..8 {
            p.allocate();
        }
        let old_handle = p.shared_pool();
        p.set_buffer_capacity(2);
        assert!(
            old_handle.shares_frames(&p.shared_pool()),
            "resize must keep outstanding handles on the live pool"
        );
        assert_eq!(old_handle.capacity(), 2, "old handle sees the new budget");
        // The old handle evicts at the new budget: a cyclic scan of 8
        // pages through ~2 frames cannot accumulate 8 residents.
        for i in 0..8u32 {
            old_handle.access(PageId(i));
        }
        for i in 0..8u32 {
            old_handle.access(PageId(i));
        }
        assert!(
            old_handle.len() <= old_handle.shard_count().max(2),
            "old handle must evict at the resized budget, not the stale one"
        );
    }

    #[test]
    fn spill_to_makes_the_pager_disk_native() {
        let dir = std::env::temp_dir().join(format!("ringjoin-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.rj");

        let mut p = Pager::new(MemDisk::new(128), 2);
        let ids: Vec<_> = (0..6).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id, |b| b[0] = i as u8 + 1);
        }
        assert!(p.page_store().is_none(), "memory-resident before the spill");
        p.spill_to(&path).unwrap();
        assert_eq!(p.store_path(), Some(path.as_path()));

        // Sequential reads now come from the file, faulting under the
        // 2-page buffer, with the same bytes.
        p.clear_buffer();
        p.reset_stats();
        for (i, &id) in ids.iter().enumerate() {
            p.read(id, |b| assert_eq!(b[0], i as u8 + 1));
        }
        assert_eq!(p.stats().read_faults, 6);

        // Parallel runs get a store-backed source over the same file.
        let source = p.page_source();
        assert!(source.is_store());
        let store = source.store().unwrap();
        let mut buf = vec![0u8; 128];
        store.read_into(ids[3], &mut buf);
        assert_eq!(buf[0], 4);

        // Write-through keeps the file authoritative: a later write is
        // visible through a freshly opened store.
        p.write(ids[0], |b| b[0] = 42);
        let store = p.page_store().unwrap();
        store.read_into(ids[0], &mut buf);
        assert_eq!(buf[0], 42);

        // Re-spilling to the same path must not truncate the live file.
        p.spill_to(&path).unwrap();
        p.read(ids[0], |b| assert_eq!(b[0], 42));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn begin_epoch_isolates_pinned_snapshots() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |b| b[0] = 1);
        assert_eq!(p.epoch(), 0);
        let old = p.snapshot();
        assert_eq!(p.begin_epoch(false), 1);
        p.write(a, |b| b[0] = 2);
        let new = p.snapshot();
        assert!(!old.shares_pages(&new), "epoch bump invalidates the cache");
        assert_eq!(old.page(a)[0], 1, "pinned snapshot keeps the old bytes");
        assert_eq!(new.page(a)[0], 2);
    }

    #[test]
    fn begin_epoch_versions_an_owned_store_file() {
        let dir = std::env::temp_dir().join(format!("ringjoin-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("pages.rj");

        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |b| b[0] = 1);
        p.spill_to(&base).unwrap();

        // Pin a reader on epoch 0, then mutate under epoch 1.
        let old_store = p.page_store().unwrap();
        p.begin_epoch(true);
        assert_eq!(p.store_path(), Some(dir.join("pages.rj.e1").as_path()));
        p.write(a, |b| b[0] = 2);

        let mut buf = vec![0u8; 128];
        old_store.read_into(a, &mut buf);
        assert_eq!(buf[0], 1, "pinned store keeps reading the old file");
        let new_store = p.page_store().unwrap();
        new_store.read_into(a, &mut buf);
        assert_eq!(buf[0], 2);
        assert!(base.exists(), "the original spill path is never removed");

        // The next epoch chains off the base name and unlinks the
        // retired intermediate (open descriptors keep it readable).
        p.begin_epoch(true);
        assert_eq!(p.store_path(), Some(dir.join("pages.rj.e2").as_path()));
        assert!(!dir.join("pages.rj.e1").exists());
        old_store.read_into(a, &mut buf);
        assert_eq!(buf[0], 1, "unlinked file stays readable through the pin");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attached_stores_are_never_versioned() {
        let dir = std::env::temp_dir().join(format!("ringjoin-attach-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("pages.rj");

        let mut writer = Pager::new(MemDisk::new(128), 4);
        let a = writer.allocate();
        writer.write(a, |b| b[0] = 7);
        writer.spill_to(&base).unwrap();

        let mut replica = Pager::new(MemDisk::new(128), 4);
        let ra = replica.allocate();
        replica.write(ra, |b| b[0] = 7);
        replica.attach_store(&base);
        replica.begin_epoch(true);
        assert_eq!(
            replica.store_path(),
            Some(base.as_path()),
            "an attached store keeps pointing at the shared file"
        );
        assert_eq!(replica.epoch(), 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allocation_reopens_the_store_with_the_grown_page_space() {
        let dir = std::env::temp_dir().join(format!("ringjoin-grow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.rj");

        let mut p = Pager::new(MemDisk::new(128), 4);
        p.allocate();
        p.spill_to(&path).unwrap();
        assert_eq!(p.page_store().unwrap().num_pages(), 1);
        let b = p.allocate();
        p.write(b, |bytes| bytes[0] = 9);
        let store = p.page_store().unwrap();
        assert_eq!(store.num_pages(), 2, "store reopened after growth");
        let mut buf = vec![0u8; 128];
        store.read_into(b, &mut buf);
        assert_eq!(buf[0], 9);

        std::fs::remove_dir_all(&dir).ok();
    }
}
