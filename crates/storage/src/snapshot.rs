//! Read-only page snapshots — the storage side of the parallel
//! executor.
//!
//! The paper's pager is inherently serial: one LRU buffer, one fault
//! counter, interior mutability on every read. To let join workers run
//! concurrently without a contended lock, the parallel read path splits
//! that design in two: an immutable [`PageSnapshot`] holding the bytes
//! (this module), and per-worker
//! [`PooledPager`](crate::PooledPager) handles accounting hits and
//! faults through the shared, sharded
//! [`BufferPool`](crate::BufferPool). Worker stats are merged back into
//! the owning pager when the run completes.

use crate::disk::{PageId, PageStore};
use std::path::Path;
use std::sync::Arc;

/// An immutable snapshot of every allocated page of a pager.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same page
/// bytes. Reads never fault, never lock and never touch statistics —
/// per-access accounting is the job of the
/// [`PooledPager`](crate::PooledPager) layered on top.
#[derive(Clone)]
pub struct PageSnapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl PageSnapshot {
    pub(crate) fn from_pages(page_size: usize, pages: Vec<Box<[u8]>>) -> Self {
        PageSnapshot {
            inner: Arc::new(SnapshotInner { page_size, pages }),
        }
    }

    /// Loads an entire page file (as written by
    /// [`Pager::spill_to`](crate::Pager::spill_to)) into a resident
    /// snapshot. The memory-hungry counterpart of
    /// [`FilePageStore::open`](crate::FilePageStore::open) — useful when
    /// the dataset fits in RAM and page reads should never fault.
    pub fn open<P: AsRef<Path>>(path: P, page_size: usize) -> std::io::Result<Self> {
        let store = crate::disk::FilePageStore::open(path, page_size)?;
        let mut pages = Vec::with_capacity(store.num_pages() as usize);
        for i in 0..store.num_pages() {
            let mut buf = vec![0u8; page_size].into_boxed_slice();
            store.read_into(PageId(i), &mut buf);
            pages.push(buf);
        }
        Ok(PageSnapshot::from_pages(page_size, pages))
    }

    /// Page size of the snapshotted device.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Number of captured pages.
    pub fn num_pages(&self) -> u32 {
        self.inner.pages.len() as u32
    }

    /// The bytes of page `id`.
    ///
    /// # Panics
    /// Panics if `id` was not allocated when the snapshot was taken.
    #[inline]
    pub fn page(&self, id: PageId) -> &[u8] {
        &self.inner.pages[id.0 as usize]
    }

    /// `true` if both handles share the same underlying page copy (an
    /// `Arc` identity test — cheap, used to verify snapshot caching).
    pub fn shares_pages(&self, other: &PageSnapshot) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A snapshot is a perfectly valid (RAM-resident) [`PageStore`]: reads
/// copy out of the shared page vector. Lets tests and benches exercise
/// the pool's store-backed path without touching the filesystem.
impl PageStore for PageSnapshot {
    fn page_size(&self) -> usize {
        PageSnapshot::page_size(self)
    }

    fn num_pages(&self) -> u32 {
        PageSnapshot::num_pages(self)
    }

    fn read_into(&self, id: PageId, buf: &mut [u8]) {
        buf.copy_from_slice(self.page(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::pager::Pager;

    fn snapshot_with_pages(n: u32) -> PageSnapshot {
        let mut p = Pager::new(MemDisk::new(128), 4);
        for i in 0..n {
            let id = p.allocate();
            p.write(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.snapshot()
    }

    #[test]
    fn snapshot_captures_written_pages() {
        let snap = snapshot_with_pages(3);
        assert_eq!(snap.num_pages(), 3);
        assert_eq!(snap.page_size(), 128);
        for i in 0..3u32 {
            assert_eq!(snap.page(PageId(i))[0], i as u8 + 1);
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |bytes| bytes[0] = 7);
        let snap = p.snapshot();
        p.write(a, |bytes| bytes[0] = 99);
        assert_eq!(snap.page(a)[0], 7, "snapshot must not see later writes");
    }

    #[test]
    fn snapshot_is_cached_until_invalidated() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |b| b[0] = 1);
        let s1 = p.snapshot();
        let s2 = p.snapshot();
        assert!(
            s1.shares_pages(&s2),
            "no writes between snapshots -> same Arc, no re-copy"
        );
        p.write(a, |b| b[0] = 2);
        let s3 = p.snapshot();
        assert!(!s3.shares_pages(&s1), "a write invalidates the cache");
        assert_eq!(s1.page(a)[0], 1, "old handle keeps the old bytes");
        assert_eq!(s3.page(a)[0], 2);
        p.allocate();
        let s4 = p.snapshot();
        assert!(!s4.shares_pages(&s3), "an allocation invalidates too");
        assert_eq!(s4.num_pages(), 2);
    }

    #[test]
    fn snapshots_are_shareable_across_threads() {
        let snap = snapshot_with_pages(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let snap = snap.clone();
                scope.spawn(move || {
                    for i in 0..8u32 {
                        assert_eq!(snap.page(PageId(i))[0], i as u8 + 1);
                    }
                });
            }
        });
    }
}
