//! Read-only page snapshots and per-worker pagers — the storage side of
//! the parallel executor.
//!
//! The paper's pager is inherently serial: one LRU buffer, one fault
//! counter, interior mutability on every read. To let join workers run
//! concurrently without a contended lock, the parallel executor splits
//! that design in two:
//!
//! * [`PageSnapshot`] — an immutable, `Arc`-shared copy of every
//!   allocated page, captured once after the indexes are built
//!   ([`Pager::snapshot`](crate::Pager::snapshot)). After that load it is
//!   lock-free: workers read pages through shared references only.
//! * [`WorkerPager`] — a per-worker view over a snapshot with its **own**
//!   LRU buffer and [`IoStats`], so the paper's buffer-locality model
//!   still applies within each worker and fault accounting needs no
//!   synchronisation. Worker stats are merged back into the owning pager
//!   when the run completes.

use crate::buffer::BufferManager;
use crate::disk::PageId;
use crate::pager::{IoStats, PageAccess};
use std::sync::Arc;

/// An immutable snapshot of every allocated page of a pager.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same page
/// bytes. Reads never fault, never lock and never touch statistics —
/// per-access accounting is the job of the [`WorkerPager`] layered on
/// top.
#[derive(Clone)]
pub struct PageSnapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl PageSnapshot {
    pub(crate) fn from_pages(page_size: usize, pages: Vec<Box<[u8]>>) -> Self {
        PageSnapshot {
            inner: Arc::new(SnapshotInner { page_size, pages }),
        }
    }

    /// Page size of the snapshotted device.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Number of captured pages.
    pub fn num_pages(&self) -> u32 {
        self.inner.pages.len() as u32
    }

    /// The bytes of page `id`.
    ///
    /// # Panics
    /// Panics if `id` was not allocated when the snapshot was taken.
    #[inline]
    pub fn page(&self, id: PageId) -> &[u8] {
        &self.inner.pages[id.0 as usize]
    }

    /// `true` if both handles share the same underlying page copy (an
    /// `Arc` identity test — cheap, used to verify snapshot caching).
    pub fn shares_pages(&self, other: &PageSnapshot) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A single-worker pager: snapshot-backed reads through a private LRU
/// with private [`IoStats`].
///
/// Accounting is semantically identical to
/// [`Pager::read`](crate::Pager::read) — every access is a logical read,
/// LRU misses are read faults — but with no shared mutable state, so any
/// number of workers can run concurrently. Because the snapshot's bytes
/// are immutable and always resident, the LRU here is purely a *recency
/// tracker* for fault accounting: reads are served straight from the
/// shared snapshot, never copied into per-worker frames.
pub struct WorkerPager {
    snapshot: PageSnapshot,
    /// LRU bookkeeping only — constructed with a zero page size, so its
    /// frames hold no bytes and `insert` never copies.
    buffer: BufferManager,
    stats: IoStats,
}

impl WorkerPager {
    /// Creates a worker pager over `snapshot` with a private buffer of
    /// `buffer_pages` pages (clamped to at least 1).
    pub fn new(snapshot: PageSnapshot, buffer_pages: usize) -> Self {
        WorkerPager {
            snapshot,
            buffer: BufferManager::new(0, buffer_pages),
            stats: IoStats::default(),
        }
    }

    /// This worker's accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Capacity of the private buffer in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.buffer.capacity()
    }
}

impl PageAccess for WorkerPager {
    fn page_size(&self) -> usize {
        self.snapshot.page_size()
    }

    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8])) {
        self.stats.logical_reads += 1;
        if self.buffer.get(id).is_none() {
            self.stats.read_faults += 1;
            self.buffer.insert(id);
        }
        // Served straight from the immutable shared snapshot; the LRU
        // above only decided whether this access counts as a fault.
        f(self.snapshot.page(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::pager::{read_page_as, Pager};

    fn snapshot_with_pages(n: u32) -> PageSnapshot {
        let mut p = Pager::new(MemDisk::new(128), 4);
        for i in 0..n {
            let id = p.allocate();
            p.write(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.snapshot()
    }

    #[test]
    fn snapshot_captures_written_pages() {
        let snap = snapshot_with_pages(3);
        assert_eq!(snap.num_pages(), 3);
        assert_eq!(snap.page_size(), 128);
        for i in 0..3u32 {
            assert_eq!(snap.page(PageId(i))[0], i as u8 + 1);
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |bytes| bytes[0] = 7);
        let snap = p.snapshot();
        p.write(a, |bytes| bytes[0] = 99);
        assert_eq!(snap.page(a)[0], 7, "snapshot must not see later writes");
    }

    #[test]
    fn snapshot_is_cached_until_invalidated() {
        let mut p = Pager::new(MemDisk::new(128), 4);
        let a = p.allocate();
        p.write(a, |b| b[0] = 1);
        let s1 = p.snapshot();
        let s2 = p.snapshot();
        assert!(
            s1.shares_pages(&s2),
            "no writes between snapshots -> same Arc, no re-copy"
        );
        p.write(a, |b| b[0] = 2);
        let s3 = p.snapshot();
        assert!(!s3.shares_pages(&s1), "a write invalidates the cache");
        assert_eq!(s1.page(a)[0], 1, "old handle keeps the old bytes");
        assert_eq!(s3.page(a)[0], 2);
        p.allocate();
        let s4 = p.snapshot();
        assert!(!s4.shares_pages(&s3), "an allocation invalidates too");
        assert_eq!(s4.num_pages(), 2);
    }

    #[test]
    fn worker_pager_counts_like_the_real_pager() {
        let snap = snapshot_with_pages(3);
        let mut w = WorkerPager::new(snap, 2);
        // Two distinct pages fault, repeats hit.
        read_page_as(&mut w, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut w, PageId(1), |b| assert_eq!(b[0], 2));
        read_page_as(&mut w, PageId(0), |_| ());
        // Third page evicts the LRU (page 1); re-reading it faults again.
        read_page_as(&mut w, PageId(2), |_| ());
        read_page_as(&mut w, PageId(1), |_| ());
        let s = w.stats();
        assert_eq!(s.logical_reads, 5);
        assert_eq!(s.read_faults, 4);
        assert_eq!(s.logical_writes, 0);
    }

    #[test]
    fn worker_pagers_share_one_snapshot_across_threads() {
        let snap = snapshot_with_pages(8);
        let totals: Vec<IoStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    scope.spawn(move || {
                        let mut w = WorkerPager::new(snap, 2);
                        for i in 0..8u32 {
                            read_page_as(&mut w, PageId(i), |b| {
                                assert_eq!(b[0], i as u8 + 1);
                            });
                        }
                        w.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for s in totals {
            assert_eq!(s.logical_reads, 8);
            assert_eq!(s.read_faults, 8, "2-page buffer on an 8-page scan");
        }
    }
}
