//! Durable write-ahead mutation log: an append-only, segmented record
//! log with per-record checksums and torn-tail-tolerant recovery.
//!
//! The serving layer's replay log (LOAD batches plus mutation batches,
//! in application order) lives in coordinator memory; this module is
//! what makes the *coordinator* restartable. Records are opaque byte
//! payloads framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! appended to numbered segment files (`wal-00000000.log`,
//! `wal-00000001.log`, ...) inside one directory. [`Wal::append`]
//! writes a frame, [`Wal::sync`] makes it durable (the caller places
//! the fsync *before* acting on the record — log-durably-before-
//! fan-out), and [`Wal::abort_last`] truncates the most recent append
//! when the action it covered was abandoned.
//!
//! Recovery ([`Wal::open`]) replays the **longest valid prefix**: it
//! scans segments in order, stops at the first frame whose length
//! prefix is truncated, whose payload is cut short, or whose CRC does
//! not match, physically truncates the log there, and discards any
//! later segments. A torn tail — the half-written frame a crash left
//! behind — is silently dropped; recovery never panics and never
//! loops, whatever bytes are on disk.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Frame header size: 4-byte length prefix + 4-byte CRC32.
const HEADER: usize = 8;

/// Upper bound on one record's payload. A length prefix beyond this is
/// treated as corruption (the torn-tail rule), not an allocation
/// request — recovery must never trust a hostile or garbage length.
pub const MAX_RECORD_BYTES: usize = 256 * 1024 * 1024;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`. Hand-rolled
/// so the storage crate stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Decodes one segment's bytes into `(payloads, valid_len)`: the longest
/// valid record prefix and the byte offset it ends at. Everything past
/// `valid_len` — a truncated header, a cut-short payload, a CRC
/// mismatch, a zero or absurd length — is a torn tail to be discarded.
/// Total and panic-free for arbitrary input.
///
/// Zero-length payloads are rejected deliberately: `crc32(&[]) == 0`,
/// so a run of zero bytes (a preallocated or torn region) would
/// otherwise decode as an endless train of valid empty records.
pub fn decode_segment(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= HEADER {
        let len = u32::from_le_bytes(
            bytes[offset..offset + 4]
                .try_into()
                .expect("slice is 4 bytes"),
        ) as usize;
        let crc = u32::from_le_bytes(
            bytes[offset + 4..offset + 8]
                .try_into()
                .expect("slice is 4 bytes"),
        );
        if len == 0 || len > MAX_RECORD_BYTES || bytes.len() - offset - HEADER < len {
            break;
        }
        let payload = &bytes[offset + HEADER..offset + HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload.to_vec());
        offset += HEADER + len;
    }
    (payloads, offset)
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.log")
}

/// Parses a segment file name back to its index; `None` for foreign
/// files, which recovery ignores.
fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Fsyncs a directory so entry creation/removal is durable. Best-effort
/// on platforms where directories cannot be opened as files.
fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

/// A durable, segmented write-ahead log of opaque record payloads. See
/// the module docs for the frame format and the recovery contract.
///
/// Appends are single-writer by design: the serving layer drives the
/// log under its catalog write lock, so `Wal` takes `&mut self` and
/// keeps no internal locking.
pub struct Wal {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    /// Valid bytes in the current segment (frames only — recovery
    /// truncated any tail past this before handing the log over).
    segment_len: u64,
    segment_bytes: u64,
    records: u64,
    bytes: u64,
    /// Pre-append snapshot `(segment_len, records, bytes)` of the most
    /// recent [`Wal::append`], for [`Wal::abort_last`].
    last_append: Option<(u64, u64, u64)>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("segment_index", &self.segment_index)
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Wal {
    /// Opens (creating if needed) the log directory, recovers the
    /// longest valid record prefix, physically truncates any torn tail
    /// (and removes segments past the corruption point), and returns
    /// the recovered payloads together with a `Wal` positioned to
    /// append after them. Never panics on corrupt input — a bad tail
    /// costs the records past it, nothing else.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Vec<Vec<u8>>, Wal)> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Wal::open`] with an explicit segment rotation threshold
    /// (records themselves are never split across segments; a segment
    /// holding at least one record may exceed the threshold by one
    /// frame).
    pub fn open_with_segment_bytes(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> io::Result<(Vec<Vec<u8>>, Wal)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|entry| segment_index(entry.ok()?.file_name().to_str()?))
            .collect();
        segments.sort_unstable();

        let mut payloads = Vec::new();
        let mut records = 0u64;
        let mut bytes = 0u64;
        let mut live: Option<(u64, u64)> = None; // (segment index, valid len)
        let mut truncated_at: Option<usize> = None;
        for (pos, &index) in segments.iter().enumerate() {
            let path = dir.join(segment_name(index));
            let mut raw = Vec::new();
            File::open(&path)?.read_to_end(&mut raw)?;
            let (mut decoded, valid_len) = decode_segment(&raw);
            records += decoded.len() as u64;
            bytes += valid_len as u64;
            payloads.append(&mut decoded);
            live = Some((index, valid_len as u64));
            if valid_len < raw.len() {
                // Torn or corrupt tail: cut the segment back to its
                // valid prefix and stop — anything later (including
                // whole later segments) is past the corruption point.
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_len as u64)?;
                truncated_at = Some(pos);
                break;
            }
        }
        if let Some(pos) = truncated_at {
            for &index in &segments[pos + 1..] {
                std::fs::remove_file(dir.join(segment_name(index)))?;
            }
            sync_dir(&dir)?;
        }

        let (segment_index, segment_len) = live.unwrap_or((0, 0));
        let path = dir.join(segment_name(segment_index));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.sync_data()?;
        sync_dir(&dir)?;
        Ok((
            payloads,
            Wal {
                dir,
                file,
                segment_index,
                segment_len,
                segment_bytes,
                records,
                bytes,
                last_append: None,
            },
        ))
    }

    /// Appends one record frame to the log (rotating to a fresh segment
    /// first when the current one is full) and flushes it to the OS.
    /// Durability needs a [`Wal::sync`] — split so callers can place
    /// their crash-consistency point explicitly.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL records must be non-empty (an empty payload is indistinguishable from a zeroed torn tail)",
            ));
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds MAX_RECORD_BYTES ({MAX_RECORD_BYTES})",
                    payload.len()
                ),
            ));
        }
        if self.segment_len >= self.segment_bytes {
            self.rotate()?;
        }
        self.last_append = Some((self.segment_len, self.records, self.bytes));
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.segment_len += frame.len() as u64;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs the current segment: every record appended so far
    /// survives a crash of process *and* machine. The serving layer
    /// calls this before fanning a batch out to any worker.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Undoes the most recent [`Wal::append`] by truncating the segment
    /// back to its pre-append length — the path taken when the batch a
    /// record covered was abandoned (its fan-out failed), so a restart
    /// must not replay it. A no-op if there is nothing to undo.
    pub fn abort_last(&mut self) -> io::Result<()> {
        if let Some((segment_len, records, bytes)) = self.last_append.take() {
            self.file.set_len(segment_len)?;
            self.file.sync_data()?;
            self.segment_len = segment_len;
            self.records = records;
            self.bytes = bytes;
        }
        Ok(())
    }

    /// Lifetime count of valid records in the log (recovered + appended
    /// − aborted).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total valid frame bytes in the log (headers included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Index of the segment currently appended to.
    pub fn segment(&self) -> u64 {
        self.segment_index
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.segment_index += 1;
        let path = self.dir.join(segment_name(self.segment_index));
        self.file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        self.file.sync_data()?;
        sync_dir(&self.dir)?;
        self.segment_len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ringjoin-wal-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values of the IEEE polynomial (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn appended_records_survive_reopen() {
        let dir = scratch("roundtrip");
        let (recovered, mut wal) = Wal::open(&dir).unwrap();
        assert!(recovered.is_empty());
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.records(), 2);
        drop(wal);
        let (recovered, wal) = Wal::open(&dir).unwrap();
        assert_eq!(recovered, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(wal.records(), 2);
        assert_eq!(wal.bytes(), (HEADER + 5 + HEADER + 4) as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reads_them_in_order() {
        let dir = scratch("rotate");
        let (_, mut wal) = Wal::open_with_segment_bytes(&dir, 32).unwrap();
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 20]).collect();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment() >= 4, "32-byte segments must rotate often");
        drop(wal);
        let (recovered, _) = Wal::open_with_segment_bytes(&dir, 32).unwrap();
        assert_eq!(recovered, payloads);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let (_, mut wal) = Wal::open(&dir).unwrap();
        wal.append(b"kept").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Simulate a crash mid-append: half a frame at the tail.
        let seg = dir.join(segment_name(0));
        let mut raw = std::fs::read(&seg).unwrap();
        raw.extend_from_slice(&[200, 0, 0, 0, 1, 2]); // truncated header+payload
        std::fs::write(&seg, &raw).unwrap();
        let (recovered, mut wal) = Wal::open(&dir).unwrap();
        assert_eq!(recovered, vec![b"kept".to_vec()]);
        // The tail is physically gone: a fresh append lands cleanly.
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (recovered, _) = Wal::open(&dir).unwrap();
        assert_eq!(recovered, vec![b"kept".to_vec(), b"after".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_crc_truncates_and_drops_later_segments() {
        let dir = scratch("badcrc");
        let (_, mut wal) = Wal::open_with_segment_bytes(&dir, 16).unwrap();
        wal.append(b"segment-zero-rec").unwrap();
        wal.append(b"segment-one-rec!").unwrap();
        wal.append(b"segment-two-rec!").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.segment(), 2);
        drop(wal);
        // Flip one payload bit in the middle segment.
        let seg1 = dir.join(segment_name(1));
        let mut raw = std::fs::read(&seg1).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&seg1, &raw).unwrap();
        let (recovered, wal) = Wal::open_with_segment_bytes(&dir, 16).unwrap();
        assert_eq!(recovered, vec![b"segment-zero-rec".to_vec()]);
        assert_eq!(wal.records(), 1);
        assert!(
            !dir.join(segment_name(2)).exists(),
            "segments past the corruption point must be removed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abort_last_removes_the_record_from_disk_and_counters() {
        let dir = scratch("abort");
        let (_, mut wal) = Wal::open(&dir).unwrap();
        wal.append(b"kept").unwrap();
        wal.sync().unwrap();
        let (records, bytes) = (wal.records(), wal.bytes());
        wal.append(b"abandoned").unwrap();
        wal.sync().unwrap();
        wal.abort_last().unwrap();
        assert_eq!((wal.records(), wal.bytes()), (records, bytes));
        // Aborting twice is a no-op, not a double truncation.
        wal.abort_last().unwrap();
        assert_eq!((wal.records(), wal.bytes()), (records, bytes));
        drop(wal);
        let (recovered, _) = Wal::open(&dir).unwrap();
        assert_eq!(recovered, vec![b"kept".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zeroed_bytes_do_not_decode_as_records() {
        let (payloads, valid) = decode_segment(&[0u8; 64]);
        assert!(payloads.is_empty());
        assert_eq!(valid, 0);
        assert!(Wal::open(scratch("empty")).is_ok());
    }

    #[test]
    fn empty_and_oversized_payloads_are_rejected() {
        let dir = scratch("guards");
        let (_, mut wal) = Wal::open(&dir).unwrap();
        assert!(wal.append(b"").is_err());
        assert_eq!(wal.records(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
