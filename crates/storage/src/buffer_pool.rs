//! A shared, sharded clock-sweep buffer pool — the storage half of the
//! parallel cold-cache fix.
//!
//! The previous per-worker design divided the configured buffer budget
//! into `workers` private LRUs that each started cold and never shared
//! hot pages: at high thread counts every worker
//! re-faults the inner tree's upper levels, and measured `read_faults`
//! degenerate to `logical_reads`. The [`BufferPool`] replaces that with
//! **one** cache all workers hit:
//!
//! * a **fixed page-frame arena** split into `N` lock-striped shards,
//!   keyed by page id (`id % N`), so concurrent workers rarely contend
//!   on the same lock;
//! * **clock-sweep (second chance) eviction** per shard — an `O(1)`
//!   amortised approximation of LRU whose bookkeeping is a single
//!   referenced bit, cheap enough to sit on the hot path of every page
//!   access;
//! * **atomic hit/fault counters** for pool-level observability (the
//!   per-worker [`IoStats`] of each [`PooledPager`] remain the unit the
//!   executor merges back into the owning pager).
//!
//! The pool serves two residency regimes through one arena:
//!
//! * **Resident** ([`PageSource::Resident`]): bytes live in an immutable
//!   [`PageSnapshot`] and the frames track *recency only* — a fault
//!   means "this access would have gone to the device under the
//!   configured budget". This is the in-memory mode every benchmark
//!   baseline was recorded under, and its accounting is unchanged.
//! * **Store-backed** ([`PageSource::Store`]): the frames *own the page
//!   bytes*. A miss reads the page from the [`PageStore`] into the
//!   frame chosen by the clock sweep; a hit serves the frame's bytes
//!   directly. Readers pin a frame's bytes by cloning the `Arc<[u8]>`
//!   under the stripe lock — eviction merely swaps the frame's `Arc`,
//!   so an outstanding reader keeps valid bytes without ever holding a
//!   lock across its callback (callbacks re-enter the pool: probe
//!   expansion nests page reads).
//!
//! A background [`Prefetcher`](crate::Prefetcher) can stage store pages
//! into frames ahead of the workers; an access that finds its page
//! resident only because the prefetcher staged it counts as a *prefetch
//! hit* (a subset of hits), surfaced separately in [`IoStats`].

use crate::disk::{PageId, PageStore};
use crate::pager::{IoStats, PageAccess};
use crate::snapshot::PageSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of lock stripes. Sixteen keeps the probability of two
/// workers colliding on one mutex low at the thread counts the executor
/// sweeps (≤ 8) without scattering the arena into uselessly small
/// shards.
pub const DEFAULT_POOL_SHARDS: usize = 16;

/// Frame key: the page id qualified by the dataset epoch it was read
/// under. Mutation batches open a new epoch (see
/// [`Pager::begin_epoch`](crate::Pager::begin_epoch)), so a frame
/// populated from a retired epoch's page bytes can never be served to a
/// reader of the current epoch — and an in-flight reader draining an
/// old snapshot never poisons the new epoch's cache.
type FrameKey = (u64, PageId);

/// One frame of the arena: which page occupies it, the clock's
/// referenced bit, and (in store-backed mode) the page bytes.
struct Frame {
    page: FrameKey,
    referenced: bool,
    /// `Some` when the frame owns the page bytes (store-backed reads);
    /// `None` when the frame tracks recency only (resident snapshots).
    data: Option<Arc<[u8]>>,
    /// Bytes were staged by the prefetcher and not yet claimed by a
    /// reader — the next hit is a *prefetch hit*.
    prefetched: bool,
}

/// One lock stripe: a fixed-capacity frame arena with a clock hand.
struct PoolShard {
    capacity: usize,
    /// Grows lazily up to `capacity`, then frames are only ever reused.
    frames: Vec<Frame>,
    map: HashMap<FrameKey, usize>,
    hand: usize,
}

impl PoolShard {
    fn new(capacity: usize) -> PoolShard {
        PoolShard {
            capacity,
            // Lazy arena: huge capacities (the engine's effectively
            // unbounded default) must not pre-allocate.
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }

    /// Touches `page`; returns `true` on a hit. On a miss the page is
    /// installed (recency-only, no bytes), evicting by clock sweep when
    /// the arena is full.
    fn access(&mut self, page: FrameKey) -> bool {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return true;
        }
        self.install(page, None, false);
        false
    }

    /// Installs `page` (with `data` bytes in store-backed mode),
    /// evicting by clock sweep when the arena is full. If the page is
    /// already framed — a racing reader or the prefetcher got there
    /// first — the existing frame is refreshed in place.
    fn install(&mut self, page: FrameKey, data: Option<Arc<[u8]>>, prefetched: bool) {
        if let Some(&idx) = self.map.get(&page) {
            let frame = &mut self.frames[idx];
            frame.referenced = true;
            if data.is_some() {
                frame.data = data;
                frame.prefetched = prefetched;
            }
            return;
        }
        if self.capacity == 0 {
            // A stripe resized to zero frames caches nothing.
            return;
        }
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page,
                referenced: true,
                data,
                prefetched,
            });
            self.map.insert(page, self.frames.len() - 1);
        } else {
            // Second chance: spin the hand, clearing referenced bits,
            // until a frame that was not touched since the last sweep
            // gives up its slot. Terminates within two laps. Evicting a
            // frame only drops the *pool's* reference to its bytes —
            // readers holding a cloned `Arc` keep reading valid data.
            loop {
                let idx = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                if self.frames[idx].referenced {
                    self.frames[idx].referenced = false;
                } else {
                    let evicted = self.frames[idx].page;
                    self.map.remove(&evicted);
                    self.frames[idx] = Frame {
                        page,
                        referenced: true,
                        data,
                        prefetched,
                    };
                    self.map.insert(page, idx);
                    break;
                }
            }
        }
    }

    /// Resizes the stripe in place; shrinking evicts the tail of the
    /// arena (map entries for surviving frames keep their indices).
    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if self.frames.len() > capacity {
            for frame in self.frames.drain(capacity..) {
                self.map.remove(&frame.page);
            }
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
        }
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

struct PoolInner {
    shards: Vec<Mutex<PoolShard>>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    faults: AtomicU64,
    prefetch_hits: AtomicU64,
}

/// How a store-backed [`BufferPool::load`] was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoolRead {
    /// The page was resident and a reader already claimed it before.
    Hit,
    /// The page was resident *because the prefetcher staged it* — still
    /// a hit, counted separately.
    PrefetchHit,
    /// The page was read from the store into a frame.
    Fault,
}

/// A shared, sharded clock-sweep page cache (see the module docs).
///
/// Cloning is cheap (an `Arc` bump); all clones address the same
/// frames and counters, and the pool is `Send + Sync`, so one pool can
/// back any number of concurrent [`PooledPager`]s — parallel join
/// workers, stream waves, and server shard replicas alike.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool of `capacity` total frames (clamped to at least 1) across
    /// [`DEFAULT_POOL_SHARDS`] lock stripes.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool::with_shards(capacity, DEFAULT_POOL_SHARDS)
    }

    /// A pool of `capacity` total frames across `shards` lock stripes.
    /// The stripe count is clamped so every stripe holds at least one
    /// frame and the *total* arena never exceeds `capacity` — the pool
    /// competes with the per-worker-LRU design at the same budget.
    pub fn with_shards(capacity: usize, shards: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(PoolShard::new(base + usize::from(i < extra))))
            .collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                shards,
                capacity: AtomicUsize::new(capacity),
                hits: AtomicU64::new(0),
                faults: AtomicU64::new(0),
                prefetch_hits: AtomicU64::new(0),
            }),
        }
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Resizes the arena **in place**: every clone of this pool —
    /// including worker handles taken before the resize — sees the new
    /// budget immediately. Shrinking evicts surplus frames; the stripe
    /// count is fixed at construction, so a pool resized below one
    /// frame per stripe keeps one frame in each stripe (the effective
    /// arena never drops below `shard_count()` frames).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        let shards = self.inner.shards.len();
        let base = capacity / shards;
        let extra = capacity % shards;
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let cap = (base + usize::from(i < extra)).max(1);
            shard
                .lock()
                .expect("buffer pool shard poisoned")
                .set_capacity(cap);
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Touches `page`, returning `true` on a hit, and bumps the pool's
    /// atomic counters. This is the whole concurrency surface: one
    /// striped lock acquisition per page access. Epoch-0 shorthand for
    /// [`BufferPool::access_at`].
    pub fn access(&self, page: PageId) -> bool {
        self.access_at(0, page)
    }

    /// [`BufferPool::access`] under an explicit dataset epoch: frames
    /// are keyed `(epoch, page)`, so accesses from readers pinned to
    /// different epochs never alias one another's residency.
    pub fn access_at(&self, epoch: u64, page: PageId) -> bool {
        let shard = (page.0 as usize) % self.inner.shards.len();
        let hit = self.inner.shards[shard]
            .lock()
            .expect("buffer pool shard poisoned")
            .access((epoch, page));
        if hit {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.faults.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Store-backed read of `page`: serves the frame's bytes on a hit,
    /// otherwise reads the page from `store` into a frame chosen by the
    /// clock sweep. The returned `Arc<[u8]>` *is* the pin — the device
    /// read happens with no lock held (callbacks re-enter the pool, and
    /// two racing readers may both fault the same cold page; both
    /// device reads really happened, so both count).
    pub fn load(&self, page: PageId, store: &dyn PageStore) -> (Arc<[u8]>, PoolRead) {
        self.load_at(0, page, store)
    }

    /// [`BufferPool::load`] under an explicit dataset epoch: a frame
    /// holding page bytes faulted from a retired epoch's store is
    /// invisible to readers of any other epoch (and vice versa), which
    /// is what keeps in-flight streams draining an old snapshot from
    /// poisoning — or being poisoned by — the live epoch's cache.
    pub fn load_at(
        &self,
        epoch: u64,
        page: PageId,
        store: &dyn PageStore,
    ) -> (Arc<[u8]>, PoolRead) {
        let shard_idx = (page.0 as usize) % self.inner.shards.len();
        let key = (epoch, page);
        {
            let mut shard = self.inner.shards[shard_idx]
                .lock()
                .expect("buffer pool shard poisoned");
            if let Some(&idx) = shard.map.get(&key) {
                let frame = &mut shard.frames[idx];
                if let Some(bytes) = frame.data.clone() {
                    frame.referenced = true;
                    let prefetched = std::mem::take(&mut frame.prefetched);
                    drop(shard);
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    if prefetched {
                        self.inner.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                        return (bytes, PoolRead::PrefetchHit);
                    }
                    return (bytes, PoolRead::Hit);
                }
            }
        }
        let bytes = read_from_store(store, page);
        self.inner.faults.fetch_add(1, Ordering::Relaxed);
        self.inner.shards[shard_idx]
            .lock()
            .expect("buffer pool shard poisoned")
            .install(key, Some(bytes.clone()), false);
        (bytes, PoolRead::Fault)
    }

    /// Stages `page` from `store` into a frame ahead of the readers.
    /// No-op if the page is already resident with bytes; bumps **no**
    /// hit/fault counter (the prefetcher's own device reads are not
    /// demand I/O — the access that later claims the frame counts as a
    /// prefetch hit instead of a fault).
    pub fn prefetch(&self, page: PageId, store: &dyn PageStore) {
        self.prefetch_at(0, page, store)
    }

    /// [`BufferPool::prefetch`] under an explicit dataset epoch; staged
    /// frames only ever satisfy readers pinned to the same epoch.
    pub fn prefetch_at(&self, epoch: u64, page: PageId, store: &dyn PageStore) {
        let shard_idx = (page.0 as usize) % self.inner.shards.len();
        let key = (epoch, page);
        {
            let shard = self.inner.shards[shard_idx]
                .lock()
                .expect("buffer pool shard poisoned");
            if shard.capacity == 0 {
                return;
            }
            if let Some(&idx) = shard.map.get(&key) {
                if shard.frames[idx].data.is_some() {
                    return;
                }
            }
        }
        let bytes = read_from_store(store, page);
        self.inner.shards[shard_idx]
            .lock()
            .expect("buffer pool shard poisoned")
            .install(key, Some(bytes), true);
    }

    /// Pages currently resident across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("buffer pool shard poisoned").map.len())
            .sum()
    }

    /// `true` if no page is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit counter (all clones, all threads).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lifetime fault counter (all clones, all threads).
    pub fn faults(&self) -> u64 {
        self.inner.faults.load(Ordering::Relaxed)
    }

    /// Lifetime prefetch-hit counter — accesses satisfied by a frame
    /// the prefetcher staged. Always a subset of [`hits`](Self::hits).
    pub fn prefetch_hits(&self) -> u64 {
        self.inner.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Lifetime hit rate in `[0, 1]` (`0` before any access).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.faults();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Evicts every resident page (a cold start between measured runs)
    /// without touching the lifetime counters.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().expect("buffer pool shard poisoned").clear();
        }
    }

    /// `true` if both handles address the same frames and counters.
    pub fn shares_frames(&self, other: &BufferPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Reads one page out of a store into a freshly allocated `Arc<[u8]>`.
fn read_from_store(store: &dyn PageStore, page: PageId) -> Arc<[u8]> {
    let mut buf = vec![0u8; store.page_size()];
    store.read_into(page, &mut buf);
    buf.into()
}

/// Where a [`PooledPager`] gets page bytes from: a fully resident
/// snapshot (the in-memory mode) or a shared [`PageStore`] the pool
/// faults pages out of on demand (the disk-native mode).
///
/// Cloning is cheap in both arms (an `Arc` bump).
#[derive(Clone)]
pub enum PageSource {
    /// All pages resident in RAM; the pool tracks recency only.
    Resident(PageSnapshot),
    /// Pages live in the store; the pool's frames own whatever subset
    /// currently fits the budget.
    Store(Arc<dyn PageStore>),
}

impl PageSource {
    /// Page size of the underlying source.
    pub fn page_size(&self) -> usize {
        match self {
            PageSource::Resident(snap) => snap.page_size(),
            PageSource::Store(store) => store.page_size(),
        }
    }

    /// `true` for the store-backed (disk-native) arm.
    pub fn is_store(&self) -> bool {
        matches!(self, PageSource::Store(_))
    }

    /// The store handle, if this source is store-backed.
    pub fn store(&self) -> Option<&Arc<dyn PageStore>> {
        match self {
            PageSource::Store(store) => Some(store),
            PageSource::Resident(_) => None,
        }
    }
}

impl From<PageSnapshot> for PageSource {
    fn from(snapshot: PageSnapshot) -> PageSource {
        PageSource::Resident(snapshot)
    }
}

impl From<Arc<dyn PageStore>> for PageSource {
    fn from(store: Arc<dyn PageStore>) -> PageSource {
        PageSource::Store(store)
    }
}

/// A worker's handle onto a shared [`BufferPool`]: page reads whose
/// hit/fault accounting goes through the pool, with private
/// [`IoStats`] merged back into the owning pager by the executor's
/// absorb-per-worker aggregation.
///
/// With a [`PageSource::Resident`] source, bytes are always served from
/// this handle's own snapshot and the pool only decides whether the
/// access counts as a hit or a fault — the original accounting-only
/// design, byte-for-byte. With a [`PageSource::Store`] source, the pool
/// is the actual residency layer: a fault reads the page from the
/// store into a frame, a hit serves the frame's bytes. (When several
/// handles over *different* pagers share one pool — the sharded
/// server's replicas — their page-id spaces coincide because the
/// replicas are built identically over one shared page file.)
pub struct PooledPager {
    source: PageSource,
    pool: BufferPool,
    stats: IoStats,
    /// Dataset epoch this handle's source was pinned under; every pool
    /// access is keyed by it (see [`BufferPool::load_at`]).
    epoch: u64,
}

impl PooledPager {
    /// A handle over `source` accounting through `pool` at epoch 0.
    /// Accepts a [`PageSnapshot`] directly (resident mode) or any
    /// [`PageSource`].
    pub fn new(source: impl Into<PageSource>, pool: BufferPool) -> PooledPager {
        PooledPager::versioned(source, pool, 0)
    }

    /// A handle pinned to the dataset `epoch` its source was captured
    /// under: pool frames it populates or hits are keyed `(epoch,
    /// page)`, isolating it from handles over other epochs of the same
    /// page space.
    pub fn versioned(source: impl Into<PageSource>, pool: BufferPool, epoch: u64) -> PooledPager {
        PooledPager {
            source: source.into(),
            pool,
            stats: IoStats::default(),
            epoch,
        }
    }

    /// This handle's accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The shared pool this handle accounts through.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl PageAccess for PooledPager {
    fn page_size(&self) -> usize {
        self.source.page_size()
    }

    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8])) {
        self.stats.logical_reads += 1;
        match &self.source {
            PageSource::Resident(snapshot) => {
                if self.pool.access_at(self.epoch, id) {
                    self.stats.read_hits += 1;
                } else {
                    self.stats.read_faults += 1;
                }
                f(snapshot.page(id));
            }
            PageSource::Store(store) => {
                let (bytes, outcome) = self.pool.load_at(self.epoch, id, store.as_ref());
                match outcome {
                    PoolRead::Hit => self.stats.read_hits += 1,
                    PoolRead::PrefetchHit => {
                        self.stats.read_hits += 1;
                        self.stats.prefetch_hits += 1;
                    }
                    PoolRead::Fault => self.stats.read_faults += 1,
                }
                // No pool lock is held here: `f` may recurse into
                // further page reads (probe expansion does).
                f(&bytes);
            }
        }
    }
}

/// A background thread that stages upcoming pages into a [`BufferPool`]
/// so demand reads find them resident ([`PoolRead::PrefetchHit`]).
///
/// The schedulers drive it: when a worker claims a chunk of leaves, it
/// [`request`](Prefetcher::request)s the *next* chunk's leaf pages, so
/// store I/O overlaps verification. Requests are best-effort — dropping
/// the `Prefetcher` closes the queue and joins the thread, and a
/// request for a page that is already resident is a no-op.
pub struct Prefetcher {
    tx: Option<std::sync::mpsc::Sender<Vec<PageId>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the staging thread over `pool` and `store` at epoch 0.
    pub fn spawn(pool: BufferPool, store: Arc<dyn PageStore>) -> Prefetcher {
        Prefetcher::spawn_versioned(pool, store, 0)
    }

    /// [`Prefetcher::spawn`] pinned to a dataset epoch: staged frames
    /// carry the epoch key, so they satisfy exactly the readers whose
    /// [`PooledPager`]s were pinned under the same epoch.
    pub fn spawn_versioned(pool: BufferPool, store: Arc<dyn PageStore>, epoch: u64) -> Prefetcher {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<PageId>>();
        let handle = std::thread::Builder::new()
            .name("ringjoin-prefetch".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    for id in batch {
                        pool.prefetch_at(epoch, id, store.as_ref());
                    }
                }
            })
            .expect("spawning prefetch thread");
        Prefetcher {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Queues `pages` for staging (FIFO, best-effort).
    pub fn request(&self, pages: Vec<PageId>) {
        if pages.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            // A closed queue (only possible mid-teardown) is fine to
            // ignore: prefetch is an optimization, never correctness.
            let _ = tx.send(pages);
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::pager::{read_page_as, Pager};

    fn snapshot_with_pages(n: u32) -> PageSnapshot {
        let mut p = Pager::new(MemDisk::new(128), 4);
        for i in 0..n {
            let id = p.allocate();
            p.write(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.snapshot()
    }

    #[test]
    fn capacity_is_distributed_not_inflated() {
        let pool = BufferPool::with_shards(10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shard_count(), 4);
        // Tiny capacities shrink the stripe count instead of inflating
        // the arena.
        let tiny = BufferPool::with_shards(3, 16);
        assert_eq!(tiny.capacity(), 3);
        assert_eq!(tiny.shard_count(), 3);
        assert_eq!(BufferPool::with_shards(0, 0).capacity(), 1);
    }

    #[test]
    fn hits_and_faults_count() {
        let pool = BufferPool::new(8);
        assert!(!pool.access(PageId(1)));
        assert!(pool.access(PageId(1)));
        assert!(!pool.access(PageId(2)));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.faults(), 2);
        assert!((pool.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pool.len(), 2);
        pool.clear();
        assert!(pool.is_empty());
        assert!(!pool.access(PageId(1)), "cold after clear");
        assert_eq!(pool.hits(), 1, "clear keeps lifetime counters");
    }

    #[test]
    fn clock_sweep_evicts_unreferenced_first() {
        // One shard so the clock order is observable.
        let pool = BufferPool::with_shards(2, 1);
        pool.access(PageId(0));
        pool.access(PageId(1));
        // Both frames carry fresh referenced bits, so this sweep clears
        // them and falls back to hand order: page 0 is evicted and the
        // survivor (1) is left unreferenced while 2 enters referenced.
        assert!(!pool.access(PageId(2)));
        // Second chance proper: the next eviction takes the
        // unreferenced page 1 and spares the referenced page 2.
        assert!(!pool.access(PageId(3)));
        assert!(pool.access(PageId(2)), "referenced page survived");
        assert!(!pool.access(PageId(1)), "unreferenced page was evicted");
    }

    #[test]
    fn cyclic_scan_over_capacity_faults_forever() {
        let pool = BufferPool::with_shards(4, 1);
        for round in 0..3 {
            for i in 0..8u32 {
                let hit = pool.access(PageId(i));
                if round > 0 {
                    assert!(!hit, "4-frame clock on an 8-page cycle must thrash");
                }
            }
        }
    }

    #[test]
    fn pooled_pager_serves_snapshot_bytes_and_counts() {
        let snap = snapshot_with_pages(3);
        let pool = BufferPool::new(8);
        let mut pg = PooledPager::new(snap, pool.clone());
        read_page_as(&mut pg, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut pg, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut pg, PageId(2), |b| assert_eq!(b[0], 3));
        let s = pg.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_faults, 2);
        assert_eq!(s.logical_reads, s.read_hits + s.read_faults);
        assert_eq!(pool.hits() + pool.faults(), 3);
    }

    #[test]
    fn workers_share_one_warm_pool_across_threads() {
        // The cold-cache fix in miniature: 4 workers scanning the same 8
        // pages through one pool fault 8 times *total*, not 8 per
        // worker (modulo races on the initial touch).
        let snap = snapshot_with_pages(8);
        let pool = BufferPool::new(64);
        let totals: Vec<IoStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    let pool = pool.clone();
                    scope.spawn(move || {
                        let mut pg = PooledPager::new(snap, pool);
                        for i in 0..8u32 {
                            read_page_as(&mut pg, PageId(i), |b| {
                                assert_eq!(b[0], i as u8 + 1);
                            });
                        }
                        pg.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = IoStats::default();
        for s in totals {
            merged.merge(s);
        }
        assert_eq!(merged.logical_reads, 32);
        // At most one fault per (page, racing worker) pair; with any
        // scheduling at all the overwhelming majority of accesses hit.
        assert!(merged.read_faults >= 8);
        assert!(
            merged.read_faults <= 8 * 4,
            "faults cannot exceed one per worker per page"
        );
        assert_eq!(merged.read_hits + merged.read_faults, 32);
        assert_eq!(pool.hits(), merged.read_hits);
        assert_eq!(pool.faults(), merged.read_faults);
    }

    #[test]
    fn clones_share_frames() {
        let a = BufferPool::new(4);
        let b = a.clone();
        assert!(a.shares_frames(&b));
        assert!(!a.shares_frames(&BufferPool::new(4)));
        a.access(PageId(7));
        assert!(b.access(PageId(7)), "clone sees the resident page");
    }

    #[test]
    fn store_backed_load_serves_bytes_and_faults_under_budget() {
        let snap = snapshot_with_pages(8);
        let store: Arc<dyn crate::PageStore> = Arc::new(snap);
        let pool = BufferPool::with_shards(2, 1);
        let mut pg = PooledPager::new(PageSource::Store(Arc::clone(&store)), pool.clone());
        // Cold pass over 8 pages through a 2-frame pool: all faults,
        // but every byte is correct.
        for i in 0..8u32 {
            read_page_as(&mut pg, PageId(i), |b| assert_eq!(b[0], i as u8 + 1));
        }
        let s = pg.stats();
        assert_eq!(s.logical_reads, 8);
        assert_eq!(s.read_faults, 8);
        assert_eq!(s.read_hits, 0);
        // Re-reading the last resident page is a frame hit.
        read_page_as(&mut pg, PageId(7), |b| assert_eq!(b[0], 8));
        assert_eq!(pg.stats().read_hits, 1);
        assert_eq!(pg.stats().prefetch_hits, 0);
        assert_eq!(
            pg.stats().read_hits + pg.stats().read_faults,
            pg.stats().logical_reads
        );
    }

    #[test]
    fn evicted_readers_keep_pinned_bytes() {
        let snap = snapshot_with_pages(4);
        let store: Arc<dyn crate::PageStore> = Arc::new(snap);
        let pool = BufferPool::with_shards(1, 1);
        let (pinned, outcome) = pool.load(PageId(0), store.as_ref());
        assert_eq!(outcome, PoolRead::Fault);
        // Evict page 0 by cycling other pages through the single frame.
        pool.load(PageId(1), store.as_ref());
        pool.load(PageId(2), store.as_ref());
        assert_eq!(pinned[0], 1, "evicted frame's bytes stay valid via the pin");
    }

    #[test]
    fn prefetched_pages_hit_and_count_separately() {
        let snap = snapshot_with_pages(8);
        let store: Arc<dyn crate::PageStore> = Arc::new(snap);
        let pool = BufferPool::new(8);
        for i in 0..4u32 {
            pool.prefetch(PageId(i), store.as_ref());
        }
        assert_eq!(pool.hits() + pool.faults(), 0, "prefetch is not demand I/O");
        let mut pg = PooledPager::new(PageSource::Store(Arc::clone(&store)), pool.clone());
        for i in 0..8u32 {
            read_page_as(&mut pg, PageId(i), |b| assert_eq!(b[0], i as u8 + 1));
        }
        let s = pg.stats();
        assert_eq!(s.prefetch_hits, 4, "staged pages are prefetch hits");
        assert_eq!(s.read_hits, 4, "prefetch hits are a subset of hits");
        assert_eq!(s.read_faults, 4);
        assert_eq!(pool.prefetch_hits(), 4);
        // The flag is consumed: a second read of a staged page is a
        // plain hit.
        read_page_as(&mut pg, PageId(0), |_| {});
        assert_eq!(pg.stats().prefetch_hits, 4);
        assert_eq!(pg.stats().read_hits, 5);
    }

    #[test]
    fn prefetcher_thread_stages_batches() {
        let snap = snapshot_with_pages(8);
        let store: Arc<dyn crate::PageStore> = Arc::new(snap);
        let pool = BufferPool::new(8);
        {
            let prefetcher = Prefetcher::spawn(pool.clone(), Arc::clone(&store));
            prefetcher.request((0..8).map(PageId).collect());
            // Drop joins the thread, so the batch is fully staged below.
        }
        assert_eq!(pool.len(), 8);
        let mut pg = PooledPager::new(PageSource::Store(store), pool);
        for i in 0..8u32 {
            read_page_as(&mut pg, PageId(i), |b| assert_eq!(b[0], i as u8 + 1));
        }
        assert_eq!(pg.stats().prefetch_hits, 8);
        assert_eq!(pg.stats().read_faults, 0);
    }

    #[test]
    fn epochs_partition_frames_and_bytes() {
        // Two "epochs" of the same page id space with different bytes:
        // a reader pinned to epoch 0 and a reader at epoch 1 share one
        // pool without ever serving each other's bytes.
        let old_snap = snapshot_with_pages(4);
        let mut p = Pager::new(MemDisk::new(128), 4);
        for i in 0..4 {
            let id = p.allocate();
            p.write(id, |bytes| bytes[0] = 100 + i as u8);
        }
        let new_snap = p.snapshot();
        let old_store: Arc<dyn crate::PageStore> = Arc::new(old_snap);
        let new_store: Arc<dyn crate::PageStore> = Arc::new(new_snap);

        // Few wide stripes: both epochs of one page share a stripe
        // (striping ignores the epoch), so give each stripe room.
        let pool = BufferPool::with_shards(16, 2);
        let mut old_rd = PooledPager::versioned(PageSource::Store(old_store), pool.clone(), 0);
        let mut new_rd = PooledPager::versioned(PageSource::Store(new_store), pool.clone(), 1);
        for i in 0..4u32 {
            read_page_as(&mut old_rd, PageId(i), |b| assert_eq!(b[0], i as u8 + 1));
            read_page_as(&mut new_rd, PageId(i), |b| assert_eq!(b[0], 100 + i as u8));
        }
        // Same page ids, different epochs: no cross-epoch hits.
        assert_eq!(old_rd.stats().read_faults, 4);
        assert_eq!(new_rd.stats().read_faults, 4);
        assert_eq!(pool.len(), 8, "one frame per (epoch, page)");
        // Re-reads hit within each epoch.
        read_page_as(&mut old_rd, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut new_rd, PageId(0), |b| assert_eq!(b[0], 100));
        assert_eq!(old_rd.stats().read_hits, 1);
        assert_eq!(new_rd.stats().read_hits, 1);
    }

    #[test]
    fn versioned_prefetch_stages_into_its_own_epoch() {
        let snap = snapshot_with_pages(4);
        let store: Arc<dyn crate::PageStore> = Arc::new(snap);
        let pool = BufferPool::with_shards(16, 4);
        {
            let pf = Prefetcher::spawn_versioned(pool.clone(), Arc::clone(&store), 3);
            pf.request((0..4).map(PageId).collect());
        }
        // A reader on a different epoch sees nothing staged...
        let mut other =
            PooledPager::versioned(PageSource::Store(Arc::clone(&store)), pool.clone(), 2);
        read_page_as(&mut other, PageId(0), |_| {});
        assert_eq!(other.stats().read_faults, 1);
        assert_eq!(other.stats().prefetch_hits, 0);
        // ...while the matching epoch takes prefetch hits.
        let mut pinned = PooledPager::versioned(PageSource::Store(store), pool, 3);
        for i in 0..4u32 {
            read_page_as(&mut pinned, PageId(i), |b| assert_eq!(b[0], i as u8 + 1));
        }
        assert_eq!(pinned.stats().prefetch_hits, 4);
        assert_eq!(pinned.stats().read_faults, 0);
    }

    #[test]
    fn set_capacity_resizes_all_clones_in_place() {
        let pool = BufferPool::with_shards(8, 1);
        let clone = pool.clone();
        for i in 0..8u32 {
            pool.access(PageId(i));
        }
        assert_eq!(pool.len(), 8);
        clone.set_capacity(2);
        assert_eq!(pool.capacity(), 2, "resize is visible through every handle");
        assert_eq!(pool.len(), 2, "shrinking evicts surplus frames");
        // The old handle now evicts at the new budget.
        for i in 0..8u32 {
            pool.access(PageId(100 + i));
        }
        assert!(pool.len() <= 2);
        // Growing back raises the arena again.
        clone.set_capacity(8);
        for i in 0..8u32 {
            pool.access(PageId(200 + i));
        }
        assert_eq!(pool.len(), 8);
    }
}
