//! A shared, sharded clock-sweep buffer pool — the storage half of the
//! parallel cold-cache fix.
//!
//! The previous per-worker design divided the configured buffer budget
//! into `workers` private LRUs that each started cold and never shared
//! hot pages: at high thread counts every worker
//! re-faults the inner tree's upper levels, and measured `read_faults`
//! degenerate to `logical_reads`. The [`BufferPool`] replaces that with
//! **one** cache all workers hit:
//!
//! * a **fixed page-frame arena** split into `N` lock-striped shards,
//!   keyed by page id (`id % N`), so concurrent workers rarely contend
//!   on the same lock;
//! * **clock-sweep (second chance) eviction** per shard — an `O(1)`
//!   amortised approximation of LRU whose bookkeeping is a single
//!   referenced bit, cheap enough to sit on the hot path of every page
//!   access;
//! * **atomic hit/fault counters** for pool-level observability (the
//!   per-worker [`IoStats`] of each [`PooledPager`] remain the unit the
//!   executor merges back into the owning pager).
//!
//! Because the parallel read path serves bytes from an immutable,
//! always-resident [`PageSnapshot`], the frames track *residency and
//! recency only* — no bytes are copied on a fault. A fault means "this access would have gone to the device
//! under the configured budget", which keeps the paper's I/O accounting
//! intact while the cache itself is shared and stays warm across
//! workers, waves, runs, and server shard replicas.

use crate::disk::PageId;
use crate::pager::{IoStats, PageAccess};
use crate::snapshot::PageSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of lock stripes. Sixteen keeps the probability of two
/// workers colliding on one mutex low at the thread counts the executor
/// sweeps (≤ 8) without scattering the arena into uselessly small
/// shards.
pub const DEFAULT_POOL_SHARDS: usize = 16;

/// One frame of the arena: which page occupies it plus the clock's
/// referenced bit.
struct Frame {
    page: PageId,
    referenced: bool,
}

/// One lock stripe: a fixed-capacity frame arena with a clock hand.
struct PoolShard {
    capacity: usize,
    /// Grows lazily up to `capacity`, then frames are only ever reused.
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
}

impl PoolShard {
    fn new(capacity: usize) -> PoolShard {
        PoolShard {
            capacity,
            // Lazy arena: huge capacities (the engine's effectively
            // unbounded default) must not pre-allocate.
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }

    /// Touches `page`; returns `true` on a hit. On a miss the page is
    /// installed, evicting by clock sweep when the arena is full.
    fn access(&mut self, page: PageId) -> bool {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return true;
        }
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page,
                referenced: true,
            });
            self.map.insert(page, self.frames.len() - 1);
        } else {
            // Second chance: spin the hand, clearing referenced bits,
            // until a frame that was not touched since the last sweep
            // gives up its slot. Terminates within two laps.
            loop {
                let idx = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                if self.frames[idx].referenced {
                    self.frames[idx].referenced = false;
                } else {
                    let evicted = self.frames[idx].page;
                    self.map.remove(&evicted);
                    self.frames[idx] = Frame {
                        page,
                        referenced: true,
                    };
                    self.map.insert(page, idx);
                    break;
                }
            }
        }
        false
    }

    fn clear(&mut self) {
        self.frames.clear();
        self.map.clear();
        self.hand = 0;
    }
}

struct PoolInner {
    shards: Vec<Mutex<PoolShard>>,
    capacity: usize,
    hits: AtomicU64,
    faults: AtomicU64,
}

/// A shared, sharded clock-sweep page cache (see the module docs).
///
/// Cloning is cheap (an `Arc` bump); all clones address the same
/// frames and counters, and the pool is `Send + Sync`, so one pool can
/// back any number of concurrent [`PooledPager`]s — parallel join
/// workers, stream waves, and server shard replicas alike.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool of `capacity` total frames (clamped to at least 1) across
    /// [`DEFAULT_POOL_SHARDS`] lock stripes.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool::with_shards(capacity, DEFAULT_POOL_SHARDS)
    }

    /// A pool of `capacity` total frames across `shards` lock stripes.
    /// The stripe count is clamped so every stripe holds at least one
    /// frame and the *total* arena never exceeds `capacity` — the pool
    /// competes with the per-worker-LRU design at the same budget.
    pub fn with_shards(capacity: usize, shards: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(PoolShard::new(base + usize::from(i < extra))))
            .collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                shards,
                capacity,
                hits: AtomicU64::new(0),
                faults: AtomicU64::new(0),
            }),
        }
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Touches `page`, returning `true` on a hit, and bumps the pool's
    /// atomic counters. This is the whole concurrency surface: one
    /// striped lock acquisition per page access.
    pub fn access(&self, page: PageId) -> bool {
        let shard = (page.0 as usize) % self.inner.shards.len();
        let hit = self.inner.shards[shard]
            .lock()
            .expect("buffer pool shard poisoned")
            .access(page);
        if hit {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.faults.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Pages currently resident across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().expect("buffer pool shard poisoned").map.len())
            .sum()
    }

    /// `true` if no page is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit counter (all clones, all threads).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lifetime fault counter (all clones, all threads).
    pub fn faults(&self) -> u64 {
        self.inner.faults.load(Ordering::Relaxed)
    }

    /// Lifetime hit rate in `[0, 1]` (`0` before any access).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.faults();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Evicts every resident page (a cold start between measured runs)
    /// without touching the lifetime counters.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().expect("buffer pool shard poisoned").clear();
        }
    }

    /// `true` if both handles address the same frames and counters.
    pub fn shares_frames(&self, other: &BufferPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A worker's handle onto a shared [`BufferPool`]: snapshot-backed reads
/// whose hit/fault accounting goes through the pool, with private
/// [`IoStats`] merged back into the owning pager by the executor's
/// absorb-per-worker aggregation.
///
/// Bytes are always served from this handle's own snapshot; the pool
/// only decides whether the access counts as a hit or a fault. (When
/// several handles over *different* pagers share one pool — the sharded
/// server's replicas — their page-id spaces coincide because the
/// replicas are built identically; unrelated pagers sharing a pool
/// would merely conflate accounting, never bytes.)
pub struct PooledPager {
    snapshot: PageSnapshot,
    pool: BufferPool,
    stats: IoStats,
}

impl PooledPager {
    /// A handle over `snapshot` accounting through `pool`.
    pub fn new(snapshot: PageSnapshot, pool: BufferPool) -> PooledPager {
        PooledPager {
            snapshot,
            pool,
            stats: IoStats::default(),
        }
    }

    /// This handle's accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The shared pool this handle accounts through.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

impl PageAccess for PooledPager {
    fn page_size(&self) -> usize {
        self.snapshot.page_size()
    }

    fn with_page(&mut self, id: PageId, f: &mut dyn FnMut(&[u8])) {
        self.stats.logical_reads += 1;
        if self.pool.access(id) {
            self.stats.read_hits += 1;
        } else {
            self.stats.read_faults += 1;
        }
        f(self.snapshot.page(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::pager::{read_page_as, Pager};

    fn snapshot_with_pages(n: u32) -> PageSnapshot {
        let mut p = Pager::new(MemDisk::new(128), 4);
        for i in 0..n {
            let id = p.allocate();
            p.write(id, |bytes| bytes[0] = i as u8 + 1);
        }
        p.snapshot()
    }

    #[test]
    fn capacity_is_distributed_not_inflated() {
        let pool = BufferPool::with_shards(10, 4);
        assert_eq!(pool.capacity(), 10);
        assert_eq!(pool.shard_count(), 4);
        // Tiny capacities shrink the stripe count instead of inflating
        // the arena.
        let tiny = BufferPool::with_shards(3, 16);
        assert_eq!(tiny.capacity(), 3);
        assert_eq!(tiny.shard_count(), 3);
        assert_eq!(BufferPool::with_shards(0, 0).capacity(), 1);
    }

    #[test]
    fn hits_and_faults_count() {
        let pool = BufferPool::new(8);
        assert!(!pool.access(PageId(1)));
        assert!(pool.access(PageId(1)));
        assert!(!pool.access(PageId(2)));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.faults(), 2);
        assert!((pool.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pool.len(), 2);
        pool.clear();
        assert!(pool.is_empty());
        assert!(!pool.access(PageId(1)), "cold after clear");
        assert_eq!(pool.hits(), 1, "clear keeps lifetime counters");
    }

    #[test]
    fn clock_sweep_evicts_unreferenced_first() {
        // One shard so the clock order is observable.
        let pool = BufferPool::with_shards(2, 1);
        pool.access(PageId(0));
        pool.access(PageId(1));
        // Both frames carry fresh referenced bits, so this sweep clears
        // them and falls back to hand order: page 0 is evicted and the
        // survivor (1) is left unreferenced while 2 enters referenced.
        assert!(!pool.access(PageId(2)));
        // Second chance proper: the next eviction takes the
        // unreferenced page 1 and spares the referenced page 2.
        assert!(!pool.access(PageId(3)));
        assert!(pool.access(PageId(2)), "referenced page survived");
        assert!(!pool.access(PageId(1)), "unreferenced page was evicted");
    }

    #[test]
    fn cyclic_scan_over_capacity_faults_forever() {
        let pool = BufferPool::with_shards(4, 1);
        for round in 0..3 {
            for i in 0..8u32 {
                let hit = pool.access(PageId(i));
                if round > 0 {
                    assert!(!hit, "4-frame clock on an 8-page cycle must thrash");
                }
            }
        }
    }

    #[test]
    fn pooled_pager_serves_snapshot_bytes_and_counts() {
        let snap = snapshot_with_pages(3);
        let pool = BufferPool::new(8);
        let mut pg = PooledPager::new(snap, pool.clone());
        read_page_as(&mut pg, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut pg, PageId(0), |b| assert_eq!(b[0], 1));
        read_page_as(&mut pg, PageId(2), |b| assert_eq!(b[0], 3));
        let s = pg.stats();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.read_faults, 2);
        assert_eq!(s.logical_reads, s.read_hits + s.read_faults);
        assert_eq!(pool.hits() + pool.faults(), 3);
    }

    #[test]
    fn workers_share_one_warm_pool_across_threads() {
        // The cold-cache fix in miniature: 4 workers scanning the same 8
        // pages through one pool fault 8 times *total*, not 8 per
        // worker (modulo races on the initial touch).
        let snap = snapshot_with_pages(8);
        let pool = BufferPool::new(64);
        let totals: Vec<IoStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    let pool = pool.clone();
                    scope.spawn(move || {
                        let mut pg = PooledPager::new(snap, pool);
                        for i in 0..8u32 {
                            read_page_as(&mut pg, PageId(i), |b| {
                                assert_eq!(b[0], i as u8 + 1);
                            });
                        }
                        pg.stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut merged = IoStats::default();
        for s in totals {
            merged.merge(s);
        }
        assert_eq!(merged.logical_reads, 32);
        // At most one fault per (page, racing worker) pair; with any
        // scheduling at all the overwhelming majority of accesses hit.
        assert!(merged.read_faults >= 8);
        assert!(
            merged.read_faults <= 8 * 4,
            "faults cannot exceed one per worker per page"
        );
        assert_eq!(merged.read_hits + merged.read_faults, 32);
        assert_eq!(pool.hits(), merged.read_hits);
        assert_eq!(pool.faults(), merged.read_faults);
    }

    #[test]
    fn clones_share_frames() {
        let a = BufferPool::new(4);
        let b = a.clone();
        assert!(a.shares_frames(&b));
        assert!(!a.shares_frames(&BufferPool::new(4)));
        a.access(PageId(7));
        assert!(b.access(PageId(7)), "clone sees the resident page");
    }
}
