//! Property-based tests for the WAL decoder and recovery path: for any
//! record set and any corruption of the tail bytes — torn tail,
//! bit-flipped CRC or payload, truncated length prefix, empty or zeroed
//! segment — recovery returns the longest valid prefix and never
//! panics, loops, or invents records.

use proptest::prelude::*;
use ringjoin_storage::{crc32, decode_segment, Wal};

/// Encodes `payloads` into one segment's byte image, mirroring the
/// WAL's frame format (`[len u32 LE][crc32 u32 LE][payload]`).
fn encode(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in payloads {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(p).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 0..12)
}

fn scratch(label: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ringjoin-walprop-{label}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed segments decode completely and exactly.
    #[test]
    fn clean_segment_round_trips(recs in payloads()) {
        let raw = encode(&recs);
        let (decoded, valid) = decode_segment(&raw);
        prop_assert_eq!(decoded, recs);
        prop_assert_eq!(valid, raw.len());
    }

    /// Truncating a segment anywhere — mid-header, mid-payload, at a
    /// frame boundary — yields the record prefix that fully fits, and
    /// the valid length never exceeds the cut.
    #[test]
    fn torn_tail_yields_longest_valid_prefix(recs in payloads(), cut_frac in 0.0f64..1.0) {
        let raw = encode(&recs);
        let cut = (raw.len() as f64 * cut_frac) as usize;
        let (decoded, valid) = decode_segment(&raw[..cut]);
        prop_assert!(valid <= cut);
        // Count how many whole frames fit in `cut` bytes.
        let mut fit = 0usize;
        let mut off = 0usize;
        for p in &recs {
            off += 8 + p.len();
            if off > cut {
                break;
            }
            fit += 1;
        }
        prop_assert_eq!(decoded.len(), fit);
        prop_assert_eq!(&decoded[..], &recs[..fit]);
    }

    /// Flipping any single bit truncates the decode at the damaged
    /// frame: everything before it survives byte-identically, the
    /// damaged frame and everything after it is dropped. (CRC32 detects
    /// every single-bit error within a frame, and a flipped length
    /// prefix misaligns the CRC check — decode can only stop.)
    #[test]
    fn bit_flip_truncates_at_the_damaged_frame(recs in payloads(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut raw = encode(&recs);
        prop_assume!(!raw.is_empty());
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= 1 << bit;
        // Which frame did the flip land in? (Frames tile the buffer.)
        let mut damaged = 0usize;
        let mut off = 0usize;
        for p in &recs {
            let end = off + 8 + p.len();
            if pos < end {
                break;
            }
            damaged += 1;
            off = end;
        }
        let (decoded, valid) = decode_segment(&raw);
        prop_assert!(valid <= raw.len());
        prop_assert_eq!(decoded.len(), damaged);
        prop_assert_eq!(&decoded[..], &recs[..damaged]);
    }

    /// Arbitrary garbage — any byte soup, including all-zero runs —
    /// never panics, never loops, and never decodes past its length.
    #[test]
    fn garbage_is_total(noise in proptest::collection::vec(any::<u8>(), 0..200)) {
        let (decoded, valid) = decode_segment(&noise);
        prop_assert!(valid <= noise.len());
        for d in &decoded {
            prop_assert!(!d.is_empty(), "zero-length records must never decode");
        }
    }

    /// End-to-end recovery: write records through the real `Wal`,
    /// corrupt the segment file at an arbitrary position, reopen — the
    /// recovered prefix matches, the tail is physically truncated, and
    /// appending afterwards works.
    #[test]
    fn reopen_after_corruption_recovers_a_prefix(
        recs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..30), 1..8),
        pos_frac in 0.0f64..1.0,
        case in any::<u64>(),
    ) {
        let dir = scratch("reopen", case);
        let (initial, mut wal) = Wal::open(&dir).unwrap();
        assert!(initial.is_empty());
        for p in &recs {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = dir.join("wal-00000000.log");
        let mut raw = std::fs::read(&seg).unwrap();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= 0x40;
        std::fs::write(&seg, &raw).unwrap();
        let (recovered, mut wal) = Wal::open(&dir).unwrap();
        prop_assert!(recovered.len() <= recs.len());
        // The surviving prefix is byte-identical up to the damaged
        // frame (a flip inside frame i can only drop records >= i).
        let (expect, _) = decode_segment(&raw);
        prop_assert_eq!(&recovered, &expect);
        // The log is usable after recovery: append + reopen once more.
        wal.append(b"post-recovery").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (again, _) = Wal::open(&dir).unwrap();
        prop_assert_eq!(again.len(), recovered.len() + 1);
        prop_assert_eq!(again.last().unwrap().as_slice(), b"post-recovery");
        std::fs::remove_dir_all(&dir).ok();
    }
}
