//! Property-based tests for the storage layer: the pager must behave
//! like a plain array of pages regardless of buffer capacity, and fault
//! accounting must obey the LRU inclusion property.

use proptest::prelude::*;
use ringjoin_storage::{DiskStorage, FileDisk, MemDisk, PageId, Pager};

#[derive(Clone, Debug)]
enum Op {
    /// Write `byte` at `offset` of page `page % allocated`.
    Write(u8, u8, u8),
    /// Read page `page % allocated` and check it.
    Read(u8),
    /// Allocate a new page.
    Allocate,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(p, o, b)| Op::Write(p, o, b)),
        3 => any::<u8>().prop_map(Op::Read),
        1 => Just(Op::Allocate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pager is transparent: contents equal a reference model for
    /// any op sequence and any (tiny) buffer capacity.
    #[test]
    fn pager_is_transparent(ops in proptest::collection::vec(op(), 1..120), cap in 1usize..5) {
        const PS: usize = 128;
        let mut pager = Pager::new(MemDisk::new(PS), cap);
        let mut model: Vec<[u8; PS]> = Vec::new();
        let first = pager.allocate();
        prop_assert_eq!(first, PageId(0));
        model.push([0u8; PS]);

        for o in ops {
            match o {
                Op::Allocate => {
                    pager.allocate();
                    model.push([0u8; PS]);
                }
                Op::Write(p, off, b) => {
                    let idx = p as usize % model.len();
                    let off = off as usize % PS;
                    pager.write(PageId(idx as u32), |bytes| bytes[off] = b);
                    model[idx][off] = b;
                }
                Op::Read(p) => {
                    let idx = p as usize % model.len();
                    let expect = model[idx];
                    pager.read(PageId(idx as u32), |bytes| {
                        assert_eq!(bytes, &expect[..], "page {idx} diverged");
                    });
                }
            }
        }
        // Every page equals the model at the end.
        for (i, expect) in model.iter().enumerate() {
            pager.read(PageId(i as u32), |bytes| {
                assert_eq!(bytes, &expect[..]);
            });
        }
    }

    /// LRU inclusion property: for the same access string, a bigger
    /// buffer never faults more.
    #[test]
    fn bigger_buffer_never_faults_more(
        accesses in proptest::collection::vec(0u8..16, 1..300),
        small in 1usize..4,
        extra in 1usize..8,
    ) {
        let run = |cap: usize| {
            let mut pager = Pager::new(MemDisk::new(128), cap);
            for _ in 0..16 {
                pager.allocate();
            }
            pager.reset_stats();
            for &a in &accesses {
                pager.read(PageId(a as u32), |_| ());
            }
            pager.stats().read_faults
        };
        prop_assert!(run(small + extra) <= run(small));
    }

    /// FileDisk and MemDisk are interchangeable bit-for-bit.
    #[test]
    fn file_and_mem_disks_agree(ops in proptest::collection::vec(op(), 1..60)) {
        const PS: usize = 128;
        let dir = ringjoin_testsupport::scratch_dir("storage-props");
        let path = dir.join("disk.bin");

        let mut mem = MemDisk::new(PS);
        let mut file = FileDisk::create(&path, PS).unwrap();
        mem.allocate();
        file.allocate();
        let mut n = 1usize;

        for o in &ops {
            match o {
                Op::Allocate => {
                    mem.allocate();
                    file.allocate();
                    n += 1;
                }
                Op::Write(p, off, b) => {
                    let idx = PageId((*p as usize % n) as u32);
                    let mut buf = vec![0u8; PS];
                    mem.read_page(idx, &mut buf);
                    buf[*off as usize % PS] = *b;
                    mem.write_page(idx, &buf);
                    file.write_page(idx, &buf);
                }
                Op::Read(p) => {
                    let idx = PageId((*p as usize % n) as u32);
                    let mut a = vec![0u8; PS];
                    let mut b = vec![0u8; PS];
                    mem.read_page(idx, &mut a);
                    file.read_page(idx, &mut b);
                    prop_assert_eq!(&a, &b);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
