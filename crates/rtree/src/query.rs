//! Range search and depth-first leaf traversal.

use crate::node::{Item, Node, NodeEntry};
use crate::tree::RTree;
use ringjoin_geom::Rect;
use ringjoin_storage::PageId;

impl RTree {
    /// Returns every item whose point lies inside `window` (closed
    /// boundaries).
    pub fn range(&self, window: Rect) -> Vec<Item> {
        let mut out = Vec::new();
        self.range_into(self.root_page(), window, &mut out);
        out
    }

    fn range_into(&self, page: PageId, window: Rect, out: &mut Vec<Item>) {
        let node = self.read_node(page);
        if node.is_leaf() {
            for e in &node.entries {
                let it = e.item().expect("leaf entry");
                if window.contains_point(it.point) {
                    out.push(it);
                }
            }
            return;
        }
        for e in &node.entries {
            if let NodeEntry::Child { mbr, page } = e {
                if mbr.intersects(window) {
                    self.range_into(*page, window, out);
                }
            }
        }
    }

    /// Visits every leaf node in **depth-first** order, the traversal the
    /// paper prescribes for the outer side of the join (Section 3.4): leaf
    /// nodes that are close in the tree tend to be close in space, so
    /// consecutive filter/verification probes share buffer contents.
    pub fn for_each_leaf_df(&self, mut f: impl FnMut(PageId, &Node)) {
        self.df_rec(self.root_page(), &mut f);
    }

    fn df_rec(&self, page: PageId, f: &mut impl FnMut(PageId, &Node)) {
        let node = self.read_node(page);
        if node.is_leaf() {
            f(page, &node);
            return;
        }
        for e in &node.entries {
            if let NodeEntry::Child { page, .. } = e {
                self.df_rec(*page, f);
            }
        }
    }

    /// Collects every item by depth-first scan (test/diagnostic helper —
    /// costs a full tree traversal).
    pub fn all_items(&self) -> Vec<Item> {
        let mut out = Vec::with_capacity(self.len() as usize);
        self.for_each_leaf_df(|_, node| out.extend(node.items()));
        out
    }
}
