//! The disk-based R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD
//! 1990), the index the paper assumes on both join inputs.

use crate::node::{Item, Node, NodeCodec, NodeEntry};
use ringjoin_geom::Rect;
use ringjoin_storage::{PageId, SharedPager};
use std::collections::VecDeque;

/// Tuning knobs of the R*-tree.
///
/// The defaults follow the original paper: forced reinsertion of the 30%
/// of entries furthest from the node center on the first overflow per
/// level, and a 40% minimum fill (the latter lives in
/// [`NodeCodec::min_fill`]). `forced_reinsert` is exposed so the ablation
/// benchmarks can quantify what tree quality contributes to join cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RTreeConfig {
    /// Perform forced reinsertion on first overflow per level.
    pub forced_reinsert: bool,
    /// Fraction of entries evicted on a forced reinsert (paper value 0.3).
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            forced_reinsert: true,
            reinsert_fraction: 0.3,
        }
    }
}

/// A disk-based R*-tree over [`Item`]s.
///
/// All node accesses go through the [`SharedPager`], so every traversal is
/// measured by the paper's cost model (logical node accesses for CPU, page
/// faults for I/O). Two trees participating in a join share one pager and
/// hence one LRU buffer, as in Section 5 of the paper.
pub struct RTree {
    pager: SharedPager,
    codec: NodeCodec,
    root: PageId,
    height: u16,
    len: u64,
    node_count: u64,
    config: RTreeConfig,
}

/// Result of a recursive insertion step.
enum InsertResult {
    /// Subtree absorbed the entry; its MBR is now this.
    Fit(Rect),
    /// Subtree split: (old node's new MBR, new sibling MBR, sibling page).
    Split(Rect, Rect, PageId),
}

/// Result of a recursive deletion step.
enum RemoveResult {
    NotFound,
    /// Entry removed below; (new subtree MBR, child's entry count).
    Updated(Rect, usize),
}

impl RTree {
    /// Creates an empty tree whose nodes live in `pager`.
    pub fn new(pager: SharedPager) -> Self {
        Self::with_config(pager, RTreeConfig::default())
    }

    /// Creates an empty tree with explicit configuration.
    pub fn with_config(pager: SharedPager, config: RTreeConfig) -> Self {
        let (codec, root) = {
            let mut p = pager.borrow_mut();
            let codec = NodeCodec::new(p.page_size());
            let root = p.allocate();
            (codec, root)
        };
        let tree = RTree {
            pager,
            codec,
            root,
            height: 1,
            len: 0,
            node_count: 1,
            config,
        };
        tree.write_node(root, &Node::empty(0));
        tree
    }

    /// Number of indexed items.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` if no item is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a tree that is a single leaf).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Page id of the root node.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Number of nodes (= disk pages) of the tree; the paper sizes the
    /// join buffer as a percentage of the *sum* of both trees' pages.
    pub fn node_pages(&self) -> u64 {
        self.node_count
    }

    /// The codec (capacities) in force for this tree's page size.
    pub fn codec(&self) -> NodeCodec {
        self.codec
    }

    /// A clone of the shared pager handle.
    pub fn pager(&self) -> SharedPager {
        self.pager.clone()
    }

    /// Reads and decodes the node stored at `page`, going through the
    /// buffer manager (and therefore the I/O accounting).
    pub fn read_node(&self, page: PageId) -> Node {
        self.pager
            .borrow_mut()
            .read(page, |bytes| self.codec.decode(bytes))
    }

    pub(crate) fn write_node(&self, page: PageId, node: &Node) {
        self.pager
            .borrow_mut()
            .write(page, |bytes| self.codec.encode(node, bytes));
    }

    fn allocate_page(&self) -> PageId {
        self.pager.borrow_mut().allocate()
    }

    fn root_level(&self) -> u16 {
        self.height - 1
    }

    // ------------------------------------------------------------------
    // Insertion (R* ChooseSubtree + forced reinsert + topological split)
    // ------------------------------------------------------------------

    /// Inserts an item.
    pub fn insert(&mut self, item: Item) {
        debug_assert!(item.point.is_finite(), "non-finite point {item:?}");
        let mut reinsert_done = vec![false; self.height as usize];
        let mut pending: VecDeque<(NodeEntry, u16)> = VecDeque::new();
        pending.push_back((NodeEntry::Item(item), 0));
        while let Some((entry, level)) = pending.pop_front() {
            self.insert_from_root(entry, level, &mut reinsert_done, &mut pending);
        }
        self.len += 1;
    }

    fn insert_from_root(
        &mut self,
        entry: NodeEntry,
        target_level: u16,
        reinsert_done: &mut Vec<bool>,
        pending: &mut VecDeque<(NodeEntry, u16)>,
    ) {
        let root = self.root;
        let root_level = self.root_level();
        match self.insert_rec(
            root,
            root_level,
            entry,
            target_level,
            reinsert_done,
            pending,
        ) {
            InsertResult::Fit(_) => {}
            InsertResult::Split(r1, r2, sibling) => {
                // Grow the tree: a new root referencing the two halves.
                let new_root_level = self.height;
                let mut new_root = Node::empty(new_root_level);
                new_root.entries.push(NodeEntry::Child {
                    mbr: r1,
                    page: root,
                });
                new_root.entries.push(NodeEntry::Child {
                    mbr: r2,
                    page: sibling,
                });
                let new_root_page = self.allocate_page();
                self.write_node(new_root_page, &new_root);
                self.root = new_root_page;
                self.height += 1;
                self.node_count += 1;
                reinsert_done.push(true); // the fresh root level never reinserts
            }
        }
    }

    fn insert_rec(
        &mut self,
        page: PageId,
        node_level: u16,
        entry: NodeEntry,
        target_level: u16,
        reinsert_done: &mut [bool],
        pending: &mut VecDeque<(NodeEntry, u16)>,
    ) -> InsertResult {
        let mut node = self.read_node(page);
        debug_assert_eq!(node.level, node_level);

        if node_level == target_level {
            node.entries.push(entry);
            if node.entries.len() <= self.codec.capacity(node_level) {
                self.write_node(page, &node);
                return InsertResult::Fit(node.mbr());
            }
            return self.handle_overflow(page, node, reinsert_done, pending);
        }

        let idx = self.choose_subtree(&node, entry.mbr(), node_level, target_level);
        let child_page = node.entries[idx]
            .child_page()
            .expect("branch node entry must have a child");
        match self.insert_rec(
            child_page,
            node_level - 1,
            entry,
            target_level,
            reinsert_done,
            pending,
        ) {
            InsertResult::Fit(child_mbr) => {
                node.entries[idx] = NodeEntry::Child {
                    mbr: child_mbr,
                    page: child_page,
                };
                self.write_node(page, &node);
                InsertResult::Fit(node.mbr())
            }
            InsertResult::Split(r1, r2, sibling) => {
                node.entries[idx] = NodeEntry::Child {
                    mbr: r1,
                    page: child_page,
                };
                node.entries.push(NodeEntry::Child {
                    mbr: r2,
                    page: sibling,
                });
                if node.entries.len() <= self.codec.capacity(node_level) {
                    self.write_node(page, &node);
                    InsertResult::Fit(node.mbr())
                } else {
                    self.handle_overflow(page, node, reinsert_done, pending)
                }
            }
        }
    }

    /// R* ChooseSubtree: overlap-enlargement for the level just above the
    /// target (the "children are leaves" case of the original paper),
    /// area-enlargement higher up; ties broken by area.
    fn choose_subtree(&self, node: &Node, rect: Rect, node_level: u16, target_level: u16) -> usize {
        debug_assert!(!node.entries.is_empty());
        let use_overlap = node_level == target_level + 1;
        let mut best = 0usize;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for (i, e) in node.entries.iter().enumerate() {
            let mbr = e.mbr();
            let enlarged = mbr.union(rect);
            let area_enl = enlarged.area() - mbr.area();
            let key = if use_overlap {
                let mut before = 0.0;
                let mut after = 0.0;
                for (j, other) in node.entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let o = other.mbr();
                    before += mbr.overlap_area(o);
                    after += enlarged.overlap_area(o);
                }
                (after - before, area_enl, mbr.area())
            } else {
                (area_enl, mbr.area(), 0.0)
            };
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// R* OverflowTreatment: forced reinsert once per level per logical
    /// insertion, otherwise split.
    fn handle_overflow(
        &mut self,
        page: PageId,
        mut node: Node,
        reinsert_done: &mut [bool],
        pending: &mut VecDeque<(NodeEntry, u16)>,
    ) -> InsertResult {
        let level = node.level;
        let is_root = page == self.root;
        let may_reinsert = self.config.forced_reinsert
            && !is_root
            && !reinsert_done.get(level as usize).copied().unwrap_or(true);
        if may_reinsert {
            reinsert_done[level as usize] = true;
            let count = node.entries.len();
            let evict =
                ((count as f64 * self.config.reinsert_fraction) as usize).clamp(1, count - 1);
            let center = node.mbr().center();
            // Sort ascending by center distance; the furthest `evict`
            // entries are taken from the tail, then reinserted closest
            // first ("close reinsert").
            node.entries.sort_by(|a, b| {
                a.mbr()
                    .center()
                    .dist_sq(center)
                    .total_cmp(&b.mbr().center().dist_sq(center))
            });
            let removed: Vec<NodeEntry> = node.entries.split_off(count - evict);
            self.write_node(page, &node);
            for e in removed {
                pending.push_back((e, level));
            }
            InsertResult::Fit(node.mbr())
        } else {
            let (group1, group2) = self.split_entries(node.entries, level);
            let sibling_page = self.allocate_page();
            let node1 = Node {
                level,
                entries: group1,
            };
            let node2 = Node {
                level,
                entries: group2,
            };
            self.write_node(page, &node1);
            self.write_node(sibling_page, &node2);
            self.node_count += 1;
            InsertResult::Split(node1.mbr(), node2.mbr(), sibling_page)
        }
    }

    /// The R* split: choose the axis minimising the margin sum over all
    /// legal distributions, then the distribution minimising overlap (ties:
    /// total area).
    fn split_entries(
        &self,
        entries: Vec<NodeEntry>,
        level: u16,
    ) -> (Vec<NodeEntry>, Vec<NodeEntry>) {
        let total = entries.len();
        let m = self.codec.min_fill(level).min(total / 2).max(1);

        // For each axis and each boundary (min/max), sort and evaluate.
        type SortKey = fn(&Rect) -> (f64, f64);
        let sort_keys: [SortKey; 4] = [
            |r| (r.min.x, r.max.x),
            |r| (r.max.x, r.min.x),
            |r| (r.min.y, r.max.y),
            |r| (r.max.y, r.min.y),
        ];

        let mut best_axis = 0usize; // 0 = x, 1 = y
        let mut best_margin = f64::INFINITY;
        for axis in 0..2 {
            let mut margin_sum = 0.0;
            for key in &sort_keys[axis * 2..axis * 2 + 2] {
                let mut sorted = entries.clone();
                sorted.sort_by(|a, b| key(&a.mbr()).partial_cmp(&key(&b.mbr())).unwrap());
                let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
                for k in m..=(total - m) {
                    margin_sum += prefix[k - 1].margin() + suffix[k].margin();
                }
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
            }
        }

        // On the chosen axis pick the best distribution over both sorts.
        let mut best: Option<(f64, f64, Vec<NodeEntry>, usize)> = None;
        for key in &sort_keys[best_axis * 2..best_axis * 2 + 2] {
            let mut sorted = entries.clone();
            sorted.sort_by(|a, b| key(&a.mbr()).partial_cmp(&key(&b.mbr())).unwrap());
            let (prefix, suffix) = prefix_suffix_mbrs(&sorted);
            for k in m..=(total - m) {
                let bb1 = prefix[k - 1];
                let bb2 = suffix[k];
                let overlap = bb1.overlap_area(bb2);
                let area = bb1.area() + bb2.area();
                let better = match &best {
                    None => true,
                    Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
                };
                if better {
                    best = Some((overlap, area, sorted.clone(), k));
                }
            }
        }
        let (_, _, sorted, k) = best.expect("at least one distribution exists");
        let mut group1 = sorted;
        let group2 = group1.split_off(k);
        (group1, group2)
    }

    // ------------------------------------------------------------------
    // Deletion (classical R-tree CondenseTree)
    // ------------------------------------------------------------------

    /// Removes an item (matched by id *and* coordinates). Returns `true`
    /// if it was present.
    ///
    /// Underflowing nodes are dissolved and their entries reinserted
    /// (CondenseTree); the root is collapsed while it is a branch with a
    /// single child.
    pub fn remove(&mut self, item: Item) -> bool {
        let root = self.root;
        let root_level = self.root_level();
        let mut orphans: Vec<(NodeEntry, u16)> = Vec::new();
        let found = match self.remove_rec(root, root_level, item, &mut orphans) {
            RemoveResult::NotFound => false,
            RemoveResult::Updated(..) => true,
        };
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Reinsert orphans (deepest-first so leaf items go last and find a
        // fully repaired upper structure).
        orphans.sort_by_key(|(_, lvl)| std::cmp::Reverse(*lvl));
        for (entry, level) in orphans {
            let mut reinsert_done = vec![false; self.height as usize];
            let mut pending = VecDeque::new();
            pending.push_back((entry, level));
            while let Some((e, lvl)) = pending.pop_front() {
                self.insert_from_root(e, lvl, &mut reinsert_done, &mut pending);
            }
        }
        // Collapse degenerate roots.
        loop {
            let node = self.read_node(self.root);
            if node.is_leaf() || node.entries.len() != 1 {
                break;
            }
            let child = node.entries[0].child_page().expect("branch child");
            self.root = child;
            self.height -= 1;
            self.node_count -= 1;
        }
        true
    }

    fn remove_rec(
        &mut self,
        page: PageId,
        node_level: u16,
        item: Item,
        orphans: &mut Vec<(NodeEntry, u16)>,
    ) -> RemoveResult {
        let mut node = self.read_node(page);
        if node.is_leaf() {
            let pos = node.entries.iter().position(
                |e| matches!(e, NodeEntry::Item(it) if it.id == item.id && it.point == item.point),
            );
            return match pos {
                None => RemoveResult::NotFound,
                Some(i) => {
                    node.entries.remove(i);
                    self.write_node(page, &node);
                    RemoveResult::Updated(node.mbr(), node.entries.len())
                }
            };
        }
        for idx in 0..node.entries.len() {
            let (mbr, child) = match node.entries[idx] {
                NodeEntry::Child { mbr, page } => (mbr, page),
                NodeEntry::Item(_) => unreachable!("branch node holds child entries"),
            };
            if !mbr.contains_point(item.point) {
                continue;
            }
            match self.remove_rec(child, node_level - 1, item, orphans) {
                RemoveResult::NotFound => continue,
                RemoveResult::Updated(child_mbr, child_count) => {
                    let min_fill = self.codec.min_fill(node_level - 1);
                    if child_count < min_fill {
                        // Dissolve the child: orphan its entries.
                        let child_node = self.read_node(child);
                        for e in child_node.entries {
                            orphans.push((e, child_node.level));
                        }
                        node.entries.remove(idx);
                        self.node_count -= 1;
                    } else {
                        node.entries[idx] = NodeEntry::Child {
                            mbr: child_mbr,
                            page: child,
                        };
                    }
                    self.write_node(page, &node);
                    return RemoveResult::Updated(node.mbr(), node.entries.len());
                }
            }
        }
        RemoveResult::NotFound
    }

    // ------------------------------------------------------------------
    // Construction helpers used by bulk loading (crate::bulk)
    // ------------------------------------------------------------------

    pub(crate) fn from_parts(
        pager: SharedPager,
        codec: NodeCodec,
        root: PageId,
        height: u16,
        len: u64,
        node_count: u64,
        config: RTreeConfig,
    ) -> Self {
        RTree {
            pager,
            codec,
            root,
            height,
            len,
            node_count,
            config,
        }
    }

    // ------------------------------------------------------------------
    // Validation (test oracle)
    // ------------------------------------------------------------------

    /// Exhaustively checks the structural invariants — level consistency,
    /// MBR tightness, entry homogeneity, capacity, item/node counts — and
    /// returns the number of items found. Test-oriented: walks the whole
    /// tree.
    ///
    /// Occupancy is only required to be non-zero; STR-packed trees do not
    /// promise the R* 40% minimum fill (their tails are balanced but may
    /// sit below it). Use [`RTree::validate_min_fill`] for trees maintained
    /// purely by insertion/deletion.
    pub fn validate(&self) -> Result<u64, String> {
        self.validate_impl(false)
    }

    /// [`RTree::validate`] plus the R* minimum-fill invariant on every
    /// non-root node.
    pub fn validate_min_fill(&self) -> Result<u64, String> {
        self.validate_impl(true)
    }

    fn validate_impl(&self, check_min_fill: bool) -> Result<u64, String> {
        let root_node = self.read_node(self.root);
        if root_node.level != self.root_level() {
            return Err(format!(
                "root level {} != height-1 {}",
                root_node.level,
                self.root_level()
            ));
        }
        let mut count = 0u64;
        let mut nodes = 0u64;
        self.validate_rec(
            self.root,
            self.root_level(),
            true,
            check_min_fill,
            &mut count,
            &mut nodes,
        )?;
        if count != self.len {
            return Err(format!("len {} but found {count} items", self.len));
        }
        if nodes != self.node_count {
            return Err(format!(
                "node_count {} but found {nodes} nodes",
                self.node_count
            ));
        }
        Ok(count)
    }

    fn validate_rec(
        &self,
        page: PageId,
        expected_level: u16,
        is_root: bool,
        check_min_fill: bool,
        count: &mut u64,
        nodes: &mut u64,
    ) -> Result<Rect, String> {
        *nodes += 1;
        let node = self.read_node(page);
        if node.level != expected_level {
            return Err(format!(
                "node {page:?}: level {} expected {expected_level}",
                node.level
            ));
        }
        let cap = self.codec.capacity(node.level);
        if node.entries.len() > cap {
            return Err(format!("node {page:?}: overflow {}", node.entries.len()));
        }
        if !is_root && node.entries.is_empty() {
            return Err(format!("node {page:?}: empty non-root node"));
        }
        if check_min_fill && !is_root && node.entries.len() < self.codec.min_fill(node.level) {
            return Err(format!(
                "node {page:?}: underflow {} < {}",
                node.entries.len(),
                self.codec.min_fill(node.level)
            ));
        }
        if node.is_leaf() {
            *count += node.entries.len() as u64;
            for e in &node.entries {
                if e.item().is_none() {
                    return Err(format!("leaf {page:?} holds a branch entry"));
                }
            }
            return Ok(node.mbr());
        }
        let mut mbr = Rect::empty();
        for e in &node.entries {
            match e {
                NodeEntry::Item(_) => return Err(format!("branch {page:?} holds an item entry")),
                NodeEntry::Child {
                    mbr: stored,
                    page: child,
                } => {
                    let actual = self.validate_rec(
                        *child,
                        node.level - 1,
                        false,
                        check_min_fill,
                        count,
                        nodes,
                    )?;
                    if actual != *stored {
                        return Err(format!(
                            "node {page:?}: stored child MBR {stored:?} != actual {actual:?}"
                        ));
                    }
                    mbr.expand_rect(actual);
                }
            }
        }
        Ok(mbr)
    }
}

/// Prefix and suffix MBR arrays of a sorted entry slice:
/// `prefix[i]` covers `entries[..=i]`, `suffix[i]` covers `entries[i..]`.
fn prefix_suffix_mbrs(entries: &[NodeEntry]) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::empty();
    for e in entries {
        acc.expand_rect(e.mbr());
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::empty(); n + 1];
    let mut acc = Rect::empty();
    for i in (0..n).rev() {
        acc.expand_rect(entries[i].mbr());
        suffix[i] = acc;
    }
    (prefix, suffix)
}
