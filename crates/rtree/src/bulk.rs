//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building an 800 K-point tree by one-at-a-time R* insertion is possible
//! but slow; STR (Leutenegger et al., ICDE 1997) packs a near-optimal tree
//! in O(n log n). The experiments build their indexes with STR at a 70%
//! fill factor, approximating the average node occupancy of an
//! insertion-built R*-tree so page counts — and therefore buffer sizing and
//! fault behaviour — stay comparable to the paper's setup. Tests cross-check
//! both construction paths against the same query oracles.

use crate::node::{Item, Node, NodeCodec, NodeEntry};
use crate::tree::{RTree, RTreeConfig};
use ringjoin_storage::SharedPager;

/// Default fill factor: fraction of node capacity used per packed node.
pub const DEFAULT_FILL: f64 = 0.7;

/// Bulk loads `items` into a fresh tree using STR with [`DEFAULT_FILL`].
pub fn bulk_load(pager: SharedPager, items: Vec<Item>) -> RTree {
    bulk_load_with(pager, items, DEFAULT_FILL, RTreeConfig::default())
}

/// Bulk loads with an explicit fill factor in `(0, 1]` and tree config
/// (the config matters for later incremental inserts into the loaded
/// tree).
pub fn bulk_load_with(
    pager: SharedPager,
    items: Vec<Item>,
    fill: f64,
    config: RTreeConfig,
) -> RTree {
    assert!(fill > 0.0 && fill <= 1.0, "fill factor must be in (0, 1]");
    let codec = NodeCodec::new(pager.borrow().page_size());

    if items.is_empty() {
        return RTree::with_config(pager, config);
    }

    let len = items.len() as u64;
    let mut node_count = 0u64;

    // Pack level 0.
    let leaf_cap = target_cap(codec.leaf_capacity, fill);
    let mut level_entries = pack_level(
        &pager,
        &codec,
        items.into_iter().map(NodeEntry::Item).collect(),
        0,
        leaf_cap,
        &mut node_count,
    );

    // Pack upper levels until a single node remains.
    let mut level = 1u16;
    while level_entries.len() > 1 {
        let cap = target_cap(codec.branch_capacity, fill);
        level_entries = pack_level(&pager, &codec, level_entries, level, cap, &mut node_count);
        level += 1;
    }

    // The single remaining entry is the root reference.
    let (root, height) = match level_entries.pop().expect("one root entry") {
        NodeEntry::Child { page, .. } => (page, level),
        NodeEntry::Item(_) => unreachable!("pack_level always wraps items into nodes"),
    };

    RTree::from_parts(pager, codec, root, height, len, node_count, config)
}

fn target_cap(capacity: usize, fill: f64) -> usize {
    ((capacity as f64 * fill) as usize).clamp(2, capacity)
}

/// Packs `entries` into nodes of `cap` entries at `level` using STR
/// tiling, returning the parent entries for the next level up.
fn pack_level(
    pager: &SharedPager,
    codec: &NodeCodec,
    mut entries: Vec<NodeEntry>,
    level: u16,
    cap: usize,
    node_count: &mut u64,
) -> Vec<NodeEntry> {
    let n = entries.len();
    let n_pages = n.div_ceil(cap);
    let n_slices = (n_pages as f64).sqrt().ceil() as usize;
    let slice_len = n.div_ceil(n_slices);

    // Tile: sort by x-center, slice vertically, sort each slice by
    // y-center, chunk into nodes.
    entries.sort_by(|a, b| a.mbr().center().x.total_cmp(&b.mbr().center().x));

    let mut parents = Vec::with_capacity(n_pages);
    for slice in entries.chunks_mut(slice_len.max(1)) {
        slice.sort_by(|a, b| a.mbr().center().y.total_cmp(&b.mbr().center().y));
        // Balance chunk sizes within the slice so a tail of one or two
        // entries never becomes its own nearly-empty node.
        let k = slice.len();
        let n_chunks = k.div_ceil(cap);
        let base = k / n_chunks;
        let extra = k % n_chunks;
        let mut start = 0usize;
        for ci in 0..n_chunks {
            let size = base + usize::from(ci < extra);
            let chunk = &slice[start..start + size];
            start += size;
            let node = Node {
                level,
                entries: chunk.to_vec(),
            };
            let page = pager.borrow_mut().allocate();
            pager
                .borrow_mut()
                .write(page, |bytes| codec.encode(&node, bytes));
            *node_count += 1;
            parents.push(NodeEntry::Child {
                mbr: node.mbr(),
                page,
            });
        }
    }
    parents
}
