//! A disk-based R*-tree, the index substrate of the RCJ reproduction.
//!
//! The paper assumes both join inputs are indexed by disk-resident
//! R*-trees ([Beckmann et al., SIGMOD 1990]) with 1 KB pages. This crate
//! implements that index on top of the [`ringjoin_storage`] pager so that
//! every node access is buffer-managed and counted by the paper's cost
//! model:
//!
//! * **Construction** — one-at-a-time R* insertion (ChooseSubtree with
//!   overlap minimisation at the leaf level, margin-driven split-axis
//!   selection, forced reinsertion), plus Sort-Tile-Recursive
//!   [bulk loading](bulk_load) for building the large experimental
//!   datasets quickly.
//! * **Queries** — window [range](RTree::range) search, incremental
//!   [nearest-neighbour](RTree::nearest_iter) ranking (Hjaltason & Samet),
//!   and the [depth-first leaf scan](RTree::for_each_leaf_df) that gives
//!   the join its buffer locality (Section 3.4 of the RCJ paper).
//! * **Maintenance** — deletion with CondenseTree re-insertion.
//!
//! The node layout is an explicit on-page codec (see [`NodeCodec`]); with
//! the paper's 1 KB pages a leaf holds up to 42 points and a branch up to
//! 25 children.
//!
//! # Example
//!
//! ```
//! use ringjoin_rtree::{RTree, Item};
//! use ringjoin_storage::{MemDisk, Pager};
//! use ringjoin_geom::{pt, Rect};
//!
//! let pager = Pager::new(MemDisk::new(1024), 64).into_shared();
//! let mut tree = RTree::new(pager.clone());
//! for i in 0..100 {
//!     tree.insert(Item::new(i, pt((i % 10) as f64, (i / 10) as f64)));
//! }
//! let hits = tree.range(Rect::new(pt(0.0, 0.0), pt(2.0, 2.0)));
//! assert_eq!(hits.len(), 9);
//! assert_eq!(tree.validate().unwrap(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod nn;
mod node;
mod query;
mod tree;

pub use bulk::{bulk_load, bulk_load_with, DEFAULT_FILL};
pub use nn::NearestIter;
pub use node::{Item, Node, NodeCodec, NodeEntry, BRANCH_ENTRY_SIZE, HEADER_SIZE, LEAF_ENTRY_SIZE};
pub use tree::{RTree, RTreeConfig};
