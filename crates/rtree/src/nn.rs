//! Incremental nearest-neighbour search (Hjaltason & Samet, TODS 1999).
//!
//! The INN algorithm is the ranking engine of the paper's filter step
//! (Section 3.1): it yields the points of `P` in ascending distance from a
//! query point, while the caller interleaves half-plane pruning. This
//! module provides the plain iterator used for kNN queries and the kNN
//! join; the RCJ filter embeds its own copy of the traversal because it
//! must prune *heap entries*, not only results.

use crate::node::{Item, NodeEntry};
use crate::tree::RTree;
use ringjoin_geom::Point;
use ringjoin_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An element of the INN priority queue: either a node to expand or an
/// item ready to be reported. Ordered by ascending `key` (squared distance
/// from the query); ties broken by sequence number for determinism.
struct HeapElem {
    key: f64,
    seq: u64,
    target: Target,
}

enum Target {
    Node(PageId),
    Item(Item),
}

impl PartialEq for HeapElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapElem {}
impl PartialOrd for HeapElem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapElem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need min-first.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Iterator yielding `(item, squared distance)` in ascending distance
/// from a query point.
pub struct NearestIter<'a> {
    tree: &'a RTree,
    query: Point,
    heap: BinaryHeap<HeapElem>,
    seq: u64,
}

impl<'a> NearestIter<'a> {
    pub(crate) fn new(tree: &'a RTree, query: Point) -> Self {
        let mut it = NearestIter {
            tree,
            query,
            heap: BinaryHeap::new(),
            seq: 0,
        };
        it.push_node(tree.root_page());
        it
    }

    fn push_node(&mut self, page: PageId) {
        let node = self.tree.read_node(page);
        for e in &node.entries {
            let (key, target) = match e {
                NodeEntry::Item(item) => (self.query.dist_sq(item.point), Target::Item(*item)),
                NodeEntry::Child { mbr, page } => (mbr.mindist_sq(self.query), Target::Node(*page)),
            };
            self.seq += 1;
            self.heap.push(HeapElem {
                key,
                seq: self.seq,
                target,
            });
        }
    }
}

impl Iterator for NearestIter<'_> {
    type Item = (Item, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(elem) = self.heap.pop() {
            match elem.target {
                Target::Item(item) => return Some((item, elem.key)),
                Target::Node(page) => self.push_node(page),
            }
        }
        None
    }
}

impl RTree {
    /// Incremental nearest-neighbour iterator from `query`.
    ///
    /// ```
    /// use ringjoin_rtree::{RTree, Item};
    /// use ringjoin_storage::{MemDisk, Pager};
    /// use ringjoin_geom::pt;
    ///
    /// let pager = Pager::new(MemDisk::new(1024), 32).into_shared();
    /// let mut tree = RTree::new(pager);
    /// for (i, p) in [pt(0.0, 0.0), pt(5.0, 0.0), pt(1.0, 1.0)].iter().enumerate() {
    ///     tree.insert(Item::new(i as u64, *p));
    /// }
    /// let order: Vec<u64> = tree.nearest_iter(pt(0.2, 0.0)).map(|(it, _)| it.id).collect();
    /// assert_eq!(order, vec![0, 2, 1]);
    /// ```
    pub fn nearest_iter(&self, query: Point) -> NearestIter<'_> {
        NearestIter::new(self, query)
    }

    /// The `k` nearest items to `query`, closest first.
    pub fn knn(&self, query: Point, k: usize) -> Vec<Item> {
        self.nearest_iter(query).take(k).map(|(it, _)| it).collect()
    }
}
