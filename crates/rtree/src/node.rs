//! On-page node representation and (de)serialization.
//!
//! A node occupies exactly one disk page. The layout is an explicit
//! little-endian codec rather than a serde derive so that the bytes-per-page
//! arithmetic the paper's experiments depend on (1 KB pages → node fan-out)
//! is auditable:
//!
//! ```text
//! header (8 bytes): level u16 | count u16 | reserved u32
//! leaf entry   (24 bytes): id u64 | x f64 | y f64
//! branch entry (40 bytes): child u32 | pad u32 | min.x f64 | min.y f64
//!                          | max.x f64 | max.y f64
//! ```
//!
//! With the paper's 1024-byte pages this yields a leaf capacity of 42
//! points and a branch capacity of 25 children.

use ringjoin_geom::{Point, Rect};
use ringjoin_storage::PageId;

pub use ringjoin_geom::Item;

/// Size of the fixed node header in bytes.
pub const HEADER_SIZE: usize = 8;
/// Size of a serialized leaf entry ([`Item`]) in bytes.
pub const LEAF_ENTRY_SIZE: usize = 24;
/// Size of a serialized branch entry in bytes.
pub const BRANCH_ENTRY_SIZE: usize = 40;

/// An entry of a node: a data item in leaves, a child reference in
/// branches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeEntry {
    /// Leaf-level entry.
    Item(Item),
    /// Internal-level entry: the MBR of the child subtree and its page.
    Child {
        /// Minimum bounding rectangle of everything below `page`.
        mbr: Rect,
        /// Page id of the child node.
        page: PageId,
    },
}

impl NodeEntry {
    /// The minimum bounding rectangle of the entry (a degenerate rectangle
    /// for items).
    #[inline]
    pub fn mbr(&self) -> Rect {
        match self {
            NodeEntry::Item(it) => Rect::from_point(it.point),
            NodeEntry::Child { mbr, .. } => *mbr,
        }
    }

    /// The child page, if this is a branch entry.
    #[inline]
    pub fn child_page(&self) -> Option<PageId> {
        match self {
            NodeEntry::Item(_) => None,
            NodeEntry::Child { page, .. } => Some(*page),
        }
    }

    /// The item, if this is a leaf entry.
    #[inline]
    pub fn item(&self) -> Option<Item> {
        match self {
            NodeEntry::Item(it) => Some(*it),
            NodeEntry::Child { .. } => None,
        }
    }
}

/// An R-tree node, deserialized from one page.
#[derive(Clone, Debug)]
pub struct Node {
    /// Level of the node: 0 for leaves, `height - 1` for the root.
    pub level: u16,
    /// The entries; homogeneous ([`NodeEntry::Item`] iff `level == 0`).
    pub entries: Vec<NodeEntry>,
}

impl Node {
    /// A fresh empty node at `level`.
    pub fn empty(level: u16) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The MBR of all entries.
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        for e in &self.entries {
            r.expand_rect(e.mbr());
        }
        r
    }

    /// The items of a leaf node.
    ///
    /// # Panics
    /// Panics (in debug builds) if called on a branch node.
    pub fn items(&self) -> impl Iterator<Item = Item> + '_ {
        debug_assert!(self.is_leaf());
        self.entries.iter().filter_map(|e| e.item())
    }
}

/// Page-size-derived node capacities and codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCodec {
    page_size: usize,
    /// Maximum number of items in a leaf node.
    pub leaf_capacity: usize,
    /// Maximum number of children in a branch node.
    pub branch_capacity: usize,
}

impl NodeCodec {
    /// Derives capacities from a page size.
    ///
    /// # Panics
    /// Panics if the page is too small to hold at least two entries of each
    /// kind (an R-tree node must be splittable into two non-empty groups).
    pub fn new(page_size: usize) -> Self {
        let leaf_capacity = (page_size - HEADER_SIZE) / LEAF_ENTRY_SIZE;
        let branch_capacity = (page_size - HEADER_SIZE) / BRANCH_ENTRY_SIZE;
        assert!(
            leaf_capacity >= 2 && branch_capacity >= 2,
            "page size {page_size} too small for an R-tree node"
        );
        NodeCodec {
            page_size,
            leaf_capacity,
            branch_capacity,
        }
    }

    /// Capacity of a node at the given level.
    #[inline]
    pub fn capacity(&self, level: u16) -> usize {
        if level == 0 {
            self.leaf_capacity
        } else {
            self.branch_capacity
        }
    }

    /// Minimum fill of a node at the given level (the R*-tree's 40%).
    #[inline]
    pub fn min_fill(&self, level: u16) -> usize {
        (self.capacity(level) * 2 / 5).max(1)
    }

    /// Serializes `node` into `page` (which must be `page_size` long).
    pub fn encode(&self, node: &Node, page: &mut [u8]) {
        debug_assert_eq!(page.len(), self.page_size);
        debug_assert!(node.entries.len() <= self.capacity(node.level));
        page[0..2].copy_from_slice(&node.level.to_le_bytes());
        page[2..4].copy_from_slice(&(node.entries.len() as u16).to_le_bytes());
        page[4..8].fill(0);
        let mut off = HEADER_SIZE;
        for e in &node.entries {
            match e {
                NodeEntry::Item(it) => {
                    debug_assert!(node.is_leaf());
                    page[off..off + 8].copy_from_slice(&it.id.to_le_bytes());
                    page[off + 8..off + 16].copy_from_slice(&it.point.x.to_le_bytes());
                    page[off + 16..off + 24].copy_from_slice(&it.point.y.to_le_bytes());
                    off += LEAF_ENTRY_SIZE;
                }
                NodeEntry::Child { mbr, page: child } => {
                    debug_assert!(!node.is_leaf());
                    page[off..off + 4].copy_from_slice(&child.0.to_le_bytes());
                    page[off + 4..off + 8].fill(0);
                    page[off + 8..off + 16].copy_from_slice(&mbr.min.x.to_le_bytes());
                    page[off + 16..off + 24].copy_from_slice(&mbr.min.y.to_le_bytes());
                    page[off + 24..off + 32].copy_from_slice(&mbr.max.x.to_le_bytes());
                    page[off + 32..off + 40].copy_from_slice(&mbr.max.y.to_le_bytes());
                    off += BRANCH_ENTRY_SIZE;
                }
            }
        }
    }

    /// Deserializes a node from `page`.
    pub fn decode(&self, page: &[u8]) -> Node {
        debug_assert_eq!(page.len(), self.page_size);
        let level = u16::from_le_bytes([page[0], page[1]]);
        let count = u16::from_le_bytes([page[2], page[3]]) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER_SIZE;
        if level == 0 {
            for _ in 0..count {
                let id = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                let x = f64::from_le_bytes(page[off + 8..off + 16].try_into().unwrap());
                let y = f64::from_le_bytes(page[off + 16..off + 24].try_into().unwrap());
                entries.push(NodeEntry::Item(Item::new(id, Point::new(x, y))));
                off += LEAF_ENTRY_SIZE;
            }
        } else {
            for _ in 0..count {
                let child = u32::from_le_bytes(page[off..off + 4].try_into().unwrap());
                let minx = f64::from_le_bytes(page[off + 8..off + 16].try_into().unwrap());
                let miny = f64::from_le_bytes(page[off + 16..off + 24].try_into().unwrap());
                let maxx = f64::from_le_bytes(page[off + 24..off + 32].try_into().unwrap());
                let maxy = f64::from_le_bytes(page[off + 32..off + 40].try_into().unwrap());
                entries.push(NodeEntry::Child {
                    mbr: Rect {
                        min: Point::new(minx, miny),
                        max: Point::new(maxx, maxy),
                    },
                    page: PageId(child),
                });
                off += BRANCH_ENTRY_SIZE;
            }
        }
        Node { level, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;

    #[test]
    fn capacities_for_1k_pages() {
        let c = NodeCodec::new(1024);
        assert_eq!(c.leaf_capacity, 42);
        assert_eq!(c.branch_capacity, 25);
        assert_eq!(c.min_fill(0), 16);
        assert_eq!(c.min_fill(1), 10);
    }

    #[test]
    fn leaf_roundtrip() {
        let c = NodeCodec::new(1024);
        let mut node = Node::empty(0);
        for i in 0..c.leaf_capacity {
            node.entries.push(NodeEntry::Item(Item::new(
                i as u64 * 7 + 1,
                pt(i as f64 * 1.5, -(i as f64) * 0.25),
            )));
        }
        let mut page = vec![0u8; 1024];
        c.encode(&node, &mut page);
        let back = c.decode(&page);
        assert_eq!(back.level, 0);
        assert_eq!(back.entries, node.entries);
    }

    #[test]
    fn branch_roundtrip() {
        let c = NodeCodec::new(1024);
        let mut node = Node::empty(3);
        for i in 0..c.branch_capacity {
            node.entries.push(NodeEntry::Child {
                mbr: Rect::new(pt(i as f64, 0.0), pt(i as f64 + 2.0, 5.0)),
                page: PageId(i as u32 + 100),
            });
        }
        let mut page = vec![0u8; 1024];
        c.encode(&node, &mut page);
        let back = c.decode(&page);
        assert_eq!(back.level, 3);
        assert_eq!(back.entries, node.entries);
    }

    #[test]
    fn node_mbr_covers_entries() {
        let mut node = Node::empty(0);
        node.entries
            .push(NodeEntry::Item(Item::new(1, pt(1.0, 5.0))));
        node.entries
            .push(NodeEntry::Item(Item::new(2, pt(-2.0, 3.0))));
        let mbr = node.mbr();
        assert_eq!(mbr, Rect::new(pt(-2.0, 3.0), pt(1.0, 5.0)));
    }

    #[test]
    fn empty_node_roundtrip() {
        let c = NodeCodec::new(256);
        let node = Node::empty(0);
        let mut page = vec![0u8; 256];
        c.encode(&node, &mut page);
        let back = c.decode(&page);
        assert!(back.is_leaf());
        assert!(back.entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_page_rejected() {
        NodeCodec::new(64);
    }
}
