//! Oracle tests: the R*-tree must agree with naive scans on every query,
//! for both construction paths (incremental R* insertion and STR bulk
//! loading), across uniform and skewed data, and after deletions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ringjoin_geom::{pt, Point, Rect};
use ringjoin_rtree::{bulk_load, bulk_load_with, Item, RTree, RTreeConfig};
use ringjoin_storage::{MemDisk, Pager, SharedPager};

fn fresh_pager(buffer_pages: usize) -> SharedPager {
    Pager::new(MemDisk::new(1024), buffer_pages).into_shared()
}

fn random_items(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<Item> {
    (0..n)
        .map(|i| Item::new(i as u64, pt(rng.gen_range(lo..hi), rng.gen_range(lo..hi))))
        .collect()
}

fn clustered_items(rng: &mut StdRng, n: usize, clusters: usize) -> Vec<Item> {
    let centers: Vec<Point> = (0..clusters)
        .map(|_| pt(rng.gen_range(0.0..10000.0), rng.gen_range(0.0..10000.0)))
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % clusters];
            // Box-Muller Gaussian offsets.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
            let r = (-2.0 * u1.ln()).sqrt() * 300.0;
            let theta = 2.0 * std::f64::consts::PI * u2;
            Item::new(i as u64, pt(c.x + r * theta.cos(), c.y + r * theta.sin()))
        })
        .collect()
}

fn build_insert(items: &[Item]) -> RTree {
    let mut tree = RTree::new(fresh_pager(256));
    for &it in items {
        tree.insert(it);
    }
    tree
}

fn build_bulk(items: &[Item]) -> RTree {
    bulk_load(fresh_pager(256), items.to_vec())
}

fn naive_range(items: &[Item], w: Rect) -> Vec<u64> {
    let mut ids: Vec<u64> = items
        .iter()
        .filter(|it| w.contains_point(it.point))
        .map(|it| it.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn sorted_ids(items: Vec<Item>) -> Vec<u64> {
    let mut ids: Vec<u64> = items.into_iter().map(|it| it.id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn range_queries_match_naive_both_builds() {
    let mut rng = StdRng::seed_from_u64(42);
    let items = random_items(&mut rng, 3000, 0.0, 10000.0);
    for tree in [build_insert(&items), build_bulk(&items)] {
        assert_eq!(tree.validate().unwrap(), 3000);
        for _ in 0..50 {
            let a = pt(rng.gen_range(0.0..10000.0), rng.gen_range(0.0..10000.0));
            let b = pt(
                a.x + rng.gen_range(0.0..3000.0),
                a.y + rng.gen_range(0.0..3000.0),
            );
            let w = Rect::new(a, b);
            assert_eq!(sorted_ids(tree.range(w)), naive_range(&items, w));
        }
    }
}

#[test]
fn range_on_clustered_data() {
    let mut rng = StdRng::seed_from_u64(7);
    let items = clustered_items(&mut rng, 4000, 5);
    for tree in [build_insert(&items), build_bulk(&items)] {
        assert_eq!(tree.validate().unwrap(), 4000);
        for _ in 0..30 {
            let a = pt(
                rng.gen_range(-500.0..10500.0),
                rng.gen_range(-500.0..10500.0),
            );
            let b = pt(a.x + 1500.0, a.y + 1500.0);
            let w = Rect::new(a, b);
            assert_eq!(sorted_ids(tree.range(w)), naive_range(&items, w));
        }
    }
}

#[test]
fn nearest_iter_yields_ascending_and_complete() {
    let mut rng = StdRng::seed_from_u64(11);
    let items = random_items(&mut rng, 1200, 0.0, 1000.0);
    for tree in [build_insert(&items), build_bulk(&items)] {
        let q = pt(432.0, 567.0);
        let got: Vec<(u64, f64)> = tree.nearest_iter(q).map(|(it, d)| (it.id, d)).collect();
        assert_eq!(got.len(), items.len());
        // Distances non-decreasing.
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Agrees with a naive sort.
        let mut expect: Vec<(u64, f64)> = items
            .iter()
            .map(|it| (it.id, q.dist_sq(it.point)))
            .collect();
        expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut got_sorted = got.clone();
        got_sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for (g, e) in got_sorted.iter().zip(&expect) {
            assert_eq!(g.1, e.1);
        }
    }
}

#[test]
fn knn_matches_naive() {
    let mut rng = StdRng::seed_from_u64(99);
    let items = random_items(&mut rng, 800, 0.0, 100.0);
    let tree = build_insert(&items);
    for k in [1, 5, 17, 100] {
        let q = pt(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
        let got: Vec<f64> = tree
            .knn(q, k)
            .iter()
            .map(|it| q.dist_sq(it.point))
            .collect();
        let mut dists: Vec<f64> = items.iter().map(|it| q.dist_sq(it.point)).collect();
        dists.sort_by(f64::total_cmp);
        assert_eq!(got.len(), k);
        for (g, e) in got.iter().zip(dists.iter()) {
            assert_eq!(g, e);
        }
    }
}

#[test]
fn duplicate_coordinates_are_kept_distinct() {
    let mut tree = RTree::new(fresh_pager(64));
    for i in 0..100 {
        tree.insert(Item::new(i, pt(5.5, 5.5)));
    }
    // A few different ones (at integer coordinates, so they can never
    // collide with the duplicates) to force structure.
    for i in 100..200 {
        tree.insert(Item::new(i, pt((i % 13) as f64, (i % 7) as f64)));
    }
    assert_eq!(tree.validate_min_fill().unwrap(), 200);
    let w = Rect::new(pt(5.5, 5.5), pt(5.5, 5.5));
    assert_eq!(tree.range(w).len(), 100);
}

#[test]
fn deletion_removes_and_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(3);
    let items = random_items(&mut rng, 1500, 0.0, 1000.0);
    let mut tree = build_insert(&items);
    // Remove every third item.
    let mut remaining = Vec::new();
    for (i, &it) in items.iter().enumerate() {
        if i % 3 == 0 {
            assert!(tree.remove(it), "item {i} should be removable");
        } else {
            remaining.push(it);
        }
    }
    assert_eq!(tree.len(), remaining.len() as u64);
    assert_eq!(tree.validate().unwrap(), remaining.len() as u64);
    // Removed items are gone; remaining are present.
    let all = sorted_ids(tree.all_items());
    let expect = sorted_ids(remaining.clone());
    assert_eq!(all, expect);
    // Removing a non-existent item is a no-op.
    assert!(!tree.remove(Item::new(999_999, pt(1.0, 1.0))));
    assert_eq!(tree.validate().unwrap(), remaining.len() as u64);
}

#[test]
fn delete_down_to_empty_and_reuse() {
    let mut rng = StdRng::seed_from_u64(17);
    let items = random_items(&mut rng, 300, 0.0, 100.0);
    let mut tree = build_insert(&items);
    for &it in &items {
        assert!(tree.remove(it));
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    assert_eq!(tree.validate().unwrap(), 0);
    // The tree is still usable.
    for &it in items.iter().take(50) {
        tree.insert(it);
    }
    assert_eq!(tree.validate().unwrap(), 50);
}

#[test]
fn incremental_insert_into_bulk_loaded_tree() {
    let mut rng = StdRng::seed_from_u64(23);
    let initial = random_items(&mut rng, 2000, 0.0, 10000.0);
    let mut tree = bulk_load(fresh_pager(256), initial.clone());
    let extra: Vec<Item> = (0..500)
        .map(|i| {
            Item::new(
                10_000 + i,
                pt(rng.gen_range(0.0..10000.0), rng.gen_range(0.0..10000.0)),
            )
        })
        .collect();
    for &it in &extra {
        tree.insert(it);
    }
    assert_eq!(tree.validate().unwrap(), 2500);
    let all: Vec<Item> = initial.iter().chain(extra.iter()).copied().collect();
    let w = Rect::new(pt(2000.0, 2000.0), pt(8000.0, 8000.0));
    assert_eq!(sorted_ids(tree.range(w)), naive_range(&all, w));
}

#[test]
fn bulk_fill_factor_controls_page_count() {
    let mut rng = StdRng::seed_from_u64(31);
    let items = random_items(&mut rng, 5000, 0.0, 10000.0);
    let dense = bulk_load_with(fresh_pager(256), items.clone(), 1.0, RTreeConfig::default());
    let sparse = bulk_load_with(fresh_pager(256), items.clone(), 0.5, RTreeConfig::default());
    assert!(dense.node_pages() < sparse.node_pages());
    assert_eq!(dense.validate().unwrap(), 5000);
    assert_eq!(sparse.validate().unwrap(), 5000);
}

#[test]
fn without_forced_reinsert_tree_is_still_correct() {
    let mut rng = StdRng::seed_from_u64(37);
    let items = random_items(&mut rng, 2000, 0.0, 1000.0);
    let mut tree = RTree::with_config(
        fresh_pager(256),
        RTreeConfig {
            forced_reinsert: false,
            ..Default::default()
        },
    );
    for &it in &items {
        tree.insert(it);
    }
    assert_eq!(tree.validate().unwrap(), 2000);
    let w = Rect::new(pt(100.0, 100.0), pt(600.0, 400.0));
    assert_eq!(sorted_ids(tree.range(w)), naive_range(&items, w));
}

#[test]
fn empty_and_tiny_trees() {
    let tree = RTree::new(fresh_pager(8));
    assert!(tree.is_empty());
    assert_eq!(tree.range(Rect::new(pt(0.0, 0.0), pt(1.0, 1.0))), vec![]);
    assert_eq!(tree.nearest_iter(pt(0.0, 0.0)).count(), 0);
    assert_eq!(tree.validate().unwrap(), 0);

    let tiny = bulk_load(fresh_pager(8), vec![Item::new(1, pt(3.0, 3.0))]);
    assert_eq!(tiny.len(), 1);
    assert_eq!(tiny.height(), 1);
    assert_eq!(tiny.validate().unwrap(), 1);
    assert_eq!(tiny.knn(pt(0.0, 0.0), 1)[0].id, 1);
}

#[test]
fn df_leaf_scan_visits_every_item_once() {
    let mut rng = StdRng::seed_from_u64(41);
    let items = random_items(&mut rng, 2500, 0.0, 10000.0);
    let tree = build_bulk(&items);
    let mut seen = Vec::new();
    tree.for_each_leaf_df(|_, node| {
        assert!(node.is_leaf());
        seen.extend(node.items().map(|it| it.id));
    });
    seen.sort_unstable();
    assert_eq!(seen, (0..2500u64).collect::<Vec<_>>());
}

#[test]
fn shared_pager_hosts_two_trees() {
    let pager = fresh_pager(128);
    let mut rng = StdRng::seed_from_u64(43);
    let a_items = random_items(&mut rng, 1000, 0.0, 100.0);
    let b_items: Vec<Item> = random_items(&mut rng, 1000, 50.0, 150.0);
    let a = bulk_load(pager.clone(), a_items.clone());
    let b = bulk_load(pager.clone(), b_items.clone());
    assert_eq!(a.validate().unwrap(), 1000);
    assert_eq!(b.validate().unwrap(), 1000);
    let w = Rect::new(pt(60.0, 60.0), pt(90.0, 90.0));
    assert_eq!(sorted_ids(a.range(w)), naive_range(&a_items, w));
    assert_eq!(sorted_ids(b.range(w)), naive_range(&b_items, w));
    // Fault accounting is shared.
    let stats = pager.borrow().stats();
    assert!(stats.logical_reads > 0);
}

#[test]
fn buffer_locality_of_df_scan() {
    // A depth-first scan with a small buffer should fault roughly once per
    // page, not once per access.
    let mut rng = StdRng::seed_from_u64(47);
    let items = random_items(&mut rng, 20_000, 0.0, 10000.0);
    let pager = fresh_pager(16);
    let tree = bulk_load(pager.clone(), items);
    pager.borrow_mut().reset_stats();
    tree.for_each_leaf_df(|_, _| {});
    let s = pager.borrow().stats();
    assert!(
        s.read_faults as f64 <= tree.node_pages() as f64 * 1.05,
        "DF scan should fault at most ~once per page: {} faults for {} pages",
        s.read_faults,
        tree.node_pages()
    );
}
