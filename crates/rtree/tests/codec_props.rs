//! Property tests for the on-page node codec: decode(encode(x)) == x for
//! arbitrary well-formed nodes, at several page sizes.

use proptest::prelude::*;
use ringjoin_geom::{pt, Rect};
use ringjoin_rtree::{Item, Node, NodeCodec, NodeEntry};
use ringjoin_storage::PageId;

fn leaf_node(cap: usize) -> impl Strategy<Value = Node> {
    proptest::collection::vec((any::<u64>(), -1e9..1e9f64, -1e9..1e9f64), 0..=cap).prop_map(
        |entries| Node {
            level: 0,
            entries: entries
                .into_iter()
                .map(|(id, x, y)| NodeEntry::Item(Item::new(id, pt(x, y))))
                .collect(),
        },
    )
}

fn branch_node(cap: usize) -> impl Strategy<Value = Node> {
    (
        1u16..8,
        proptest::collection::vec(
            (
                any::<u32>(),
                -1e9..1e9f64,
                -1e9..1e9f64,
                0.0..1e6f64,
                0.0..1e6f64,
            ),
            0..=cap,
        ),
    )
        .prop_map(|(level, entries)| Node {
            level,
            entries: entries
                .into_iter()
                .map(|(page, x, y, w, h)| NodeEntry::Child {
                    mbr: Rect::new(pt(x, y), pt(x + w, y + h)),
                    page: PageId(page),
                })
                .collect(),
        })
}

proptest! {
    #[test]
    fn leaf_roundtrip_1024(node in leaf_node(NodeCodec::new(1024).leaf_capacity)) {
        let codec = NodeCodec::new(1024);
        let mut page = vec![0u8; 1024];
        codec.encode(&node, &mut page);
        let back = codec.decode(&page);
        prop_assert_eq!(back.level, node.level);
        prop_assert_eq!(back.entries, node.entries);
    }

    #[test]
    fn branch_roundtrip_1024(node in branch_node(NodeCodec::new(1024).branch_capacity)) {
        let codec = NodeCodec::new(1024);
        let mut page = vec![0u8; 1024];
        codec.encode(&node, &mut page);
        let back = codec.decode(&page);
        prop_assert_eq!(back.level, node.level);
        prop_assert_eq!(back.entries, node.entries);
    }

    #[test]
    fn leaf_roundtrip_small_pages(node in leaf_node(NodeCodec::new(256).leaf_capacity)) {
        let codec = NodeCodec::new(256);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page);
        prop_assert_eq!(codec.decode(&page).entries, node.entries);
    }

    /// Encoding never reads or depends on stale page content: encoding
    /// the same node over a dirty page yields identical decode results.
    #[test]
    fn encode_overwrites_stale_content(
        node in leaf_node(NodeCodec::new(256).leaf_capacity),
        garbage in any::<u8>(),
    ) {
        let codec = NodeCodec::new(256);
        let mut clean = vec![0u8; 256];
        let mut dirty = vec![garbage; 256];
        codec.encode(&node, &mut clean);
        codec.encode(&node, &mut dirty);
        prop_assert_eq!(codec.decode(&clean).entries, codec.decode(&dirty).entries);
    }
}
