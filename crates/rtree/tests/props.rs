//! Property-based tests: the R*-tree behaves like a multiset of points
//! under arbitrary interleavings of inserts and deletes.

use proptest::prelude::*;
use ringjoin_geom::{pt, Rect};
use ringjoin_rtree::{bulk_load, Item, RTree};
use ringjoin_storage::{MemDisk, Pager};

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, f64, f64),
    /// Remove the item at this index of the currently-live list (mod len).
    RemoveAt(usize),
    Range(f64, f64, f64, f64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..10_000, 0.0..100.0f64, 0.0..100.0f64)
            .prop_map(|(id, x, y)| Op::Insert(id, x, y)),
        1 => any::<usize>().prop_map(Op::RemoveAt),
        1 => (0.0..100.0f64, 0.0..100.0f64, 0.0..100.0f64, 0.0..100.0f64)
            .prop_map(|(a, b, c, d)| Op::Range(a, b, c, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_matches_naive_model(ops in proptest::collection::vec(op(), 1..200)) {
        let pager = Pager::new(MemDisk::new(256), 32).into_shared();
        let mut tree = RTree::new(pager);
        let mut model: Vec<Item> = Vec::new();
        let mut next_unique = 100_000u64;

        for o in ops {
            match o {
                Op::Insert(id, x, y) => {
                    // Force unique ids so removal is unambiguous.
                    next_unique += 1;
                    let item = Item::new(id * 1_000_000 + next_unique, pt(x, y));
                    tree.insert(item);
                    model.push(item);
                }
                Op::RemoveAt(i) => {
                    if model.is_empty() {
                        prop_assert!(!tree.remove(Item::new(123, pt(1.0, 1.0))));
                    } else {
                        let item = model.swap_remove(i % model.len());
                        prop_assert!(tree.remove(item));
                    }
                }
                Op::Range(a, b, c, d) => {
                    let w = Rect::new(pt(a, b), pt(c, d));
                    let mut got: Vec<u64> =
                        tree.range(w).into_iter().map(|it| it.id).collect();
                    got.sort_unstable();
                    let mut expect: Vec<u64> = model
                        .iter()
                        .filter(|it| w.contains_point(it.point))
                        .map(|it| it.id)
                        .collect();
                    expect.sort_unstable();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        prop_assert_eq!(tree.validate().unwrap(), model.len() as u64);

        // Final NN ordering check from a fixed query point.
        let q = pt(50.0, 50.0);
        let got: Vec<f64> = tree.nearest_iter(q).map(|(_, d)| d).collect();
        let mut expect: Vec<f64> = model.iter().map(|it| q.dist_sq(it.point)).collect();
        expect.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            prop_assert_eq!(g, e);
        }
    }

    #[test]
    fn bulk_load_equals_insert_build(
        points in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 0..400)
    ) {
        let items: Vec<Item> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(i as u64, pt(x, y)))
            .collect();
        let bulk = bulk_load(
            Pager::new(MemDisk::new(256), 64).into_shared(),
            items.clone(),
        );
        let mut inc = RTree::new(Pager::new(MemDisk::new(256), 64).into_shared());
        for &it in &items {
            inc.insert(it);
        }
        bulk.validate().unwrap();
        inc.validate_min_fill().unwrap();
        let w = Rect::new(pt(200.0, 200.0), pt(700.0, 800.0));
        let mut a: Vec<u64> = bulk.range(w).into_iter().map(|i| i.id).collect();
        let mut b: Vec<u64> = inc.range(w).into_iter().map(|i| i.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
