//! The incremental R* maintenance path under adversarial interleavings.
//!
//! Bulk load was the only index producer until live pointsets arrived,
//! so ChooseSubtree, forced reinsertion, and CondenseTree ran only in
//! unit tests. These properties drive the dormant path the way the
//! engine's update batches now do — starting from a **bulk-loaded**
//! tree (the engine's load shape) and interleaving inserts and deletes —
//! and check the three invariants the RCJ drivers rely on:
//!
//! * **multiset equality** — the indexed `(id, point)` set is exactly
//!   the oracle's after every interleaving (the key-level analogue of
//!   `pair_keys` equality at the join level);
//! * **MBR containment** — every stored branch MBR contains its whole
//!   subtree (checked by an explicit walk, independent of `validate`'s
//!   tightness check), which is what makes filter pruning sound;
//! * **minimum fill** — after every CondenseTree-triggering delete the
//!   R* fill invariant still holds on every non-root node.

use proptest::prelude::*;
use ringjoin_geom::{pt, Rect};
use ringjoin_rtree::{bulk_load, Item, NodeEntry, RTree};
use ringjoin_storage::{MemDisk, PageId, Pager};

#[derive(Clone, Debug)]
enum Op {
    Insert(f64, f64),
    /// Delete the live item at this index (mod len); a miss on an empty
    /// tree asserts the negative path instead.
    Delete(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Slightly delete-heavy: CondenseTree is the dormant branch.
        2 => (0.0..500.0f64, 0.0..500.0f64).prop_map(|(x, y)| Op::Insert(x, y)),
        3 => any::<usize>().prop_map(Op::Delete),
    ]
}

/// Sorted `(id, x bits, y bits)` keys of everything the tree holds —
/// exact coordinate identity, not tolerance.
fn item_keys(tree: &RTree) -> Vec<(u64, u64, u64)> {
    let everything = Rect::new(
        pt(f64::NEG_INFINITY, f64::NEG_INFINITY),
        pt(f64::INFINITY, f64::INFINITY),
    );
    let mut keys: Vec<(u64, u64, u64)> = tree
        .range(everything)
        .into_iter()
        .map(|it| (it.id, it.point.x.to_bits(), it.point.y.to_bits()))
        .collect();
    keys.sort_unstable();
    keys
}

fn oracle_keys(oracle: &[Item]) -> Vec<(u64, u64, u64)> {
    let mut keys: Vec<(u64, u64, u64)> = oracle
        .iter()
        .map(|it| (it.id, it.point.x.to_bits(), it.point.y.to_bits()))
        .collect();
    keys.sort_unstable();
    keys
}

/// Explicit containment walk: every entry of a subtree — branch MBR or
/// item point — lies inside the MBR its parent stored for that subtree.
fn assert_subtree_contained(
    tree: &RTree,
    page: PageId,
    bound: Option<Rect>,
) -> Result<(), TestCaseError> {
    let node = tree.read_node(page);
    for entry in &node.entries {
        match entry {
            NodeEntry::Item(it) => {
                if let Some(b) = bound {
                    prop_assert!(
                        b.contains_point(it.point),
                        "item {} at {:?} escaped its parent MBR {:?}",
                        it.id,
                        it.point,
                        b
                    );
                }
            }
            NodeEntry::Child { mbr, page: child } => {
                if let Some(b) = bound {
                    prop_assert!(
                        b.contains_rect(*mbr),
                        "child MBR {mbr:?} escaped its parent MBR {b:?}"
                    );
                }
                assert_subtree_contained(tree, *child, Some(*mbr))?;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_updates_preserve_rstar_invariants(
        seed_pts in proptest::collection::vec((0.0..500.0f64, 0.0..500.0f64), 0..100),
        ops in proptest::collection::vec(op(), 1..150),
    ) {
        // Start from a bulk load — the engine's load shape — so deletes
        // run CondenseTree against STR-packed nodes, not only against
        // nodes the insert path itself built.
        let pager = Pager::new(MemDisk::new(256), 48).into_shared();
        let mut oracle: Vec<Item> = seed_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(i as u64, pt(x, y)))
            .collect();
        let mut tree = bulk_load(pager, oracle.clone());
        let mut next_id = oracle.len() as u64;

        for o in ops {
            match o {
                Op::Insert(x, y) => {
                    let item = Item::new(next_id, pt(x, y));
                    next_id += 1;
                    tree.insert(item);
                    oracle.push(item);
                }
                Op::Delete(i) => {
                    if oracle.is_empty() {
                        prop_assert!(!tree.remove(Item::new(0, pt(1.0, 1.0))));
                    } else {
                        let item = oracle.swap_remove(i % oracle.len());
                        prop_assert!(tree.remove(item), "live item {} not found", item.id);
                        // Removing it again must miss: CondenseTree may
                        // reinsert survivors but never resurrects.
                        prop_assert!(!tree.remove(item));
                    }
                }
            }
            prop_assert_eq!(tree.len(), oracle.len() as u64);
        }

        prop_assert_eq!(item_keys(&tree), oracle_keys(&oracle));
        // validate_min_fill covers counts, levels, MBR tightness, and
        // the R* fill floor after every CondenseTree of the run.
        prop_assert_eq!(tree.validate_min_fill().unwrap(), oracle.len() as u64);
        assert_subtree_contained(&tree, tree.root_page(), None)?;
    }

    #[test]
    fn delete_everything_then_regrow(
        pts in proptest::collection::vec((0.0..300.0f64, 0.0..300.0f64), 1..120),
    ) {
        // Drain a bulk-loaded tree to empty through the incremental
        // path, then regrow it: the empty-root edge of CondenseTree.
        let pager = Pager::new(MemDisk::new(256), 48).into_shared();
        let items: Vec<Item> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(i as u64, pt(x, y)))
            .collect();
        let mut tree = bulk_load(pager, items.clone());
        for it in &items {
            prop_assert!(tree.remove(*it));
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.validate_min_fill().unwrap(), 0);
        for it in &items {
            tree.insert(*it);
        }
        prop_assert_eq!(item_keys(&tree), oracle_keys(&items));
        prop_assert_eq!(tree.validate_min_fill().unwrap(), items.len() as u64);
    }
}
