//! The ε-distance join (Brinkhoff, Kriegel, Seeger — SIGMOD 1993).
//!
//! Returns all pairs `⟨p, q⟩` with `dist(p, q) ≤ ε`, via synchronized
//! traversal of the two R-trees: a pair of nodes is descended only when
//! the minimum distance between their MBRs does not exceed ε.

use ringjoin_rtree::{Item, Node, NodeEntry, RTree};

/// Computes the ε-distance join between the trees of `P` and `Q`.
///
/// Result pairs are `(p, q)` with `p` from `tp` and `q` from `tq`;
/// ordering is unspecified.
pub fn epsilon_join(tp: &RTree, tq: &RTree, eps: f64) -> Vec<(Item, Item)> {
    assert!(eps >= 0.0, "epsilon must be non-negative");
    let mut out = Vec::new();
    let eps_sq = eps * eps;
    join_nodes(
        tp,
        tq,
        &tp.read_node(tp.root_page()),
        &tq.read_node(tq.root_page()),
        eps,
        eps_sq,
        &mut out,
    );
    out
}

fn join_nodes(
    tp: &RTree,
    tq: &RTree,
    a: &Node,
    b: &Node,
    eps: f64,
    eps_sq: f64,
    out: &mut Vec<(Item, Item)>,
) {
    match (a.is_leaf(), b.is_leaf()) {
        (true, true) => {
            for ea in &a.entries {
                let pa = ea.item().expect("leaf entry");
                for eb in &b.entries {
                    let qb = eb.item().expect("leaf entry");
                    if pa.point.dist_sq(qb.point) <= eps_sq {
                        out.push((pa, qb));
                    }
                }
            }
        }
        (false, true) => {
            for ea in &a.entries {
                if let NodeEntry::Child { mbr, page } = ea {
                    if mbr_point_reachable(*mbr, b, eps, eps_sq) {
                        let child = tp.read_node(*page);
                        join_nodes(tp, tq, &child, b, eps, eps_sq, out);
                    }
                }
            }
        }
        (true, false) => {
            for eb in &b.entries {
                if let NodeEntry::Child { mbr, page } = eb {
                    if mbr_point_reachable(*mbr, a, eps, eps_sq) {
                        let child = tq.read_node(*page);
                        join_nodes(tp, tq, a, &child, eps, eps_sq, out);
                    }
                }
            }
        }
        (false, false) => {
            for ea in &a.entries {
                let (ma, pa) = match ea {
                    NodeEntry::Child { mbr, page } => (*mbr, *page),
                    NodeEntry::Item(_) => unreachable!("branch node"),
                };
                for eb in &b.entries {
                    let (mb, pb) = match eb {
                        NodeEntry::Child { mbr, page } => (*mbr, *page),
                        NodeEntry::Item(_) => unreachable!("branch node"),
                    };
                    if rect_mindist_sq(ma, mb) <= eps_sq {
                        let ca = tp.read_node(pa);
                        let cb = tq.read_node(pb);
                        join_nodes(tp, tq, &ca, &cb, eps, eps_sq, out);
                    }
                }
            }
        }
    }
}

/// `true` if some point of leaf `b` is within ε of the rectangle.
fn mbr_point_reachable(mbr: ringjoin_geom::Rect, b: &Node, _eps: f64, eps_sq: f64) -> bool {
    b.entries.iter().any(|e| match e {
        NodeEntry::Item(it) => mbr.mindist_sq(it.point) <= eps_sq,
        NodeEntry::Child { mbr: m, .. } => rect_mindist_sq(mbr, *m) <= eps_sq,
    })
}

/// Squared minimum distance between two rectangles.
fn rect_mindist_sq(a: ringjoin_geom::Rect, b: ringjoin_geom::Rect) -> f64 {
    let dx = (a.min.x - b.max.x).max(0.0).max(b.min.x - a.max.x);
    let dy = (a.min.y - b.max.y).max(0.0).max(b.min.y - a.max.y);
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager};

    fn lcg_items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Item::new(i as u64, pt(next() * span, next() * span)))
            .collect()
    }

    #[test]
    fn matches_naive() {
        let ps = lcg_items(300, 5, 1000.0);
        let qs = lcg_items(250, 9, 1000.0);
        let pager = Pager::new(MemDisk::new(512), 128).into_shared();
        let tp = bulk_load(pager.clone(), ps.clone());
        let tq = bulk_load(pager.clone(), qs.clone());
        for eps in [0.0, 10.0, 55.0, 200.0] {
            let mut got: Vec<(u64, u64)> = epsilon_join(&tp, &tq, eps)
                .into_iter()
                .map(|(p, q)| (p.id, q.id))
                .collect();
            got.sort_unstable();
            let mut expect: Vec<(u64, u64)> = ps
                .iter()
                .flat_map(|p| {
                    qs.iter()
                        .filter(move |q| p.point.dist(q.point) <= eps)
                        .map(move |q| (p.id, q.id))
                })
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "eps = {eps}");
        }
    }

    #[test]
    fn zero_epsilon_finds_colocated_points() {
        let pager = Pager::new(MemDisk::new(512), 16).into_shared();
        let tp = bulk_load(
            pager.clone(),
            vec![Item::new(1, pt(5.0, 5.0)), Item::new(2, pt(9.0, 9.0))],
        );
        let tq = bulk_load(
            pager.clone(),
            vec![Item::new(7, pt(5.0, 5.0)), Item::new(8, pt(1.0, 1.0))],
        );
        let pairs = epsilon_join(&tp, &tq, 0.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0.id, pairs[0].1.id), (1, 7));
    }

    #[test]
    fn asymmetric_tree_heights() {
        // 2000 vs 3 points: trees of very different heights exercise the
        // leaf/non-leaf recursion arms.
        let ps = lcg_items(2000, 11, 100.0);
        let qs = vec![
            Item::new(0, pt(50.0, 50.0)),
            Item::new(1, pt(10.0, 90.0)),
            Item::new(2, pt(95.0, 5.0)),
        ];
        let pager = Pager::new(MemDisk::new(512), 128).into_shared();
        let tp = bulk_load(pager.clone(), ps.clone());
        let tq = bulk_load(pager.clone(), qs.clone());
        let eps = 7.5;
        let got = epsilon_join(&tp, &tq, eps).len();
        let expect = ps
            .iter()
            .flat_map(|p| qs.iter().filter(move |q| p.point.dist(q.point) <= eps))
            .count();
        assert_eq!(got, expect);
    }
}
