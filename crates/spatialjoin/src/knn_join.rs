//! The k-nearest-neighbour join (Table 1 of the RCJ paper; cf. Gorder,
//! VLDB 2004): for every `p ∈ P`, pair it with its `k` nearest
//! neighbours in `Q`. Result size is exactly `k · |P|` (when `|Q| ≥ k`),
//! and the operator is asymmetric — swapping the inputs changes the
//! result.

use ringjoin_rtree::{Item, RTree};

/// Computes the kNN join: for each item of `tp`, its `k` nearest items
/// of `tq`.
///
/// The outer side is scanned depth-first so consecutive kNN probes hit
/// nearby regions of `tq` (the same locality argument as the RCJ outer
/// scan).
pub fn knn_join(tp: &RTree, tq: &RTree, k: usize) -> Vec<(Item, Item)> {
    let mut out = Vec::new();
    let mut leaves = Vec::new();
    tp.for_each_leaf_df(|page, _| leaves.push(page));
    for page in leaves {
        let node = tp.read_node(page);
        for p in node.items() {
            for q in tq.knn(p.point, k) {
                out.push((p, q));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager};

    fn lcg_items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Item::new(i as u64, pt(next() * span, next() * span)))
            .collect()
    }

    #[test]
    fn matches_naive_knn() {
        let ps = lcg_items(60, 13, 300.0);
        let qs = lcg_items(80, 17, 300.0);
        let pager = Pager::new(MemDisk::new(512), 64).into_shared();
        let tp = bulk_load(pager.clone(), ps.clone());
        let tq = bulk_load(pager.clone(), qs.clone());
        for k in [1, 3, 7] {
            let mut got: Vec<(u64, u64)> = knn_join(&tp, &tq, k)
                .into_iter()
                .map(|(p, q)| (p.id, q.id))
                .collect();
            got.sort_unstable();
            let mut expect = Vec::new();
            for p in &ps {
                let mut by_d: Vec<(f64, u64)> = qs
                    .iter()
                    .map(|q| (p.point.dist_sq(q.point), q.id))
                    .collect();
                by_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, qid) in by_d.iter().take(k) {
                    expect.push((p.id, qid));
                }
            }
            expect.sort_unstable();
            // Distances must agree rank-by-rank even if ties reorder ids.
            assert_eq!(got.len(), expect.len(), "k={k}");
            let dist_of =
                |pid: u64, qid: u64| ps[pid as usize].point.dist_sq(qs[qid as usize].point);
            for (g, e) in got.iter().zip(expect.iter()) {
                assert_eq!(g.0, e.0, "outer id mismatch at k={k}");
                assert_eq!(dist_of(g.0, g.1), dist_of(e.0, e.1), "k={k}");
            }
        }
    }

    #[test]
    fn result_size_is_k_times_p() {
        let ps = lcg_items(40, 23, 100.0);
        let qs = lcg_items(50, 29, 100.0);
        let pager = Pager::new(MemDisk::new(512), 64).into_shared();
        let tp = bulk_load(pager.clone(), ps);
        let tq = bulk_load(pager.clone(), qs);
        assert_eq!(knn_join(&tp, &tq, 4).len(), 4 * 40);
    }

    #[test]
    fn asymmetric_operator() {
        let ps = vec![Item::new(0, pt(0.0, 0.0)), Item::new(1, pt(10.0, 0.0))];
        let qs = vec![
            Item::new(0, pt(1.0, 0.0)),
            Item::new(1, pt(2.0, 0.0)),
            Item::new(2, pt(3.0, 0.0)),
        ];
        let pager = Pager::new(MemDisk::new(512), 16).into_shared();
        let tp = bulk_load(pager.clone(), ps);
        let tq = bulk_load(pager.clone(), qs);
        assert_eq!(knn_join(&tp, &tq, 1).len(), 2);
        assert_eq!(knn_join(&tq, &tp, 1).len(), 3);
    }
}
