//! The k-closest-pairs join (incremental distance join of Hjaltason &
//! Samet, SIGMOD 1998; see also Corral et al., SIGMOD 2000).
//!
//! Yields the pairs of `P × Q` in ascending distance order from a
//! priority queue over entry pairs; taking the first `k` gives the
//! k-closest-pairs result of Table 1 of the RCJ paper.

use ringjoin_geom::Rect;
use ringjoin_rtree::{Item, NodeEntry, RTree};
use ringjoin_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Clone, Copy)]
enum Ref {
    Node(PageId, Rect),
    Item(Item),
}

impl Ref {
    fn rect(&self) -> Rect {
        match self {
            Ref::Node(_, r) => *r,
            Ref::Item(it) => Rect::from_point(it.point),
        }
    }
}

struct HeapElem {
    key: f64,
    seq: u64,
    a: Ref,
    b: Ref,
}

impl PartialEq for HeapElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapElem {}
impl PartialOrd for HeapElem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapElem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

fn rect_mindist_sq(a: Rect, b: Rect) -> f64 {
    let dx = (a.min.x - b.max.x).max(0.0).max(b.min.x - a.max.x);
    let dy = (a.min.y - b.max.y).max(0.0).max(b.min.y - a.max.y);
    dx * dx + dy * dy
}

/// Iterator yielding `(p, q, squared distance)` pairs in ascending
/// distance order.
pub struct ClosestPairsIter<'a> {
    tp: &'a RTree,
    tq: &'a RTree,
    heap: BinaryHeap<HeapElem>,
    seq: u64,
}

impl<'a> ClosestPairsIter<'a> {
    /// Starts the incremental distance join between `tp` and `tq`.
    pub fn new(tp: &'a RTree, tq: &'a RTree) -> Self {
        let mut it = ClosestPairsIter {
            tp,
            tq,
            heap: BinaryHeap::new(),
            seq: 0,
        };
        // Seed with the real root MBRs — a sentinel "empty" rectangle
        // would produce infinite mindist keys and break the ordering.
        let ra = tp.read_node(tp.root_page()).mbr();
        let rb = tq.read_node(tq.root_page()).mbr();
        it.push(Ref::Node(tp.root_page(), ra), Ref::Node(tq.root_page(), rb));
        it
    }

    fn push(&mut self, a: Ref, b: Ref) {
        let key = match (&a, &b) {
            (Ref::Item(x), Ref::Item(y)) => x.point.dist_sq(y.point),
            _ => rect_mindist_sq(a.rect(), b.rect()),
        };
        self.seq += 1;
        self.heap.push(HeapElem {
            key,
            seq: self.seq,
            a,
            b,
        });
    }

    fn expand_a(&mut self, page: PageId, b: Ref) {
        let node = self.tp.read_node(page);
        for e in &node.entries {
            let a = match e {
                NodeEntry::Item(it) => Ref::Item(*it),
                NodeEntry::Child { mbr, page } => Ref::Node(*page, *mbr),
            };
            self.push(a, b);
        }
    }

    fn expand_b(&mut self, a: Ref, page: PageId) {
        let node = self.tq.read_node(page);
        for e in &node.entries {
            let b = match e {
                NodeEntry::Item(it) => Ref::Item(*it),
                NodeEntry::Child { mbr, page } => Ref::Node(*page, *mbr),
            };
            self.push(a, b);
        }
    }
}

impl Iterator for ClosestPairsIter<'_> {
    type Item = (Item, Item, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(elem) = self.heap.pop() {
            match (elem.a, elem.b) {
                (Ref::Item(p), Ref::Item(q)) => return Some((p, q, elem.key)),
                (Ref::Node(pa, ra), b @ Ref::Node(pb, rb)) => {
                    // Expand the larger node first (classic heuristic).
                    if ra.area() >= rb.area() {
                        self.expand_a(pa, b);
                    } else {
                        self.expand_b(Ref::Node(pa, ra), pb);
                    }
                }
                (Ref::Node(pa, _), b @ Ref::Item(_)) => self.expand_a(pa, b),
                (a @ Ref::Item(_), Ref::Node(pb, _)) => self.expand_b(a, pb),
            }
        }
        None
    }
}

/// The `k` closest pairs between `tp` and `tq`, ascending by distance.
pub fn k_closest_pairs(tp: &RTree, tq: &RTree, k: usize) -> Vec<(Item, Item, f64)> {
    ClosestPairsIter::new(tp, tq).take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager};

    fn lcg_items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Item::new(i as u64, pt(next() * span, next() * span)))
            .collect()
    }

    #[test]
    fn matches_naive_top_k() {
        let ps = lcg_items(150, 3, 500.0);
        let qs = lcg_items(170, 7, 500.0);
        let pager = Pager::new(MemDisk::new(512), 128).into_shared();
        let tp = bulk_load(pager.clone(), ps.clone());
        let tq = bulk_load(pager.clone(), qs.clone());

        let mut all: Vec<f64> = ps
            .iter()
            .flat_map(|p| qs.iter().map(move |q| p.point.dist_sq(q.point)))
            .collect();
        all.sort_by(f64::total_cmp);

        for k in [1, 10, 123, 1000] {
            let got = k_closest_pairs(&tp, &tq, k);
            assert_eq!(got.len(), k.min(all.len()));
            for (i, (_, _, d)) in got.iter().enumerate() {
                assert_eq!(*d, all[i], "rank {i} at k={k}");
            }
            // Ascending order.
            for w in got.windows(2) {
                assert!(w[0].2 <= w[1].2);
            }
        }
    }

    #[test]
    fn exhausts_cartesian_product() {
        let ps = lcg_items(12, 3, 50.0);
        let qs = lcg_items(9, 5, 50.0);
        let pager = Pager::new(MemDisk::new(512), 32).into_shared();
        let tp = bulk_load(pager.clone(), ps.clone());
        let tq = bulk_load(pager.clone(), qs.clone());
        let all: Vec<_> = ClosestPairsIter::new(&tp, &tq).collect();
        assert_eq!(all.len(), 12 * 9);
    }

    #[test]
    fn first_pair_is_global_minimum() {
        let ps = vec![Item::new(0, pt(0.0, 0.0)), Item::new(1, pt(100.0, 0.0))];
        let qs = vec![Item::new(0, pt(99.0, 0.0)), Item::new(1, pt(50.0, 50.0))];
        let pager = Pager::new(MemDisk::new(512), 32).into_shared();
        let tp = bulk_load(pager.clone(), ps);
        let tq = bulk_load(pager.clone(), qs);
        let top = k_closest_pairs(&tp, &tq, 1);
        assert_eq!((top[0].0.id, top[0].1.id), (1, 0));
    }
}
