//! Classical spatial join operators, used by the RCJ paper as comparison
//! baselines (Section 5.1 / Table 1):
//!
//! * [`epsilon_join`] — all pairs within distance ε (Brinkhoff et al.,
//!   SIGMOD 1993), via synchronized R-tree traversal.
//! * [`k_closest_pairs`] / [`ClosestPairsIter`] — the k pairs of minimum
//!   distance (Hjaltason & Samet's incremental distance join).
//! * [`knn_join`] — each `p ∈ P` with its k nearest neighbours in `Q`.
//! * [`precision_recall`] — the resemblance metrics the paper uses to
//!   show that none of these operators, however tuned, reproduces the
//!   RCJ result (Figures 10–12).
//!
//! All operators run on the same disk-based R*-trees and pager as the RCJ
//! itself, so their I/O behaviour is measured by the same cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closest_pairs;
mod epsilon;
mod knn_join;
mod quality;

pub use closest_pairs::{k_closest_pairs, ClosestPairsIter};
pub use epsilon::epsilon_join;
pub use knn_join::knn_join;
pub use quality::{precision_recall, Quality};
