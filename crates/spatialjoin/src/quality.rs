//! Precision/recall of a join result against the RCJ result set
//! (Section 5.1 of the paper).
//!
//! The paper measures how well each classical join operator can imitate
//! the RCJ result when its parameter (ε or k) is tuned:
//!
//! ```text
//! precision(S', S) = |S ∩ S'| / |S'| · 100%
//! recall(S', S)    = |S ∩ S'| / |S|  · 100%
//! ```
//!
//! where `S` is the RCJ result and `S'` the other operator's. The paper's
//! finding — reproduced by Figures 10–12 of the benchmark harness — is
//! that no parameter value achieves both high precision and high recall.

use std::collections::HashSet;

/// Precision and recall (both in percent, `0..=100`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quality {
    /// `|S ∩ S'| / |S'| · 100`.
    pub precision: f64,
    /// `|S ∩ S'| / |S| · 100`.
    pub recall: f64,
}

/// Computes precision and recall of `candidate` (`S'`) with respect to
/// `reference` (`S`), both given as `(p.id, q.id)` keys. `candidate` is
/// treated as a *set* — duplicates are collapsed before measuring, since
/// the paper's `S'` are result sets.
///
/// Degenerate conventions: an empty `S'` has precision 100 (it makes no
/// false claims) and an empty `S` yields recall 100 (nothing to find).
pub fn precision_recall(candidate: &[(u64, u64)], reference: &HashSet<(u64, u64)>) -> Quality {
    let distinct: HashSet<(u64, u64)> = candidate.iter().copied().collect();
    if distinct.is_empty() {
        return Quality {
            precision: 100.0,
            recall: if reference.is_empty() { 100.0 } else { 0.0 },
        };
    }
    let hits = distinct.iter().filter(|k| reference.contains(k)).count();
    let precision = 100.0 * hits as f64 / distinct.len() as f64;
    let recall = if reference.is_empty() {
        100.0
    } else {
        100.0 * hits as f64 / reference.len() as f64
    };
    Quality { precision, recall }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[(u64, u64)]) -> HashSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_match() {
        let s = set(&[(1, 1), (2, 2)]);
        let q = precision_recall(&[(1, 1), (2, 2)], &s);
        assert_eq!(q.precision, 100.0);
        assert_eq!(q.recall, 100.0);
    }

    #[test]
    fn subset_has_full_precision_partial_recall() {
        let s = set(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let q = precision_recall(&[(1, 1)], &s);
        assert_eq!(q.precision, 100.0);
        assert_eq!(q.recall, 25.0);
    }

    #[test]
    fn superset_has_partial_precision_full_recall() {
        let s = set(&[(1, 1)]);
        let q = precision_recall(&[(1, 1), (2, 2), (3, 3), (9, 9)], &s);
        assert_eq!(q.precision, 25.0);
        assert_eq!(q.recall, 100.0);
    }

    #[test]
    fn disjoint_sets() {
        let s = set(&[(1, 1)]);
        let q = precision_recall(&[(2, 2)], &s);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn empty_candidate() {
        let s = set(&[(1, 1)]);
        let q = precision_recall(&[], &s);
        assert_eq!(q.precision, 100.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let s = set(&[(1, 1)]);
        let q = precision_recall(&[(1, 1), (1, 1), (2, 2), (3, 3)], &s);
        assert!((q.precision - 100.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.recall, 100.0);
    }
}
