//! Benchmark harness for the RCJ reproduction.
//!
//! [`experiments`] contains one function per table/figure of the paper's
//! evaluation (Table 4, Figures 10–18); the `experiments` binary exposes
//! them as subcommands. [`harness`] holds the shared machinery: dataset
//! construction with the paper's storage configuration (1 KB pages, LRU
//! buffer sized as a fraction of both trees), cost measurement (measured
//! CPU seconds + simulated I/O at 10 ms per fault), and aligned table
//! printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
