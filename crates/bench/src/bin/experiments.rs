//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! experiments all                    # everything, laptop scale (12.5%)
//! experiments fig16 --scale 0.25    # one figure at 25% of paper sizes
//! experiments table4 --full         # paper-scale cardinalities
//! experiments fig13 --threads 4     # RCJ runs on the parallel executor
//! experiments scaling               # OBJ thread sweep -> BENCH_scaling.json
//! experiments scaling --on-disk     # same sweep over spilled page files
//! experiments serving               # sharded-server req/s sweep -> BENCH_serving.json
//! ```

use ringjoin_bench::experiments::{run, ExpConfig, ALL};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = parse_value(&args, i, "--scale");
            }
            "--full" => cfg.scale = 1.0,
            "--on-disk" => cfg.on_disk = true,
            "--threads" => {
                i += 1;
                cfg.threads = parse_value(&args, i, "--threads");
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other if !other.starts_with("--") => ids.push(other.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment selected");
    }

    println!(
        "# ringjoin experiments  (scale {}, page 1KB, buffer 1%, 10ms/fault)",
        cfg.scale
    );
    for id in ids {
        let t0 = Instant::now();
        match run(&id, &cfg) {
            Some(report) => {
                println!("{report}");
                println!("[{id} took {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => usage(&format!("unknown experiment {id}")),
        }
    }
}

/// The value of flag `flag` at `args[i]`, distinguishing a missing value
/// from an unparsable one in the error message.
fn parse_value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let v = args
        .get(i)
        .unwrap_or_else(|| usage(&format!("missing value for {flag}")));
    v.parse()
        .unwrap_or_else(|_| usage(&format!("invalid value for {flag}: {v:?}")))
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments <all|{}> [--scale F] [--full] [--threads N] [--on-disk]",
        ALL.join("|")
    );
    std::process::exit(2);
}
