//! The experiment driver: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! ```text
//! experiments all                    # everything, laptop scale (12.5%)
//! experiments fig16 --scale 0.25    # one figure at 25% of paper sizes
//! experiments table4 --full         # paper-scale cardinalities
//! ```

use ringjoin_bench::experiments::{run, ExpConfig, ALL};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("missing value for --scale"));
            }
            "--full" => cfg.scale = 1.0,
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            other if !other.starts_with("--") => ids.push(other.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment selected");
    }

    println!(
        "# ringjoin experiments  (scale {}, page 1KB, buffer 1%, 10ms/fault)",
        cfg.scale
    );
    for id in ids {
        let t0 = Instant::now();
        match run(&id, &cfg) {
            Some(report) => {
                println!("{report}");
                println!("[{id} took {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => usage(&format!("unknown experiment {id}")),
        }
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments <all|{}> [--scale F] [--full]",
        ALL.join("|")
    );
    std::process::exit(2);
}
