//! One function per table/figure of the paper's evaluation section.
//!
//! Every function prints the same rows/series the paper reports. Sizes
//! default to `scale ×` the paper's cardinalities (`--full` sets
//! `scale = 1.0`); distance parameters (Figure 10's ε) are rescaled by
//! `sqrt(1/scale)` so that the *shape* of each curve is preserved — point
//! density scales linearly with `n`, so characteristic distances scale
//! with `1/sqrt(n)`.

use crate::harness::{run_phase, run_rcj, secs, Measured, Table, Workload, DEFAULT_BUFFER_FRAC};
use ringjoin_core::planner::{cost_units, CalibrationSample, DatasetSummary, JoinCostModel};
use ringjoin_core::{
    brute_candidates, pair_keys, rcj_join, Executor, RcjAlgorithm, RcjIndex, RcjOptions,
};
use ringjoin_datagen::{gaussian_clusters, gnis_like, uniform, GnisDataset, PAPER_SIGMA};
use ringjoin_rtree::Item;
use ringjoin_spatialjoin::{epsilon_join, k_closest_pairs, knn_join, precision_recall};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Global experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Fraction of the paper's dataset cardinalities to generate.
    pub scale: f64,
    /// Worker threads for the RCJ runs (0 = the `RINGJOIN_THREADS`-aware
    /// default, 1 = sequential). The `scaling` experiment sweeps its own
    /// thread counts and ignores this.
    pub threads: usize,
    /// Where the `scaling` experiment writes its JSON. `None` falls back
    /// to the `RINGJOIN_SCALING_OUT` environment variable, then to
    /// `BENCH_scaling.json` in the working directory. A field (not a
    /// `set_var`) so tests can redirect it without touching the process
    /// environment from multiple threads.
    pub scaling_out: Option<String>,
    /// Where the `serving` experiment writes its JSON; same fallback
    /// scheme via `RINGJOIN_SERVING_OUT`, then `BENCH_serving.json`.
    pub serving_out: Option<String>,
    /// Run the `scaling` sweep disk-native: every workload's page space
    /// is spilled to an on-disk page file before measurement, so buffer
    /// misses are real file reads and `prefetch_hits` is exercised.
    /// The paper's default 1% buffer applies either way; the dedicated
    /// out-of-core phase (dataset ≈ 4× budget) runs regardless.
    pub on_disk: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        // 1/8 of the paper's sizes: laptop-friendly (seconds per figure)
        // while keeping every curve's shape.
        ExpConfig {
            scale: 0.125,
            threads: 0,
            scaling_out: None,
            serving_out: None,
            on_disk: false,
        }
    }
}

impl ExpConfig {
    fn n(&self, full: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(10)
    }

    /// Distance rescaling factor: characteristic distances grow as
    /// density shrinks.
    fn dist_factor(&self) -> f64 {
        (1.0 / self.scale).sqrt()
    }

    /// RCJ options for one algorithm under this configuration's executor.
    fn rcj_opts(&self, algorithm: RcjAlgorithm) -> RcjOptions {
        let executor = if self.threads == 0 {
            Executor::default()
        } else {
            Executor::threads(self.threads)
        };
        RcjOptions::algorithm(algorithm).with_executor(executor)
    }
}

/// The paper's join combinations (Table 3): (name, Q dataset, P dataset).
pub const COMBINATIONS: [(&str, GnisDataset, GnisDataset); 4] = [
    ("SP", GnisDataset::Schools, GnisDataset::PopulatedPlaces),
    ("SP'", GnisDataset::PopulatedPlaces, GnisDataset::Schools),
    ("LP", GnisDataset::Locales, GnisDataset::PopulatedPlaces),
    ("LP'", GnisDataset::PopulatedPlaces, GnisDataset::Locales),
];

const ALGOS: [RcjAlgorithm; 3] = [RcjAlgorithm::Inj, RcjAlgorithm::Bij, RcjAlgorithm::Obj];

fn combo_workload(cfg: &ExpConfig, q: GnisDataset, p: GnisDataset) -> Workload {
    let p_items = gnis_like(p, cfg.n(p.full_cardinality()));
    let q_items = gnis_like(q, cfg.n(q.full_cardinality()));
    Workload::build(p_items, q_items, DEFAULT_BUFFER_FRAC)
}

fn cost_columns(m: &Measured) -> Vec<String> {
    vec![
        secs(m.cpu_secs),
        secs(m.io_secs),
        secs(m.total_secs()),
        m.io.read_faults.to_string(),
        m.io.logical_reads.to_string(),
    ]
}

const COST_HEADER: [&str; 5] = ["cpu(s)", "io(s)", "total(s)", "faults", "node_acc"];

/// Table 2: the (stand-in) real datasets.
pub fn table2(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Table 2: real dataset stand-ins (scale {}) ==\n",
        cfg.scale
    );
    let mut t = Table::new(&["ID", "Description", "paper N", "generated N"]);
    for (ds, desc) in [
        (GnisDataset::PopulatedPlaces, "Populated Places (GNIS-like)"),
        (GnisDataset::Schools, "Schools (GNIS-like)"),
        (GnisDataset::Locales, "Locales (GNIS-like)"),
    ] {
        t.row(vec![
            ds.short_name().into(),
            desc.into(),
            ds.full_cardinality().to_string(),
            cfg.n(ds.full_cardinality()).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table 4: number of candidate pairs per algorithm, SP and LP.
pub fn table4(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Table 4: number of candidate pairs, real-like data (scale {}) ==\n",
        cfg.scale
    );
    let mut t = Table::new(&["Algorithm", "SP", "LP"]);
    let mut columns: Vec<Vec<String>> = Vec::new();
    for (_, q, p) in [&COMBINATIONS[0], &COMBINATIONS[2]].map(|c| *c) {
        let w = combo_workload(cfg, q, p);
        let brute = brute_candidates(w.tp.len(), w.tq.len());
        let mut col = vec![format!("{:.2E}", brute as f64)];
        let mut result = 0u64;
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            col.push(m.stats.candidate_pairs.to_string());
            result = m.stats.result_pairs;
        }
        col.push(result.to_string());
        columns.push(col);
    }
    for (i, name) in ["BRUTE", "INJ", "BIJ", "OBJ", "RCJ Results"]
        .iter()
        .enumerate()
    {
        t.row(vec![
            name.to_string(),
            columns[0][i].clone(),
            columns[1][i].clone(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// RCJ reference result keys for a workload (computed with OBJ).
fn rcj_reference(w: &Workload) -> HashSet<(u64, u64)> {
    let out = rcj_join(&w.tq, &w.tp, &RcjOptions::default());
    pair_keys(&out.pairs).into_iter().collect()
}

/// Figure 10: resemblance of the ε-range join vs ε, for SP and LP.
pub fn fig10(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Figure 10: precision/recall of the eps-range join vs eps (scale {}) ==\n",
        cfg.scale
    );
    for (name, q, p) in [COMBINATIONS[0], COMBINATIONS[2]] {
        let w = combo_workload(cfg, q, p);
        let reference = rcj_reference(&w);
        let mut t = Table::new(&["eps", "pairs", "precision(%)", "recall(%)"]);
        for step in 1..=10 {
            let eps = step as f64 * cfg.dist_factor();
            let pairs = epsilon_join(&w.tp, &w.tq, eps);
            let keys: Vec<(u64, u64)> = pairs.iter().map(|(a, b)| (a.id, b.id)).collect();
            let qy = precision_recall(&keys, &reference);
            t.row(vec![
                format!("{eps:.1}"),
                keys.len().to_string(),
                format!("{:.1}", qy.precision),
                format!("{:.1}", qy.recall),
            ]);
        }
        let _ = writeln!(
            out,
            "-- combination {name} (|RCJ| = {}) --",
            reference.len()
        );
        out.push_str(&t.render());
    }
    out
}

/// Figure 11: resemblance of the k-closest-pairs join vs k.
pub fn fig11(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Figure 11: precision/recall of k-closest-pairs vs k (scale {}) ==\n",
        cfg.scale
    );
    for (name, q, p) in [COMBINATIONS[0], COMBINATIONS[2]] {
        let w = combo_workload(cfg, q, p);
        let reference = rcj_reference(&w);
        let mut t = Table::new(&["k", "precision(%)", "recall(%)"]);
        // Sweep k up to ~1.4x the RCJ result size, mirroring the paper's
        // x-axis (which extends past |RCJ|).
        let base = reference.len().max(10);
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4] {
            let k = (base as f64 * frac) as usize;
            let pairs = k_closest_pairs(&w.tp, &w.tq, k);
            let keys: Vec<(u64, u64)> = pairs.iter().map(|(a, b, _)| (a.id, b.id)).collect();
            let qy = precision_recall(&keys, &reference);
            t.row(vec![
                k.to_string(),
                format!("{:.1}", qy.precision),
                format!("{:.1}", qy.recall),
            ]);
        }
        let _ = writeln!(
            out,
            "-- combination {name} (|RCJ| = {}) --",
            reference.len()
        );
        out.push_str(&t.render());
    }
    out
}

/// Figure 12: resemblance of the k-nearest-neighbour join vs k.
pub fn fig12(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Figure 12: precision/recall of the kNN join vs k (scale {}) ==\n",
        cfg.scale
    );
    for (name, q, p) in [COMBINATIONS[0], COMBINATIONS[2]] {
        let w = combo_workload(cfg, q, p);
        let reference = rcj_reference(&w);
        let mut t = Table::new(&["k", "pairs", "precision(%)", "recall(%)"]);
        for k in 1..=10usize {
            let pairs = knn_join(&w.tp, &w.tq, k);
            let keys: Vec<(u64, u64)> = pairs.iter().map(|(a, b)| (a.id, b.id)).collect();
            let qy = precision_recall(&keys, &reference);
            t.row(vec![
                k.to_string(),
                keys.len().to_string(),
                format!("{:.1}", qy.precision),
                format!("{:.1}", qy.recall),
            ]);
        }
        let _ = writeln!(
            out,
            "-- combination {name} (|RCJ| = {}) --",
            reference.len()
        );
        out.push_str(&t.render());
    }
    out
}

/// Figure 13: the effect of the join combination (real-like data).
pub fn fig13(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Figure 13: the effect of join combination (scale {}) ==\n",
        cfg.scale
    );
    let mut header = vec!["combination", "algo"];
    header.extend(COST_HEADER);
    header.push("candidates");
    header.push("results");
    let mut t = Table::new(&header);
    for (name, q, p) in COMBINATIONS {
        let w = combo_workload(cfg, q, p);
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            let mut row = vec![name.to_string(), algo.name().to_string()];
            row.extend(cost_columns(&m));
            row.push(m.stats.candidate_pairs.to_string());
            row.push(m.stats.result_pairs.to_string());
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 14: the cost of the verification step (UI data, |P|=|Q|=200K).
pub fn fig14(cfg: &ExpConfig) -> String {
    let n = cfg.n(200_000);
    let mut out =
        format!("== Figure 14: cost with vs without verification, |P|=|Q|={n}, UI data ==\n");
    let w = Workload::build(uniform(n, 101), uniform(n, 202), DEFAULT_BUFFER_FRAC);
    let mut header = vec!["algo", "verification"];
    header.extend(COST_HEADER);
    let mut t = Table::new(&header);
    for algo in ALGOS {
        for verification in [true, false] {
            let opts = RcjOptions {
                skip_verification: !verification,
                ..cfg.rcj_opts(algo)
            };
            let m = run_rcj(&w, &opts);
            let mut row = vec![
                algo.name().to_string(),
                if verification { "with" } else { "without" }.to_string(),
            ];
            row.extend(cost_columns(&m));
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 15: the effect of the buffer size (UI data).
pub fn fig15(cfg: &ExpConfig) -> String {
    let n = cfg.n(200_000);
    let mut out = format!("== Figure 15: the effect of buffer size, |P|=|Q|={n}, UI data ==\n");
    let mut w = Workload::build(uniform(n, 101), uniform(n, 202), DEFAULT_BUFFER_FRAC);
    let mut header = vec!["buffer(%)", "algo"];
    header.extend(COST_HEADER);
    let mut t = Table::new(&header);
    for frac_pct in [0.2, 0.5, 1.0, 2.0, 5.0] {
        w.set_buffer_frac(frac_pct / 100.0);
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            let mut row = vec![format!("{frac_pct}"), algo.name().to_string()];
            row.extend(cost_columns(&m));
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 16: scalability with the data size n (UI data).
pub fn fig16(cfg: &ExpConfig) -> String {
    let mut out = format!(
        "== Figure 16: the effect of data size n, |P|=|Q|=n, UI data (scale {}) ==\n",
        cfg.scale
    );
    let mut header = vec!["n", "algo"];
    header.extend(COST_HEADER);
    header.push("results");
    let mut t = Table::new(&header);
    for full_n in [50_000usize, 100_000, 200_000, 400_000, 800_000] {
        let n = cfg.n(full_n);
        let w = Workload::build(uniform(n, 7), uniform(n, 8), DEFAULT_BUFFER_FRAC);
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            let mut row = vec![n.to_string(), algo.name().to_string()];
            row.extend(cost_columns(&m));
            row.push(m.stats.result_pairs.to_string());
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 17: the effect of the cardinality ratio |P| : |Q|.
pub fn fig17(cfg: &ExpConfig) -> String {
    let total = cfg.n(400_000);
    let mut out =
        format!("== Figure 17: the effect of cardinality ratio, |P|+|Q|={total}, UI data ==\n");
    let mut header = vec!["|P|:|Q|", "algo"];
    header.extend(COST_HEADER);
    header.push("results");
    let mut t = Table::new(&header);
    for (label, pw, qw) in [
        ("1:4", 1, 4),
        ("1:2", 1, 2),
        ("1:1", 1, 1),
        ("2:1", 2, 1),
        ("4:1", 4, 1),
    ] {
        let np = total * pw / (pw + qw);
        let nq = total - np;
        let w = Workload::build(uniform(np, 31), uniform(nq, 37), DEFAULT_BUFFER_FRAC);
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            let mut row = vec![label.to_string(), algo.name().to_string()];
            row.extend(cost_columns(&m));
            row.push(m.stats.result_pairs.to_string());
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 18: the effect of the number of clusters w (Gaussian data).
pub fn fig18(cfg: &ExpConfig) -> String {
    let n = cfg.n(200_000);
    let mut out =
        format!("== Figure 18: the effect of cluster count w, |P|=|Q|={n}, Gaussian data ==\n");
    let mut header = vec!["w", "algo"];
    header.extend(COST_HEADER);
    header.push("results");
    let mut t = Table::new(&header);
    for wclusters in [2usize, 5, 10, 15, 20] {
        let w = Workload::build(
            gaussian_clusters(n, wclusters, PAPER_SIGMA, 51),
            gaussian_clusters(n, wclusters, PAPER_SIGMA, 52),
            DEFAULT_BUFFER_FRAC,
        );
        for algo in ALGOS {
            let m = run_rcj(&w, &cfg.rcj_opts(algo));
            let mut row = vec![wclusters.to_string(), algo.name().to_string()];
            row.extend(cost_columns(&m));
            row.push(m.stats.result_pairs.to_string());
            t.row(row);
        }
    }
    out.push_str(&t.render());
    out
}

/// Extra (not a paper figure): baseline join costs on the same workload,
/// for context in EXPERIMENTS.md.
pub fn baselines(cfg: &ExpConfig) -> String {
    let n = cfg.n(100_000);
    let mut out = format!("== Baseline join costs, |P|=|Q|={n}, UI data ==\n");
    let w = Workload::build(uniform(n, 61), uniform(n, 67), DEFAULT_BUFFER_FRAC);
    let mut header = vec!["join", "pairs"];
    header.extend(COST_HEADER);
    let mut t = Table::new(&header);
    let eps = 5.0 * cfg.dist_factor();
    let (pairs, m) = run_phase(&w, || epsilon_join(&w.tp, &w.tq, eps));
    let mut row = vec![format!("eps-join(eps={eps:.1})"), pairs.len().to_string()];
    row.extend(cost_columns(&m));
    t.row(row);
    let k = n / 10;
    let (pairs, m) = run_phase(&w, || k_closest_pairs(&w.tp, &w.tq, k));
    let mut row = vec![format!("{k}-closest-pairs"), pairs.len().to_string()];
    row.extend(cost_columns(&m));
    t.row(row);
    let (pairs, m) = run_phase(&w, || knn_join(&w.tp, &w.tq, 1));
    let mut row = vec!["1NN-join".to_string(), pairs.len().to_string()];
    row.extend(cost_columns(&m));
    t.row(row);
    let m = run_rcj(&w, &cfg.rcj_opts(RcjAlgorithm::Obj));
    let mut row = vec!["RCJ (OBJ)".to_string(), m.stats.result_pairs.to_string()];
    row.extend(cost_columns(&m));
    t.row(row);
    out.push_str(&t.render());
    out
}

/// Extension experiment (paper future-work item 1): the planner's
/// calibrated analytical cost model, validated against measurement.
///
/// The model itself lives in `ringjoin_core::planner` (it is what
/// resolves `RcjAlgorithm::Auto` and prices `explain` plans); this
/// experiment is its measurement harness. The local operations of the
/// join are density-invariant on uniform data — the filter's unpruned
/// region shrinks as `1/sqrt(n)` exactly as fast as the data densifies —
/// so per-phase node reads are linear in the number of *outer work
/// units*: points of `Q` for INJ, leaves of `T_Q` for BIJ/OBJ. The
/// experiment calibrates a [`JoinCostModel`] at a small size, predicts
/// filter/verify node reads at 2x and 4x, and prints the relative
/// errors plus the algorithm `Auto` would pick at each size.
pub fn ext_costmodel(cfg: &ExpConfig) -> String {
    let n0 = cfg.n(100_000);
    let mut out = format!(
        "== Extension: planner cost model (core::planner, calibrated at n={n0}, UI data) ==\n"
    );
    // One measured run per algorithm at size n: the workload summary the
    // planner would see, plus per-phase node reads.
    let measure = |n: usize| -> (DatasetSummary, Vec<CalibrationSample>) {
        let w = Workload::build(uniform(n, 7), uniform(n, 8), DEFAULT_BUFFER_FRAC);
        let summary = w.tq.summary();
        let samples = ALGOS
            .map(|algo| {
                let m = run_rcj(&w, &cfg.rcj_opts(algo));
                CalibrationSample {
                    algorithm: algo,
                    units: cost_units(algo, &summary).0,
                    filter_reads: m.stats.filter_node_reads,
                    verify_reads: m.stats.verify_node_visits,
                }
            })
            .to_vec();
        (summary, samples)
    };

    let (summary0, samples0) = measure(n0);
    let model = JoinCostModel::calibrate(&samples0);
    let mut t = Table::new(&[
        "n",
        "algo",
        "units",
        "pred filter",
        "pred verify",
        "measured f",
        "measured v",
        "err(%)",
    ]);
    let mut auto_choices = vec![format!("n={n0}: {}", model.choose(&summary0).name())];
    for factor in [2usize, 4] {
        let n = n0 * factor;
        let (summary, samples) = measure(n);
        for s in samples {
            let e = model.estimate(s.algorithm, &summary);
            let measured = (s.filter_reads + s.verify_reads) as f64;
            let err = 100.0 * (e.total_reads() - measured).abs() / measured.max(1.0);
            t.row(vec![
                n.to_string(),
                s.algorithm.name().to_string(),
                format!("{} {}", e.units, e.unit),
                format!("{:.0}", e.filter_reads),
                format!("{:.0}", e.verify_reads),
                s.filter_reads.to_string(),
                s.verify_reads.to_string(),
                format!("{err:.1}"),
            ]);
        }
        auto_choices.push(format!("n={n}: {}", model.choose(&summary).name()));
    }
    out.push_str(&t.render());
    out.push_str(
        "model: reads(INJ) = (c_f + c_v) * |Q|;  reads(BIJ/OBJ) = (c_f + c_v) * leaves(T_Q)\n",
    );
    let _ = writeln!(out, "Auto would choose: {}", auto_choices.join(", "));
    out
}

/// Thread counts swept by the [`scaling`] experiment (1 runs on the
/// sequential executor and is the baseline).
pub const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The skew workloads appended to the [`scaling`] sweep: clustered
/// outer datasets are where equal-count contiguous chunking loses and
/// the work-stealing scheduler earns its keep. `SKEW-G` is the paper's
/// Gaussian generator (Figure 18's 10-cluster shape); `SKEW-C` packs
/// the same mass into 3 tight clusters (quarter sigma).
pub const SCALING_SKEW: [&str; 2] = ["SKEW-G", "SKEW-C"];

fn skew_workload(cfg: &ExpConfig, name: &str) -> Workload {
    let nq = cfg.n(GnisDataset::Schools.full_cardinality());
    let np = cfg.n(GnisDataset::PopulatedPlaces.full_cardinality());
    let q_items = match name {
        "SKEW-G" => gaussian_clusters(nq, 10, PAPER_SIGMA, 71),
        "SKEW-C" => gaussian_clusters(nq, 3, PAPER_SIGMA / 4.0, 73),
        other => panic!("unknown skew workload {other:?}"),
    };
    Workload::build(
        gnis_like(GnisDataset::PopulatedPlaces, np),
        q_items,
        DEFAULT_BUFFER_FRAC,
    )
}

/// Thread counts exercised by the out-of-core phase of [`scaling`]
/// (sequential LRU path and pool-framed parallel path).
pub const OOC_THREADS: [usize; 2] = [1, 4];

/// Update rounds run by the live-update phase of [`scaling`]: fresh
/// inserts, then moves (upserts), then deletes, then a mixed batch.
pub const UPDATE_ROUNDS: usize = 4;

/// Scaling experiment (first entry of the perf trajectory, not a paper
/// figure): OBJ at 1/2/4/8 worker threads over the Figure 13 workload
/// plus the [`SCALING_SKEW`] clustered variants, then an out-of-core
/// phase — the SP workload spilled to an on-disk page file with the
/// buffer pinned to a quarter of its page count, so the run *must*
/// keep faulting pages in from the file (`SP-OOC` rows, at
/// [`OOC_THREADS`]) — and finally a live-update phase: [`UPDATE_ROUNDS`]
/// seeded insert/upsert/delete batches interleaved with joins through
/// the engine's epoch-versioned update path, each round's epoch, I/O
/// accounting and (at the end) replayed-history byte-identity asserted
/// and recorded in the JSON's `updates` section.
///
/// Wall-clock seconds are measured per combination and compared against
/// the sequential baseline; the determinism guarantee is asserted on
/// every run (`pair_keys` must match the baseline exactly, including
/// the out-of-core rows). Raw numbers — `read_faults`, `read_hits`,
/// `prefetch_hits` and the derived hit rate of the shared buffer pool —
/// are additionally written as JSON to `BENCH_scaling.json` (override
/// the path with `RINGJOIN_SCALING_OUT`) so regressions are visible in
/// version control. With [`ExpConfig::on_disk`] the *whole* sweep runs
/// disk-native (spilled page files, same 1% buffer), which is how CI's
/// bench-guard exercises the residency layer.
pub fn scaling(cfg: &ExpConfig) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let storage = if cfg.on_disk { "on-disk" } else { "resident" };
    let mut out = format!(
        "== Scaling: OBJ wall-clock vs worker threads, fig13 + skew workloads + out-of-core \
         (scale {}, {storage} storage, {cores} core(s) available) ==\n",
        cfg.scale
    );
    if cores < 2 {
        out.push_str(
            "note: single-core machine — wall-clock speedup is capped at 1.0x; \
             the sweep still validates determinism and records raw numbers.\n",
        );
    }
    let scratch = std::env::temp_dir().join(format!(
        "ringjoin-scaling-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&scratch).expect("create scaling scratch dir");
    let mut t = Table::new(&[
        "combination",
        "threads",
        "wall(s)",
        "speedup",
        "faults",
        "hits",
        "prefetch",
        "hit-rate",
        "node_acc",
        "results",
    ]);
    let mut json_entries: Vec<String> = Vec::new();
    let record = |t: &mut Table,
                  json: &mut Vec<String>,
                  name: &str,
                  threads: usize,
                  m: &Measured,
                  speedup: f64| {
        t.row(vec![
            name.to_string(),
            threads.to_string(),
            secs(m.cpu_secs),
            format!("{speedup:.2}x"),
            m.io.read_faults.to_string(),
            m.io.read_hits.to_string(),
            m.io.prefetch_hits.to_string(),
            format!("{:.1}%", 100.0 * m.io.read_hit_rate()),
            m.io.logical_reads.to_string(),
            m.stats.result_pairs.to_string(),
        ]);
        json.push(format!(
            "    {{\"combination\": \"{name}\", \"mode\": \"{}\", \"threads\": {threads}, \
             \"wall_secs\": {:.6}, \"speedup_vs_sequential\": {:.4}, \"read_faults\": {}, \
             \"read_hits\": {}, \"prefetch_hits\": {}, \"hit_rate\": {:.4}, \
             \"logical_reads\": {}, \"result_pairs\": {}}}",
            if threads == 1 {
                "sequential"
            } else {
                "parallel"
            },
            m.cpu_secs,
            speedup,
            m.io.read_faults,
            m.io.read_hits,
            m.io.prefetch_hits,
            m.io.read_hit_rate(),
            m.io.logical_reads,
            m.stats.result_pairs,
        ));
    };
    // Lazily built: each workload owns a MemDisk plus a cached full
    // page snapshot, so only one lives at a time.
    let workloads = COMBINATIONS
        .iter()
        .map(|&(name, q, p)| (name, combo_workload(cfg, q, p)))
        .chain(
            SCALING_SKEW
                .iter()
                .map(|&name| (name, skew_workload(cfg, name))),
        );
    for (name, w) in workloads {
        let w = &w;
        if cfg.on_disk {
            w.spill_to(&scratch.join(format!("{}.rjp", name.replace('\'', "-prime"))));
        }
        let mut baseline_secs = 0.0f64;
        let mut baseline_keys: Vec<(u64, u64)> = Vec::new();
        for threads in SCALING_THREADS {
            let opts = RcjOptions::default().with_executor(Executor::threads(threads));
            let (m, keys) = run_rcj_with_keys(w, &opts);
            if threads == 1 {
                baseline_secs = m.cpu_secs;
                baseline_keys = keys;
            } else {
                assert_eq!(
                    baseline_keys, keys,
                    "parallel run at {threads} threads diverged from sequential on {name}"
                );
            }
            let speedup = baseline_secs / m.cpu_secs.max(1e-12);
            record(&mut t, &mut json_entries, name, threads, &m, speedup);
        }
    }

    // Out-of-core phase: the SP workload several times larger than its
    // buffer. The page space moves to an on-disk page file, the budget
    // is pinned to a quarter of the dataset's pages, and the join must
    // stay byte-identical to the sequential in-budget run while
    // `read_faults` tracks the budget (the paper's I/O model), not the
    // dataset size.
    {
        let (name, q, p) = ("SP-OOC", GnisDataset::Schools, GnisDataset::PopulatedPlaces);
        let w = combo_workload(cfg, q, p);
        w.spill_to(&scratch.join("sp-ooc.rjp"));
        let budget = (w.node_pages() / 4).max(1);
        w.set_buffer_pages(budget);
        let _ = writeln!(
            out,
            "out-of-core: SP page space spilled ({} pages), buffer pinned to {budget}",
            w.node_pages()
        );
        let mut baseline_secs = 0.0f64;
        let mut baseline_keys: Vec<(u64, u64)> = Vec::new();
        for threads in OOC_THREADS {
            let opts = RcjOptions::default().with_executor(Executor::threads(threads));
            let (m, keys) = run_rcj_with_keys(&w, &opts);
            if threads == 1 {
                baseline_secs = m.cpu_secs;
                baseline_keys = keys;
            } else {
                assert_eq!(
                    baseline_keys, keys,
                    "out-of-core run at {threads} threads diverged from sequential"
                );
            }
            assert!(
                m.io.read_faults > 0,
                "a quarter-size budget must fault pages in from the file"
            );
            assert_eq!(
                m.io.read_hits + m.io.read_faults,
                m.io.logical_reads,
                "hits + faults must partition the logical reads"
            );
            let speedup = baseline_secs / m.cpu_secs.max(1e-12);
            record(&mut t, &mut json_entries, name, threads, &m, speedup);
        }
    }
    // Live-update phase: the SP workload again, now mutated between
    // queries through the engine's epoch-versioned update path. Each
    // round applies one deterministic seeded batch — fresh inserts,
    // then moves (upserts), then deletes, then a mixed batch — and
    // re-runs the join. Three invariants are asserted per round: the
    // dataset epoch advances by exactly one, the accounting identity
    // `read_hits + read_faults == logical_reads` survives copy-on-write
    // page versioning, and (after the last round) the answer is
    // byte-identical to a second engine that replayed the identical
    // mutation history. Pair order follows the tree structure, which
    // follows the mutation history — so the oracle replays it; a bulk
    // rebuild of the final pointset would be the wrong reference.
    let mut ut = Table::new(&[
        "round",
        "epoch",
        "ops",
        "update(s)",
        "join(s)",
        "node_acc",
        "hits",
        "faults",
        "results",
    ]);
    let mut update_entries: Vec<String> = Vec::new();
    {
        use ringjoin_core::{Engine, IndexKind};
        use ringjoin_server::Mutation;
        use std::time::Instant;
        let np = cfg.n(GnisDataset::PopulatedPlaces.full_cardinality());
        let nq = cfg.n(GnisDataset::Schools.full_cardinality());
        let p_items = gnis_like(GnisDataset::PopulatedPlaces, np);
        let q_items = gnis_like(GnisDataset::Schools, nq);
        let batch = (np / 20).max(8);
        let build = |suffix: &str| -> Engine {
            let mut engine = Engine::new();
            engine.load("p", p_items.clone()).index(IndexKind::Rtree);
            let load = engine.load("q", q_items.clone());
            if cfg.on_disk {
                load.on_disk(scratch.join(format!("updates-{suffix}.rjp")))
                    .index(IndexKind::Rtree);
            } else {
                load.index(IndexKind::Rtree);
            }
            engine.set_buffer_frac(DEFAULT_BUFFER_FRAC);
            engine
        };

        // The seeded batches: coordinates from one uniform pool, fresh
        // ids minted above the loaded range, moves/deletes drawn from
        // ids this phase inserted plus a slice of the original load.
        let pool = uniform(UPDATE_ROUNDS * batch * 2, 9001);
        let mut cursor = 0usize;
        let id_base = 1u64 << 32;
        let inserts: Vec<u64> = (0..batch as u64).map(|i| id_base + i).collect();
        let mut rounds: Vec<Vec<Mutation>> = Vec::with_capacity(UPDATE_ROUNDS);
        // Round 1: fresh inserts above the loaded id range.
        let mut ops = Vec::with_capacity(batch);
        for &id in &inserts {
            ops.push(Mutation::Insert(ringjoin_rtree::Item::new(
                id,
                pool[cursor].point,
            )));
            cursor += 1;
        }
        rounds.push(ops);
        // Round 2: move half of them, mint the other half via upsert.
        let mut ops = Vec::with_capacity(batch);
        for &id in inserts.iter().take(batch / 2) {
            ops.push(Mutation::Upsert(ringjoin_rtree::Item::new(
                id,
                pool[cursor].point,
            )));
            cursor += 1;
        }
        for i in 0..(batch - batch / 2) as u64 {
            ops.push(Mutation::Upsert(ringjoin_rtree::Item::new(
                id_base + batch as u64 + i,
                pool[cursor].point,
            )));
            cursor += 1;
        }
        rounds.push(ops);
        // Round 3: delete a quarter of the fresh ids and a quarter-batch
        // slice of the original load (gnis ids are 0..n-1).
        let mut ops = Vec::with_capacity(batch / 2);
        ops.extend(
            inserts
                .iter()
                .skip(batch / 2)
                .take(batch / 4)
                .map(|&id| Mutation::Delete(id)),
        );
        ops.extend((0..(batch / 4) as u64).map(Mutation::Delete));
        rounds.push(ops);
        // Round 4: a mixed batch — the engine path (unlike the wire, one
        // verb per request) applies inserts, upserts and deletes in one
        // atomic epoch.
        let mut ops = Vec::with_capacity(batch);
        for i in 0..(batch / 2) as u64 {
            ops.push(Mutation::Insert(ringjoin_rtree::Item::new(
                id_base + 2 * batch as u64 + i,
                pool[cursor].point,
            )));
            cursor += 1;
        }
        for &id in inserts.iter().take(batch / 4) {
            ops.push(Mutation::Upsert(ringjoin_rtree::Item::new(
                id,
                pool[cursor].point,
            )));
            cursor += 1;
        }
        ops.extend(((batch / 4) as u64..(batch / 2) as u64).map(Mutation::Delete));
        rounds.push(ops);

        let apply = |engine: &mut Engine, ops: &[Mutation]| -> u64 {
            let mut b = engine.update("p");
            for op in ops {
                b = match *op {
                    Mutation::Insert(it) => b.insert([it]),
                    Mutation::Delete(id) => b.delete([id]),
                    Mutation::Upsert(it) => b.upsert([it]),
                };
            }
            b.apply().expect("update batch validated").epoch()
        };

        let mut engine = build("live");
        let mut last_keys: Vec<(u64, u64)> = Vec::new();
        for (round, ops) in rounds.iter().enumerate() {
            let t0 = Instant::now();
            let epoch = apply(&mut engine, ops);
            let update_secs = t0.elapsed().as_secs_f64();
            assert_eq!(
                epoch,
                (round + 1) as u64,
                "dataset epoch must advance by exactly one per update round"
            );
            engine.pager().borrow_mut().reset_stats();
            let t0 = Instant::now();
            let plan = engine
                .query()
                .join("q", "p")
                .algorithm(RcjAlgorithm::Obj)
                .plan()
                .expect("post-update plan");
            let m = plan.collect();
            let join_secs = t0.elapsed().as_secs_f64();
            let io = engine.pager().borrow().stats();
            assert_eq!(
                io.read_hits + io.read_faults,
                io.logical_reads,
                "hits + faults must partition the logical reads under COW versioning"
            );
            last_keys = m.pairs.iter().map(|pr| pr.key()).collect();
            ut.row(vec![
                (round + 1).to_string(),
                epoch.to_string(),
                ops.len().to_string(),
                secs(update_secs),
                secs(join_secs),
                io.logical_reads.to_string(),
                io.read_hits.to_string(),
                io.read_faults.to_string(),
                m.stats.result_pairs.to_string(),
            ]);
            update_entries.push(format!(
                "    {{\"round\": {}, \"epoch\": {epoch}, \"ops\": {}, \
                 \"update_secs\": {update_secs:.6}, \"join_secs\": {join_secs:.6}, \
                 \"logical_reads\": {}, \"read_hits\": {}, \"read_faults\": {}, \
                 \"prefetch_hits\": {}, \"result_pairs\": {}}}",
                round + 1,
                ops.len(),
                io.logical_reads,
                io.read_hits,
                io.read_faults,
                io.prefetch_hits,
                m.stats.result_pairs,
            ));
        }

        // The identically-mutated oracle: replay the same batches on a
        // fresh engine and require the same pairs in the same order.
        let mut oracle = build("oracle");
        for ops in &rounds {
            apply(&mut oracle, ops);
        }
        let m = oracle
            .query()
            .join("q", "p")
            .algorithm(RcjAlgorithm::Obj)
            .plan()
            .expect("oracle plan")
            .collect();
        let oracle_keys: Vec<(u64, u64)> = m.pairs.iter().map(|pr| pr.key()).collect();
        assert_eq!(
            last_keys, oracle_keys,
            "live-updated engine diverged from the identically-mutated oracle"
        );
    }
    std::fs::remove_dir_all(&scratch).ok();
    out.push_str(&t.render());
    out.push_str(
        "-- live updates: one seeded batch per round, epoch +1 per round, \
         replayed-history oracle asserted --\n",
    );
    out.push_str(&ut.render());

    // Provenance lives in the schema itself, not just README prose:
    // `available_cores` plus an explicit `single_core_container` flag,
    // so downstream trajectory tooling never misreads the ~1.0x
    // speedups a single-core recording produces as regressions. The
    // `storage` field keeps a disk-native recording from ever being
    // compared against a resident baseline (the hit/fault split is
    // prefetch-timing dependent on disk).
    let json = format!(
        "{{\n  \"experiment\": \"scaling\",\n  \"workload\": \"fig13+skew+ooc+updates\",\n  \
         \"algorithm\": \"OBJ\",\n  \"scale\": {},\n  \"storage\": \"{storage}\",\n  \
         \"available_cores\": {cores},\n  \
         \"single_core_container\": {},\n  \
         \"speedups_meaningful\": {},\n  \
         \"thread_counts\": {:?},\n  \"update_rounds\": {UPDATE_ROUNDS},\n  \
         \"entries\": [\n{}\n  ],\n  \"updates\": [\n{}\n  ]\n}}\n",
        cfg.scale,
        cores < 2,
        cores >= 2,
        SCALING_THREADS,
        json_entries.join(",\n"),
        update_entries.join(",\n")
    );
    let path = match &cfg.scaling_out {
        Some(p) => p.clone(),
        None => std::env::var("RINGJOIN_SCALING_OUT")
            .unwrap_or_else(|_| "BENCH_scaling.json".to_string()),
    };
    match std::fs::write(&path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "raw numbers written to {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// Shard counts swept by the [`serving`] experiment.
pub const SERVING_SHARDS: [usize; 3] = [1, 2, 4];

/// Requests measured per operation and shard count by [`serving`].
pub const SERVING_REQUESTS: usize = 5;

/// Concurrent-client counts measured by the [`serving`] experiment's
/// multi-session phase (at the largest shard count).
pub const SERVING_CLIENTS: [usize; 2] = [2, 4];

/// Nearest-rank percentile over an unsorted sample, in the sample's
/// unit. Empty samples report 0 (a fresh run, not a NaN).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Serving experiment (the sharded-server entry of the perf
/// trajectory): requests/sec against a live `ringjoin-server` over TCP
/// vs shard count, on the SP workload (Schools outer, PopulatedPlaces
/// inner).
///
/// Per shard count: bind an ephemeral-port server, `LOAD` both
/// datasets, then time [`SERVING_REQUESTS`] `JOIN` and `TOPK` requests
/// end-to-end (wire + fan-out + merge), recording throughput plus
/// nearest-rank p50/p99 latencies. The determinism guarantee is
/// asserted on every sweep — the join answer must be byte-identical
/// across shard counts.
///
/// A second phase re-runs the largest shard count with
/// [`SERVING_CLIENTS`] concurrent sessions, each its own TCP
/// connection issuing [`SERVING_REQUESTS`] joins: aggregate req/s and
/// cross-session p50/p99 are recorded, and every session's every
/// answer is checked byte-identical to the single-session baseline.
///
/// Raw numbers are written as JSON to `BENCH_serving.json` (override
/// with the `serving_out` field or `RINGJOIN_SERVING_OUT`); wall-clock
/// figures are advisory on shared runners, so regression gating keys
/// on the deterministic I/O counters of `BENCH_scaling.json` instead.
pub fn serving(cfg: &ExpConfig) -> String {
    use ringjoin_server::{Client, Server, ServerConfig};
    use std::time::Instant;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "== Serving: requests/sec vs shard count, SP workload over TCP \
         (scale {}, {cores} core(s) available) ==\n",
        cfg.scale
    );
    if cores < 2 {
        out.push_str(
            "note: single-core machine — shard scaling is capped at 1.0x; \
             the sweep still validates determinism and records raw numbers.\n",
        );
    }
    let p_items = gnis_like(
        GnisDataset::PopulatedPlaces,
        cfg.n(GnisDataset::PopulatedPlaces.full_cardinality()),
    );
    let q_items = gnis_like(
        GnisDataset::Schools,
        cfg.n(GnisDataset::Schools.full_cardinality()),
    );
    let k = 10usize;

    let mut t = Table::new(&[
        "shards",
        "load(s)",
        "join req/s",
        "join p50/p99 (ms)",
        "topk req/s",
        "topk p50/p99 (ms)",
        "pairs",
        "shards queried",
    ]);
    let mut json_entries: Vec<String> = Vec::new();
    let mut baseline_pairs: Option<Vec<(u64, u64)>> = None;
    for shards in SERVING_SHARDS {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            ..ServerConfig::default()
        })
        .expect("bind serving-bench server");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        let mut client = Client::connect(addr).expect("connect serving-bench client");

        let t0 = Instant::now();
        client
            .load("p", ringjoin_core::IndexKind::Rtree, &p_items)
            .expect("load p");
        client
            .load("q", ringjoin_core::IndexKind::Rtree, &q_items)
            .expect("load q");
        let load_secs = t0.elapsed().as_secs_f64();

        // Warm once, then measure; the warm-up answer doubles as the
        // determinism check across shard counts.
        let warm = client
            .join("q", "p", RcjAlgorithm::Auto, None)
            .expect("warm join");
        let keys: Vec<(u64, u64)> = warm.pairs.iter().map(|pr| pr.key()).collect();
        match &baseline_pairs {
            None => baseline_pairs = Some(keys),
            Some(base) => assert_eq!(base, &keys, "sharded answer diverged at {shards} shards"),
        }

        let mut join_ms: Vec<f64> = Vec::with_capacity(SERVING_REQUESTS);
        let t0 = Instant::now();
        for _ in 0..SERVING_REQUESTS {
            let r0 = Instant::now();
            client
                .join("q", "p", RcjAlgorithm::Auto, None)
                .expect("join");
            join_ms.push(r0.elapsed().as_secs_f64() * 1e3);
        }
        let join_rps = SERVING_REQUESTS as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let mut topk_ms: Vec<f64> = Vec::with_capacity(SERVING_REQUESTS);
        let t0 = Instant::now();
        for _ in 0..SERVING_REQUESTS {
            let r0 = Instant::now();
            client.top_k("q", "p", k).expect("topk");
            topk_ms.push(r0.elapsed().as_secs_f64() * 1e3);
        }
        let topk_rps = SERVING_REQUESTS as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        client.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        let (jp50, jp99) = (
            percentile(&mut join_ms, 50.0),
            percentile(&mut join_ms, 99.0),
        );
        let (tp50, tp99) = (
            percentile(&mut topk_ms, 50.0),
            percentile(&mut topk_ms, 99.0),
        );
        t.row(vec![
            shards.to_string(),
            secs(load_secs),
            format!("{join_rps:.2}"),
            format!("{jp50:.2}/{jp99:.2}"),
            format!("{topk_rps:.2}"),
            format!("{tp50:.2}/{tp99:.2}"),
            warm.pairs.len().to_string(),
            warm.shards_queried.to_string(),
        ]);
        json_entries.push(format!(
            "    {{\"shards\": {shards}, \"load_secs\": {load_secs:.6}, \
             \"join_req_per_sec\": {join_rps:.4}, \"topk_req_per_sec\": {topk_rps:.4}, \
             \"join_p50_ms\": {jp50:.4}, \"join_p99_ms\": {jp99:.4}, \
             \"topk_p50_ms\": {tp50:.4}, \"topk_p99_ms\": {tp99:.4}, \
             \"result_pairs\": {}, \"shards_queried\": {}}}",
            warm.pairs.len(),
            warm.shards_queried,
        ));
    }
    out.push_str(&t.render());

    // Concurrent phase: the largest shard count again, now with
    // [`SERVING_CLIENTS`] sessions hammering joins at once. Aggregate
    // throughput and cross-session tail latency are recorded; byte
    // identity against the single-session baseline is asserted on
    // every reply of every session.
    let shards = *SERVING_SHARDS.last().expect("non-empty shard sweep");
    let baseline = baseline_pairs.as_ref().expect("baseline recorded");
    let mut ct = Table::new(&["clients", "join req/s", "p50 (ms)", "p99 (ms)", "pairs"]);
    let mut conc_entries: Vec<String> = Vec::new();
    for clients in SERVING_CLIENTS {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            max_sessions: clients + 2,
            ..ServerConfig::default()
        })
        .expect("bind concurrent serving-bench server");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        let mut loader = Client::connect(addr).expect("connect loader");
        loader
            .load("p", ringjoin_core::IndexKind::Rtree, &p_items)
            .expect("load p");
        loader
            .load("q", ringjoin_core::IndexKind::Rtree, &q_items)
            .expect("load q");

        let t0 = Instant::now();
        let mut all_ms: Vec<f64> = Vec::with_capacity(clients * SERVING_REQUESTS);
        std::thread::scope(|scope| {
            let sessions: Vec<_> = (0..clients)
                .map(|_| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect session");
                        let mut ms = Vec::with_capacity(SERVING_REQUESTS);
                        for _ in 0..SERVING_REQUESTS {
                            let r0 = Instant::now();
                            let out = client
                                .join("q", "p", RcjAlgorithm::Auto, None)
                                .expect("concurrent join");
                            ms.push(r0.elapsed().as_secs_f64() * 1e3);
                            let keys: Vec<(u64, u64)> =
                                out.pairs.iter().map(|pr| pr.key()).collect();
                            assert_eq!(
                                &keys, baseline,
                                "concurrent session answer diverged from baseline"
                            );
                        }
                        ms
                    })
                })
                .collect();
            for s in sessions {
                all_ms.extend(s.join().expect("session thread"));
            }
        });
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let total = (clients * SERVING_REQUESTS) as f64;
        let rps = total / wall;
        loader.shutdown().expect("shutdown");
        handle.join().expect("server thread");

        let (p50, p99) = (percentile(&mut all_ms, 50.0), percentile(&mut all_ms, 99.0));
        ct.row(vec![
            clients.to_string(),
            format!("{rps:.2}"),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            baseline.len().to_string(),
        ]);
        conc_entries.push(format!(
            "    {{\"clients\": {clients}, \"shards\": {shards}, \
             \"join_req_per_sec\": {rps:.4}, \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \
             \"requests\": {}, \"result_pairs\": {}}}",
            clients * SERVING_REQUESTS,
            baseline.len(),
        ));
    }
    out.push_str(&format!(
        "-- concurrent sessions at {shards} shards (byte-identity asserted per reply) --\n"
    ));
    out.push_str(&ct.render());

    // Distributed phase: the same workload through the ShardBackend
    // dispatch layer — in-process worker threads vs remote workers
    // behind real TCP shard-worker servers (the full wire path: frame
    // encode, socket hop, leaf-tagged decode, global merge) at every
    // shard count. Byte identity against the phase-one baseline is
    // asserted per mode; full health is recorded as provenance.
    use ringjoin_server::{ShardWorkerServer, ShardedEngine, TopologyConfig, WorkerSpec};
    const REMOTE_KIND: &str = "in-process-tcp-workers";
    let mut dt = Table::new(&[
        "mode",
        "shards",
        "join req/s",
        "p50 (ms)",
        "p99 (ms)",
        "pairs",
        "all up",
    ]);
    let mut dist_entries: Vec<String> = Vec::new();
    for shards in SERVING_SHARDS {
        for mode in ["local-threads", "remote-procs"] {
            let workers = match mode {
                "local-threads" => WorkerSpec::Local,
                _ => WorkerSpec::Provision(std::sync::Arc::new(|_cell, _rep| {
                    let server = ShardWorkerServer::bind("127.0.0.1:0", None, 0)
                        .map_err(|e| e.to_string())?;
                    let addr = server.local_addr().to_string();
                    std::thread::spawn(move || {
                        let _ = server.serve();
                    });
                    Ok(addr)
                })),
            };
            let engine = ShardedEngine::with_topology(TopologyConfig {
                shards,
                workers,
                ..TopologyConfig::default()
            })
            .expect("distributed-bench topology");
            engine
                .load("p", p_items.clone(), ringjoin_core::IndexKind::Rtree)
                .expect("load p");
            engine
                .load("q", q_items.clone(), ringjoin_core::IndexKind::Rtree)
                .expect("load q");
            let warm = engine
                .join("q", "p", RcjAlgorithm::Auto, None)
                .expect("warm distributed join");
            let keys: Vec<(u64, u64)> = warm.pairs.iter().map(|pr| pr.key()).collect();
            let baseline = baseline_pairs.as_ref().expect("baseline recorded");
            assert_eq!(
                &keys, baseline,
                "distributed answer diverged ({mode} at {shards} shards)"
            );

            let mut ms: Vec<f64> = Vec::with_capacity(SERVING_REQUESTS);
            let t0 = Instant::now();
            for _ in 0..SERVING_REQUESTS {
                let r0 = Instant::now();
                engine
                    .join("q", "p", RcjAlgorithm::Auto, None)
                    .expect("distributed join");
                ms.push(r0.elapsed().as_secs_f64() * 1e3);
            }
            let rps = SERVING_REQUESTS as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            let up = engine
                .shard_health()
                .iter()
                .filter(|(state, _)| *state == "up")
                .count();
            let all_up = up == shards * engine.replicas();
            let replays = engine.replays_total();
            engine.shutdown();

            let (p50, p99) = (percentile(&mut ms, 50.0), percentile(&mut ms, 99.0));
            dt.row(vec![
                mode.to_string(),
                shards.to_string(),
                format!("{rps:.2}"),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
                warm.pairs.len().to_string(),
                all_up.to_string(),
            ]);
            dist_entries.push(format!(
                "    {{\"mode\": \"{mode}\", \"shards\": {shards}, \
                 \"join_req_per_sec\": {rps:.4}, \"join_p50_ms\": {p50:.4}, \
                 \"join_p99_ms\": {p99:.4}, \"result_pairs\": {}, \
                 \"deterministic\": true, \"all_shards_up\": {all_up}, \
                 \"replays_total\": {replays}, \"remote_kind\": \"{}\"}}",
                warm.pairs.len(),
                if mode == "local-threads" {
                    "none"
                } else {
                    REMOTE_KIND
                },
            ));
        }
    }
    out.push_str(
        "-- distributed: local worker threads vs remote TCP workers \
         (byte-identity asserted per mode) --\n",
    );
    out.push_str(&dt.render());

    // Recovery phase: a durable coordinator (WAL under a scratch
    // `data_dir`) loads the workload, applies deterministic insert
    // batches, and is torn down mid-life; reopening on the same
    // directory is timed, and the healed engine's join is checked
    // byte-for-byte against the pre-restart answer. The wall-clock is
    // advisory (replay cost scales with the logged history); the
    // byte-identity flag is the durability contract.
    let recovery_json = {
        use ringjoin_server::Mutation;
        const RECOVERY_BATCHES: usize = 8;
        const RECOVERY_BATCH_SIZE: usize = 16;
        let dir =
            std::env::temp_dir().join(format!("ringjoin-bench-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = |dir: &std::path::Path| {
            ShardedEngine::with_topology(TopologyConfig {
                shards,
                data_dir: Some(dir.to_path_buf()),
                ..TopologyConfig::default()
            })
            .expect("durable serving-bench topology")
        };
        let before = {
            let engine = durable(&dir);
            engine
                .load("p", p_items.clone(), ringjoin_core::IndexKind::Rtree)
                .expect("load p");
            engine
                .load("q", q_items.clone(), ringjoin_core::IndexKind::Rtree)
                .expect("load q");
            for b in 0..RECOVERY_BATCHES {
                let ops: Vec<Mutation> = (0..RECOVERY_BATCH_SIZE)
                    .map(|i| {
                        let n = b * RECOVERY_BATCH_SIZE + i;
                        let src = &p_items[n % p_items.len()];
                        Mutation::Insert(Item::new(10_000_000 + n as u64, src.point))
                    })
                    .collect();
                engine.update("p", ops).expect("recovery-phase batch");
            }
            let warm = engine
                .join("q", "p", RcjAlgorithm::Auto, None)
                .expect("pre-restart join");
            engine.shutdown();
            warm.pairs
        }; // dropped without any checkpoint: only the WAL survives
        let t0 = Instant::now();
        let engine = durable(&dir);
        let recovery_secs = t0.elapsed().as_secs_f64();
        let replayed = engine.recovered_epochs();
        let (wal_records, wal_bytes) = engine.wal_stats();
        let after = engine
            .join("q", "p", RcjAlgorithm::Auto, None)
            .expect("post-recovery join")
            .pairs;
        let byte_identical = after == before;
        assert!(byte_identical, "recovered join diverged from pre-restart");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = writeln!(
            out,
            "-- recovery at {shards} shards: {replayed} record(s) replayed in {} \
             ({wal_bytes} WAL byte(s)), byte-identical: {byte_identical} --",
            secs(recovery_secs)
        );
        format!(
            "    {{\"shards\": {shards}, \"records_replayed\": {replayed}, \
             \"recovery_secs\": {recovery_secs:.6}, \"wal_records\": {wal_records}, \
             \"wal_bytes\": {wal_bytes}, \"mutation_batches\": {RECOVERY_BATCHES}, \
             \"byte_identical\": {byte_identical}}}"
        )
    };

    let json = format!(
        "{{\n  \"experiment\": \"serving\",\n  \"workload\": \"SP\",\n  \
         \"transport\": \"tcp-loopback\",\n  \"scale\": {},\n  \
         \"available_cores\": {cores},\n  \"single_core_container\": {},\n  \
         \"speedups_meaningful\": {},\n  \"requests_per_mode\": {SERVING_REQUESTS},\n  \
         \"top_k\": {k},\n  \"shard_counts\": {:?},\n  \
         \"client_counts\": {:?},\n  \"entries\": [\n{}\n  ],\n  \
         \"concurrent\": [\n{}\n  ],\n  \"distributed\": [\n{}\n  ],\n  \
         \"recovery\":\n{}\n}}\n",
        cfg.scale,
        cores < 2,
        cores >= 2,
        SERVING_SHARDS,
        SERVING_CLIENTS,
        json_entries.join(",\n"),
        conc_entries.join(",\n"),
        dist_entries.join(",\n"),
        recovery_json
    );
    let path = match &cfg.serving_out {
        Some(p) => p.clone(),
        None => std::env::var("RINGJOIN_SERVING_OUT")
            .unwrap_or_else(|_| "BENCH_serving.json".to_string()),
    };
    match std::fs::write(&path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "raw numbers written to {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// [`run_rcj`](crate::harness::run_rcj) plus the result keys (in driver
/// order), for the determinism assertion of the scaling experiment.
/// Measurement discipline is `run_phase`'s, identical to every figure.
fn run_rcj_with_keys(w: &Workload, opts: &RcjOptions) -> (Measured, Vec<(u64, u64)>) {
    crate::harness::warm_executor(w, opts);
    let (out, mut m) = run_phase(w, || rcj_join(&w.tq, &w.tp, opts));
    m.stats = out.stats;
    (m, out.pairs.iter().map(|pr| pr.key()).collect())
}

/// All experiment ids, in presentation order.
pub const ALL: [&str; 15] = [
    "table2",
    "table4",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "baselines",
    "ext_costmodel",
    "scaling",
    "serving",
];

/// Runs one experiment by id.
pub fn run(id: &str, cfg: &ExpConfig) -> Option<String> {
    Some(match id {
        "table2" => table2(cfg),
        "table4" => table4(cfg),
        "fig10" => fig10(cfg),
        "fig11" => fig11(cfg),
        "fig12" => fig12(cfg),
        "fig13" => fig13(cfg),
        "fig14" => fig14(cfg),
        "fig15" => fig15(cfg),
        "fig16" => fig16(cfg),
        "fig17" => fig17(cfg),
        "fig18" => fig18(cfg),
        "baselines" => baselines(cfg),
        "ext_costmodel" => ext_costmodel(cfg),
        "scaling" => scaling(cfg),
        "serving" => serving(cfg),
        _ => return None,
    })
}

/// Helper for scaled workloads used by the criterion benches.
pub fn bench_workload(n: usize) -> Workload {
    Workload::build(uniform(n, 1111), uniform(n, 2222), DEFAULT_BUFFER_FRAC)
}

/// Item vector helper for criterion benches.
pub fn bench_items(n: usize, seed: u64) -> Vec<Item> {
    uniform(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every advertised experiment id dispatches; unknown ids do not.
    /// (Run at a tiny scale so the whole table executes in seconds.)
    #[test]
    fn dispatch_table_is_complete() {
        // Keep the scaling experiment's JSON out of the repo tree when
        // the dispatch test sweeps every experiment.
        let dir = std::env::temp_dir().join(format!(
            "ringjoin-bench-dispatch-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // A field, not a set_var: mutating the environment races with the
        // Executor::from_env reads of concurrently running tests.
        let cfg = ExpConfig {
            scale: 0.004,
            scaling_out: Some(
                dir.join("BENCH_scaling.json")
                    .to_string_lossy()
                    .into_owned(),
            ),
            serving_out: Some(
                dir.join("BENCH_serving.json")
                    .to_string_lossy()
                    .into_owned(),
            ),
            ..Default::default()
        };
        for id in ALL {
            assert!(
                run(id, &cfg).is_some(),
                "experiment {id} missing from dispatch"
            );
        }
        assert!(run("fig99", &cfg).is_none());
        assert!(run("", &cfg).is_none());
    }

    /// The disk-native sweep: every workload spilled to a page file,
    /// the recorded JSON labelled `on-disk` with `prefetch_hits` in
    /// every entry, and the out-of-core rows present.
    #[test]
    fn scaling_on_disk_records_prefetch_hits_and_ooc_rows() {
        let dir = std::env::temp_dir().join(format!(
            "ringjoin-bench-ondisk-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("BENCH_scaling.json");
        let cfg = ExpConfig {
            scale: 0.004,
            on_disk: true,
            scaling_out: Some(out_path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let report = scaling(&cfg);
        assert!(report.contains("on-disk storage"), "report: {report}");
        assert!(report.contains("live updates"), "report: {report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"storage\": \"on-disk\""));
        assert!(json.contains("\"prefetch_hits\""));
        assert!(json.contains("\"combination\": \"SP-OOC\""));
        // The live-update phase recorded one entry per round, epochs
        // counting 1..UPDATE_ROUNDS.
        assert!(json.contains("\"update_rounds\": 4"));
        for round in 1..=UPDATE_ROUNDS {
            assert!(
                json.contains(&format!("\"round\": {round}, \"epoch\": {round},")),
                "missing update round {round} in {json}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scaled_sizes_have_a_floor() {
        let cfg = ExpConfig {
            scale: 1e-9,
            ..Default::default()
        };
        assert_eq!(cfg.n(200_000), 10, "scale floor protects tiny runs");
        let full = ExpConfig {
            scale: 1.0,
            ..Default::default()
        };
        assert_eq!(full.n(177_983), 177_983);
    }

    #[test]
    fn distance_factor_preserves_density() {
        let cfg = ExpConfig {
            scale: 0.25,
            ..Default::default()
        };
        assert!((cfg.dist_factor() - 2.0).abs() < 1e-12);
        assert_eq!(
            ExpConfig {
                scale: 1.0,
                ..Default::default()
            }
            .dist_factor(),
            1.0
        );
    }
}
