//! Shared experiment machinery: workload setup, measurement, printing.

use ringjoin_core::{rcj_join, RcjOptions, RcjStats};
use ringjoin_rtree::{bulk_load, Item, RTree};
use ringjoin_storage::{CostModel, IoStats, MemDisk, Pager, SharedPager};
use std::time::Instant;

/// The paper's page size: 1 KB.
pub const PAGE_SIZE: usize = 1024;
/// The paper's default buffer: 1% of the sum of both tree sizes.
pub const DEFAULT_BUFFER_FRAC: f64 = 0.01;

/// A join workload: two trees sharing one pager/buffer, as in Section 5.
pub struct Workload {
    /// Shared pager (both trees, one LRU buffer).
    pub pager: SharedPager,
    /// Index of the inner dataset `P`.
    pub tp: RTree,
    /// Index of the outer dataset `Q`.
    pub tq: RTree,
}

impl Workload {
    /// Builds both R*-trees in one pager and sizes the buffer to
    /// `buffer_frac` of their combined page count (min 1 page).
    pub fn build(p_items: Vec<Item>, q_items: Vec<Item>, buffer_frac: f64) -> Workload {
        let pager = Pager::new(MemDisk::new(PAGE_SIZE), usize::MAX / 2).into_shared();
        let tp = bulk_load(pager.clone(), p_items);
        let tq = bulk_load(pager.clone(), q_items);
        let total_pages = (tp.node_pages() + tq.node_pages()) as f64;
        let buf = ((total_pages * buffer_frac).ceil() as usize).max(1);
        {
            let mut pg = pager.borrow_mut();
            pg.set_buffer_capacity(buf);
            pg.clear_buffer();
            pg.reset_stats();
        }
        Workload { pager, tp, tq }
    }

    /// Resizes the buffer to a fraction of the combined tree pages
    /// (Figure 15 sweeps this).
    pub fn set_buffer_frac(&mut self, frac: f64) {
        let total_pages = (self.tp.node_pages() + self.tq.node_pages()) as f64;
        let buf = ((total_pages * frac).ceil() as usize).max(1);
        let mut pg = self.pager.borrow_mut();
        pg.set_buffer_capacity(buf);
    }

    /// Resizes the buffer to an absolute page count (the out-of-core
    /// phase pins it to a fraction of the dataset, not of RAM).
    pub fn set_buffer_pages(&self, pages: usize) {
        self.pager.borrow_mut().set_buffer_capacity(pages.max(1));
    }

    /// Combined node pages of both trees (the disk-resident footprint).
    pub fn node_pages(&self) -> usize {
        (self.tp.node_pages() + self.tq.node_pages()) as usize
    }

    /// Moves the workload's page space into an on-disk page file: after
    /// this every buffer miss is a real file read, for both the
    /// sequential LRU path and the pool-framed parallel path.
    pub fn spill_to(&self, path: &std::path::Path) {
        self.pager
            .borrow_mut()
            .spill_to(path)
            .unwrap_or_else(|e| panic!("spilling workload pages to {}: {e}", path.display()));
    }

    /// Cold-starts the buffer and zeroes I/O statistics.
    pub fn reset(&self) {
        let mut pg = self.pager.borrow_mut();
        pg.clear_buffer();
        pg.reset_stats();
    }
}

/// One measured algorithm run.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Measured **wall-clock** seconds of the join. For sequential runs
    /// (every paper figure) the workload is single-threaded and
    /// memory-resident, so wall ≈ CPU; for parallel runs (the `scaling`
    /// experiment) this is elapsed time only — total CPU across workers
    /// is higher.
    pub cpu_secs: f64,
    /// Simulated I/O seconds: faults × 10 ms (the paper's model).
    pub io_secs: f64,
    /// Raw I/O counters for the run.
    pub io: IoStats,
    /// Algorithm counters (candidates, results, ...).
    pub stats: RcjStats,
}

impl Measured {
    /// Total cost as the paper reports it: I/O time + CPU time.
    pub fn total_secs(&self) -> f64 {
        self.cpu_secs + self.io_secs
    }
}

/// Pre-builds the pager's shared page source outside any timed window
/// when `opts` selects the parallel executor: the resident snapshot
/// (an O(database) copy, cached until the next write) or the reopened
/// page-store handle for spilled workloads. Without this, whichever
/// algorithm happens to run first on a workload would be charged for
/// the setup.
pub fn warm_executor(w: &Workload, opts: &RcjOptions) {
    if opts.executor.worker_count() > 1 {
        w.pager.borrow_mut().page_source();
    }
}

/// Runs one RCJ configuration cold (buffer cleared, stats zeroed) and
/// measures it.
pub fn run_rcj(w: &Workload, opts: &RcjOptions) -> Measured {
    warm_executor(w, opts);
    w.reset();
    let t0 = Instant::now();
    let out = rcj_join(&w.tq, &w.tp, opts);
    let cpu_secs = t0.elapsed().as_secs_f64();
    let io = w.pager.borrow().stats();
    Measured {
        cpu_secs,
        io_secs: CostModel::default().io_seconds(&io),
        io,
        stats: out.stats,
    }
}

/// Runs an arbitrary measured phase (used by the baseline-join figures).
pub fn run_phase<T>(w: &Workload, f: impl FnOnce() -> T) -> (T, Measured) {
    w.reset();
    let t0 = Instant::now();
    let value = f();
    let cpu_secs = t0.elapsed().as_secs_f64();
    let io = w.pager.borrow().stats();
    (
        value,
        Measured {
            cpu_secs,
            io_secs: CostModel::default().io_seconds(&io),
            io,
            stats: RcjStats::default(),
        },
    )
}

/// Minimal aligned-table printer for the experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with right-padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_core::RcjAlgorithm;
    use ringjoin_datagen::uniform;

    #[test]
    fn workload_buffer_is_fraction_of_trees() {
        let w = Workload::build(uniform(2000, 1), uniform(2000, 2), 0.5);
        let total = w.tp.node_pages() + w.tq.node_pages();
        assert_eq!(
            w.pager.borrow().buffer_capacity(),
            ((total as f64 * 0.5).ceil() as usize).max(1)
        );
    }

    #[test]
    fn run_rcj_measures_io_and_results() {
        let w = Workload::build(uniform(1500, 3), uniform(1500, 4), DEFAULT_BUFFER_FRAC);
        let m = run_rcj(&w, &RcjOptions::algorithm(RcjAlgorithm::Obj));
        assert!(m.stats.result_pairs > 0);
        assert!(m.io.read_faults > 0);
        assert!(m.io_secs > 0.0);
        // 10 ms per fault; written as `* 10.0 / 1000.0` so the rounding
        // matches `CostModel::io_seconds` exactly (0.010 has no exact
        // binary representation).
        assert_eq!(m.io_secs, m.io.faults() as f64 * 10.0 / 1000.0);
    }

    #[test]
    fn obj_beats_inj_on_node_accesses() {
        // The headline claim of the paper, at small scale: OBJ does fewer
        // logical node accesses (its CPU proxy) than INJ.
        let w = Workload::build(uniform(4000, 5), uniform(4000, 6), DEFAULT_BUFFER_FRAC);
        let inj = run_rcj(&w, &RcjOptions::algorithm(RcjAlgorithm::Inj));
        let obj = run_rcj(&w, &RcjOptions::algorithm(RcjAlgorithm::Obj));
        assert!(
            obj.io.logical_reads < inj.io.logical_reads,
            "OBJ {} >= INJ {}",
            obj.io.logical_reads,
            inj.io.logical_reads
        );
        assert_eq!(obj.stats.result_pairs, inj.stats.result_pairs);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "column"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     "));
    }
}
