//! Benchmarks of the two phases of the RCJ pipeline in isolation: the
//! filter (Algorithm 2 / 7) and the verification (Algorithm 3) — the
//! decomposition behind Figure 14.

use criterion::{criterion_group, criterion_main, Criterion};
use ringjoin_bench::harness::{Workload, DEFAULT_BUFFER_FRAC};
use ringjoin_core::{bulk_filter, filter, verify, RcjPair, RcjStats};
use ringjoin_datagen::uniform;
use ringjoin_geom::pt;
use std::hint::black_box;

fn bench_filter(c: &mut Criterion) {
    let w = Workload::build(uniform(20_000, 5), uniform(100, 6), DEFAULT_BUFFER_FRAC);
    let mut g = c.benchmark_group("filter_20k");
    g.bench_function("single_point", |b| {
        let q = pt(5000.0, 5000.0);
        b.iter(|| {
            let mut stats = RcjStats::default();
            black_box(filter(&w.tp, black_box(q), None, &mut stats))
        })
    });
    g.bench_function("bulk_leaf_of_30", |b| {
        let leaf = uniform(30, 77);
        b.iter(|| {
            let mut stats = RcjStats::default();
            black_box(bulk_filter(
                &w.tp,
                black_box(&leaf),
                false,
                false,
                &mut stats,
            ))
        })
    });
    g.bench_function("bulk_leaf_of_30_symmetric", |b| {
        let leaf = uniform(30, 77);
        b.iter(|| {
            let mut stats = RcjStats::default();
            black_box(bulk_filter(
                &w.tp,
                black_box(&leaf),
                true,
                false,
                &mut stats,
            ))
        })
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let w = Workload::build(uniform(20_000, 5), uniform(100, 6), DEFAULT_BUFFER_FRAC);
    // A realistic candidate batch: circles over pairs of nearby points.
    let probes = uniform(200, 99);
    let pairs: Vec<RcjPair> = probes
        .chunks(2)
        .map(|ch| RcjPair::new(ch[0], ch[1]))
        .collect();
    let mut g = c.benchmark_group("verify_20k");
    for (name, face) in [("face_rule_on", true), ("face_rule_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut alive = vec![true; pairs.len()];
                let mut stats = RcjStats::default();
                verify(&w.tp, black_box(&pairs), &mut alive, face, &mut stats);
                black_box(alive)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filter, bench_verify);
criterion_main!(benches);
