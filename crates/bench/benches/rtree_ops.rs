//! Micro-benchmarks of the R*-tree substrate: construction paths and the
//! query primitives the join algorithms are built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ringjoin_datagen::uniform;
use ringjoin_geom::{pt, Rect};
use ringjoin_rtree::{bulk_load, RTree};
use ringjoin_storage::{MemDisk, Pager, SharedPager};
use std::hint::black_box;

fn pager() -> SharedPager {
    Pager::new(MemDisk::new(1024), 4096).into_shared()
}

fn bench_build(c: &mut Criterion) {
    let items = uniform(10_000, 42);
    let mut g = c.benchmark_group("rtree_build_10k");
    g.sample_size(10);
    g.bench_function("str_bulk_load", |b| {
        b.iter_batched(
            || items.clone(),
            |its| black_box(bulk_load(pager(), its)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("rstar_insert", |b| {
        b.iter_batched(
            || items.clone(),
            |its| {
                let mut t = RTree::new(pager());
                for it in its {
                    t.insert(it);
                }
                black_box(t)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let items = uniform(50_000, 7);
    let tree = bulk_load(pager(), items);
    let mut g = c.benchmark_group("rtree_query_50k");
    g.bench_function("range_1pct_window", |b| {
        let w = Rect::new(pt(4000.0, 4000.0), pt(5000.0, 5000.0));
        b.iter(|| black_box(tree.range(black_box(w))))
    });
    g.bench_function("knn_10", |b| {
        b.iter(|| black_box(tree.knn(black_box(pt(5000.0, 5000.0)), 10)))
    });
    g.bench_function("inn_first_100", |b| {
        b.iter(|| {
            black_box(
                tree.nearest_iter(black_box(pt(2500.0, 7500.0)))
                    .take(100)
                    .count(),
            )
        })
    });
    g.bench_function("df_leaf_scan", |b| {
        b.iter(|| {
            let mut n = 0usize;
            tree.for_each_leaf_df(|_, node| n += node.entries.len());
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
