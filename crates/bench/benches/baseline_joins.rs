//! Benchmarks of the classical join baselines on the same substrate, for
//! the cost context of Section 5.1.

use criterion::{criterion_group, criterion_main, Criterion};
use ringjoin_bench::harness::{Workload, DEFAULT_BUFFER_FRAC};
use ringjoin_datagen::uniform;
use ringjoin_spatialjoin::{epsilon_join, k_closest_pairs, knn_join};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let w = Workload::build(uniform(10_000, 3), uniform(10_000, 4), DEFAULT_BUFFER_FRAC);
    let mut g = c.benchmark_group("baseline_joins_10k");
    g.sample_size(10);
    g.bench_function("epsilon_join_eps50", |b| {
        b.iter(|| {
            w.reset();
            black_box(epsilon_join(&w.tp, &w.tq, black_box(50.0)))
        })
    });
    g.bench_function("k_closest_pairs_1000", |b| {
        b.iter(|| {
            w.reset();
            black_box(k_closest_pairs(&w.tp, &w.tq, black_box(1000)))
        })
    });
    g.bench_function("knn_join_k1", |b| {
        b.iter(|| {
            w.reset();
            black_box(knn_join(&w.tp, &w.tq, black_box(1)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
