//! Micro-benchmarks of the disk-native read path: what a page access
//! costs when it misses the pool and reads the page file (cold fault),
//! when it finds the bytes already framed (hit), and when a prefetched
//! frame absorbs what would have been a fault (prefetch hit).
//!
//! The gap between `pool_fault_cyclic` and `prefetch_then_load_cyclic`
//! is the latency the scheduler-driven prefetcher can hide per page;
//! `pool_hit_warm` bounds the bookkeeping floor it can never beat.

use criterion::{criterion_group, criterion_main, Criterion};
use ringjoin_storage::{BufferPool, FilePageStore, PageId, PageStore};
use std::hint::black_box;
use std::path::PathBuf;

/// The paper's page size: 1 KB.
const PAGE_SIZE: usize = 1024;
/// Pages in the benchmark's page file (1 MB), touched once per
/// measured iteration of the scan benchmarks.
const SCAN: u32 = 1024;

/// Writes a `SCAN`-page file of deterministic junk and opens it as a
/// read-only page store.
fn store() -> (FilePageStore, PathBuf) {
    let path = std::env::temp_dir().join(format!(
        "ringjoin-bench-page-store-{}.rjp",
        std::process::id()
    ));
    let mut bytes = vec![0u8; SCAN as usize * PAGE_SIZE];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    std::fs::write(&path, &bytes).expect("write benchmark page file");
    let store = FilePageStore::open(&path, PAGE_SIZE).expect("open benchmark page file");
    (store, path)
}

fn bench_page_store(c: &mut Criterion) {
    let (store, path) = store();
    let mut g = c.benchmark_group("page_store");

    // Raw pread path, no pool: the floor cost of one page file read.
    g.bench_function("raw_read_scan", |b| {
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        b.iter(|| {
            for i in 0..SCAN {
                store.read_into(black_box(PageId(i)), &mut buf);
                black_box(&buf);
            }
        })
    });

    // Every load faults: a cyclic scan over twice the pool's capacity
    // defeats the clock sweep, so each access evicts a frame and reads
    // the file on demand.
    g.bench_function("pool_fault_cyclic", |b| {
        let pool = BufferPool::new(SCAN as usize / 2);
        b.iter(|| {
            for i in 0..SCAN {
                black_box(pool.load(black_box(PageId(i)), &store));
            }
        })
    });

    // Every load hits: the pool holds the whole file, so after the
    // warm-up pass each access is one striped-lock probe plus an `Arc`
    // clone of the frame's bytes.
    g.bench_function("pool_hit_warm", |b| {
        let pool = BufferPool::new(SCAN as usize * 2);
        for i in 0..SCAN {
            pool.load(PageId(i), &store);
        }
        b.iter(|| {
            for i in 0..SCAN {
                black_box(pool.load(black_box(PageId(i)), &store));
            }
        })
    });

    // Every load is a prefetch hit: the same fault-heavy cyclic scan,
    // but each page is staged into its frame first — the load then
    // claims the prefetched bytes instead of reading the file.
    g.bench_function("prefetch_then_load_cyclic", |b| {
        let pool = BufferPool::new(SCAN as usize / 2);
        b.iter(|| {
            for i in 0..SCAN {
                pool.prefetch(PageId(i), &store);
                black_box(pool.load(black_box(PageId(i)), &store));
            }
        })
    });

    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_page_store);
criterion_main!(benches);
