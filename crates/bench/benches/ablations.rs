//! Ablation benchmarks for the design choices the paper argues for:
//!
//! * symmetric pruning (Lemma 5, Section 4.2): OBJ vs BIJ;
//! * the face-inside-circle verification rule (Section 3.2);
//! * the depth-first outer order (Section 3.4) vs a shuffled order;
//! * forced reinsertion in the R*-tree build.

use criterion::{criterion_group, criterion_main, Criterion};
use ringjoin_bench::harness::{Workload, DEFAULT_BUFFER_FRAC};
use ringjoin_core::{rcj_join, OuterOrder, RcjAlgorithm, RcjOptions};
use ringjoin_datagen::{gaussian_clusters, uniform, PAPER_SIGMA};
use std::hint::black_box;

fn workload() -> Workload {
    Workload::build(uniform(8_000, 21), uniform(8_000, 22), DEFAULT_BUFFER_FRAC)
}

fn bench_symmetric_pruning(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_symmetric_pruning");
    g.sample_size(10);
    for (name, algo) in [
        ("bij_plain", RcjAlgorithm::Bij),
        ("obj_symmetric", RcjAlgorithm::Obj),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                w.reset();
                black_box(rcj_join(&w.tq, &w.tp, &RcjOptions::algorithm(algo)))
            })
        });
    }
    g.finish();
}

fn bench_face_rule(c: &mut Criterion) {
    // Clustered data makes MBRs dense, where the face rule pays off most.
    let w = Workload::build(
        gaussian_clusters(8_000, 5, PAPER_SIGMA, 31),
        gaussian_clusters(8_000, 5, PAPER_SIGMA, 32),
        DEFAULT_BUFFER_FRAC,
    );
    let mut g = c.benchmark_group("ablation_face_rule");
    g.sample_size(10);
    for (name, no_face) in [("face_rule_on", false), ("face_rule_off", true)] {
        g.bench_function(name, |b| {
            let opts = RcjOptions {
                no_face_rule: no_face,
                ..Default::default()
            };
            b.iter(|| {
                w.reset();
                black_box(rcj_join(&w.tq, &w.tp, &opts))
            })
        });
    }
    g.finish();
}

fn bench_outer_order(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("ablation_outer_order");
    g.sample_size(10);
    for (name, order) in [
        ("depth_first", OuterOrder::DepthFirst),
        ("shuffled", OuterOrder::Shuffled(42)),
    ] {
        g.bench_function(name, |b| {
            let opts = RcjOptions {
                outer_order: order,
                ..Default::default()
            };
            b.iter(|| {
                w.reset();
                black_box(rcj_join(&w.tq, &w.tp, &opts))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_symmetric_pruning,
    bench_face_rule,
    bench_outer_order
);
criterion_main!(benches);
