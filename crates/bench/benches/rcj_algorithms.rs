//! Head-to-head benchmark of the three RCJ algorithms (the wall-clock
//! view of Figures 13/16) on uniform and real-like data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ringjoin_bench::harness::{Workload, DEFAULT_BUFFER_FRAC};
use ringjoin_core::{rcj_join, rcj_self_join, RcjAlgorithm, RcjOptions};
use ringjoin_datagen::{gnis_like, uniform, GnisDataset};
use std::hint::black_box;

const ALGOS: [RcjAlgorithm; 3] = [RcjAlgorithm::Inj, RcjAlgorithm::Bij, RcjAlgorithm::Obj];

fn bench_uniform(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcj_uniform_8k");
    g.sample_size(10);
    let w = Workload::build(uniform(8_000, 1), uniform(8_000, 2), DEFAULT_BUFFER_FRAC);
    for algo in ALGOS {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            b.iter(|| {
                w.reset();
                black_box(rcj_join(&w.tq, &w.tp, &RcjOptions::algorithm(a)))
            })
        });
    }
    g.finish();
}

fn bench_real_like(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcj_gnis_sp_8k");
    g.sample_size(10);
    let w = Workload::build(
        gnis_like(GnisDataset::PopulatedPlaces, 8_000),
        gnis_like(GnisDataset::Schools, 8_000),
        DEFAULT_BUFFER_FRAC,
    );
    for algo in ALGOS {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            b.iter(|| {
                w.reset();
                black_box(rcj_join(&w.tq, &w.tp, &RcjOptions::algorithm(a)))
            })
        });
    }
    g.finish();
}

fn bench_self_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("rcj_self_join_8k");
    g.sample_size(10);
    let w = Workload::build(uniform(8_000, 9), vec![], DEFAULT_BUFFER_FRAC);
    for algo in [RcjAlgorithm::Inj, RcjAlgorithm::Obj] {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &a| {
            b.iter(|| {
                w.reset();
                black_box(rcj_self_join(&w.tp, &RcjOptions::algorithm(a)))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uniform, bench_real_like, bench_self_join);
criterion_main!(benches);
