//! Micro-benchmarks of the shared sharded buffer pool: the hit, miss
//! and eviction paths that sit on every parallel page access, single-
//! threaded and under 8-way contention.
//!
//! The pool is bookkeeping-only (bytes are served from the immutable
//! snapshot), so these numbers bound the *accounting overhead* the
//! shared-cache design adds to a page read — the quantity that must
//! stay small for the fault savings to be a net win.

use criterion::{criterion_group, criterion_main, Criterion};
use ringjoin_storage::{BufferPool, PageId};
use std::hint::black_box;

/// Pages touched per measured iteration of the scan benchmarks.
const SCAN: u32 = 1024;

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool_1thread");

    // Pure hit path: every access finds its page resident.
    g.bench_function("hit_scan_warm", |b| {
        let pool = BufferPool::new(SCAN as usize * 2);
        for i in 0..SCAN {
            pool.access(PageId(i));
        }
        b.iter(|| {
            for i in 0..SCAN {
                black_box(pool.access(black_box(PageId(i))));
            }
        })
    });

    // Pure miss/eviction path: a cyclic scan over twice the capacity
    // defeats the clock, so every access faults and evicts.
    g.bench_function("miss_evict_cyclic_scan", |b| {
        let pool = BufferPool::new(SCAN as usize / 2);
        b.iter(|| {
            for i in 0..SCAN {
                black_box(pool.access(black_box(PageId(i))));
            }
        })
    });

    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool_8threads");
    g.sample_size(10);

    // 8 workers hammering one warm pool: measures lock-stripe
    // contention on the hit path (each worker scans the same pages).
    g.bench_function("hit_scan_warm_shared", |b| {
        let pool = BufferPool::new(SCAN as usize * 2);
        for i in 0..SCAN {
            pool.access(PageId(i));
        }
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let pool = pool.clone();
                    scope.spawn(move || {
                        for i in 0..SCAN {
                            black_box(pool.access(black_box(PageId(i))));
                        }
                    });
                }
            })
        })
    });

    // 8 workers evicting concurrently: the worst case for the striped
    // locks (every access mutates a shard).
    g.bench_function("miss_evict_cyclic_shared", |b| {
        let pool = BufferPool::new(SCAN as usize / 2);
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..8u32 {
                    let pool = pool.clone();
                    scope.spawn(move || {
                        for i in 0..SCAN {
                            // Offset per thread so workers sweep
                            // different phases of the cycle.
                            black_box(pool.access(black_box(PageId((i + t * 128) % SCAN))));
                        }
                    });
                }
            })
        })
    });

    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
