//! The pluggable execution layer of the RCJ engine.
//!
//! The outer-leaf loop of every RCJ algorithm is embarrassingly parallel:
//! leaf groups of `T_Q` touch disjoint slices of the output and all index
//! access is read-only. What made the seed single-threaded was the
//! storage layer (one `Rc<RefCell<_>>` pager), not the algorithms — so
//! the executor parallelises at exactly that seam:
//!
//! * the outer leaf list (already in depth-first order) is partitioned
//!   into **contiguous** chunks, one per worker, preserving the
//!   Section 3.4 locality argument *within* each worker's buffer;
//! * each worker runs the unchanged per-leaf driver over an `Arc`-shared
//!   read-only [`PageSnapshot`](ringjoin_storage::PageSnapshot) through a
//!   private [`WorkerPager`](ringjoin_storage::WorkerPager) whose LRU
//!   capacity is the configured buffer budget divided by the worker
//!   count;
//! * results are concatenated **by chunk index** and per-worker counters
//!   are merged ([`RcjStats::merge`], [`Pager::absorb`](ringjoin_storage::Pager::absorb)),
//!   so a parallel run's output is identical to the sequential run's —
//!   same pairs, same order — and its aggregate statistics are the
//!   figures the paper reports.
//!
//! Workers are plain `std::thread::scope` threads: no work stealing, no
//! queues, no dependencies. Pairs leave the executor through the
//! caller's [`PairSink`](crate::PairSink); the sequential path honors a
//! sink's early-exit request leaf by leaf, the parallel path after its
//! deterministic merge.

use crate::index::{IndexProbe, NodeRef};
use crate::join::{leaf_items, process_leaf, RcjOptions};
use crate::stats::RcjStats;
use crate::stream::PairSink;
use ringjoin_storage::{IoStats, PageAccess, SharedPager, WorkerPager};
use std::rc::Rc;

/// Execution mode of an RCJ run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Executor {
    /// Process the outer leaves one by one through the shared pager —
    /// the paper's original cost model.
    Sequential,
    /// Partition the outer leaves into contiguous depth-first chunks and
    /// process them on `threads` worker threads. Output is byte-identical
    /// to [`Executor::Sequential`].
    Parallel {
        /// Number of worker threads (values ≤ 1 behave sequentially).
        threads: usize,
    },
}

impl Executor {
    /// An executor for `n` worker threads: [`Executor::Sequential`] for
    /// `n ≤ 1`, [`Executor::Parallel`] otherwise.
    pub fn threads(n: usize) -> Executor {
        if n <= 1 {
            Executor::Sequential
        } else {
            Executor::Parallel { threads: n }
        }
    }

    /// Reads the executor from the `RINGJOIN_THREADS` environment
    /// variable (unset or empty mean sequential). This is the
    /// [`Default`], so every entry point — tests included — can be
    /// switched to the parallel engine without touching code.
    ///
    /// # Panics
    /// Panics on a set-but-unparsable value, and on `0` — matching the
    /// CLI's `--threads` validation, a thread *count* must be at least
    /// one (unset the variable for the default). Silently coercing a
    /// typo to sequential would let a CI lane that exists to exercise
    /// the parallel engine go green while testing nothing parallel.
    pub fn from_env() -> Executor {
        match std::env::var("RINGJOIN_THREADS") {
            Ok(v) if v.trim().is_empty() => Executor::Sequential,
            Ok(v) => {
                let n: usize = v.trim().parse().unwrap_or_else(|_| {
                    panic!("RINGJOIN_THREADS must be a thread count, got {v:?}")
                });
                assert!(
                    n >= 1,
                    "RINGJOIN_THREADS must be at least 1 (got 0); unset it for the default"
                );
                Executor::threads(n)
            }
            Err(_) => Executor::Sequential,
        }
    }

    /// The number of workers this executor would use.
    pub fn worker_count(&self) -> usize {
        match self {
            Executor::Sequential => 1,
            Executor::Parallel { threads } => (*threads).max(1),
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Page-access handles for the two sides of a join.
///
/// Sequential runs hand out two clones of the shared pager(s); parallel
/// workers hand out their private worker pagers — one if both trees live
/// in the same pager (always true for self-joins), two otherwise.
pub(crate) enum Pagers<'a> {
    /// Both trees through one handle.
    Shared(&'a mut dyn PageAccess),
    /// Separate handles for the outer (`q`) and inner (`p`) tree.
    Split {
        /// Outer-tree access.
        q: &'a mut dyn PageAccess,
        /// Inner-tree access.
        p: &'a mut dyn PageAccess,
    },
}

impl Pagers<'_> {
    /// Access to the outer tree's pages.
    pub(crate) fn q(&mut self) -> &mut dyn PageAccess {
        match self {
            Pagers::Shared(pg) => *pg,
            Pagers::Split { q, .. } => *q,
        }
    }

    /// Access to the inner tree's pages.
    pub(crate) fn p(&mut self) -> &mut dyn PageAccess {
        match self {
            Pagers::Shared(pg) => *pg,
            Pagers::Split { p, .. } => *p,
        }
    }
}

/// Runs the per-leaf driver over `leaves` under the executor chosen in
/// `opts`, emitting pairs into `sink` in deterministic leaf order and
/// returning the accumulated CPU-side counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    let workers = opts.executor.worker_count().min(leaves.len().max(1));
    if workers <= 1 {
        return run_sequential(
            probe_q, probe_p, pager_q, pager_p, leaves, self_join, opts, sink,
        );
    }
    run_parallel(
        probe_q, probe_p, pager_q, pager_p, leaves, workers, self_join, opts, sink,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sequential<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    let mut stats = RcjStats::default();
    let mut pgq = pager_q;
    let mut pgp = pager_p;
    let mut pagers = Pagers::Split {
        q: &mut pgq,
        p: &mut pgp,
    };
    for leaf in leaves {
        let items = leaf_items(probe_q, pagers.q(), *leaf);
        if !process_leaf(
            probe_q,
            probe_p,
            &mut pagers,
            &items,
            self_join,
            opts,
            sink,
            &mut stats,
        ) {
            break;
        }
    }
    stats
}

/// Per-worker result, merged back in chunk order.
struct WorkerOutput {
    pairs: Vec<crate::RcjPair>,
    stats: RcjStats,
    io_q: IoStats,
    io_p: Option<IoStats>,
}

#[allow(clippy::too_many_arguments)]
fn run_parallel<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    workers: usize,
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    // One snapshot per distinct pager: trees sharing a pager (the paper's
    // setup, and every self-join) share one snapshot and one per-worker
    // buffer, exactly as they share one LRU buffer sequentially.
    let one_pager = Rc::ptr_eq(&pager_q, &pager_p);
    let snap_q = pager_q.borrow_mut().snapshot();
    let snap_p = if one_pager {
        None
    } else {
        Some(pager_p.borrow_mut().snapshot())
    };
    // Each worker gets an equal slice of the configured buffer budget, so
    // a parallel run uses the same total buffer memory as a sequential
    // one.
    let cap_q = (pager_q.borrow().buffer_capacity() / workers).max(1);
    let cap_p = (pager_p.borrow().buffer_capacity() / workers).max(1);

    let chunk_len = leaves.len().div_ceil(workers);
    let chunks: Vec<&[NodeRef]> = leaves.chunks(chunk_len).collect();

    let results: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let snap_q = snap_q.clone();
                let snap_p = snap_p.clone();
                scope.spawn(move || {
                    let mut pairs: Vec<crate::RcjPair> = Vec::new();
                    let mut stats = RcjStats::default();
                    let mut wq = WorkerPager::new(snap_q, cap_q);
                    let mut wp = snap_p.map(|s| WorkerPager::new(s, cap_p));
                    {
                        let mut pagers = match wp.as_mut() {
                            None => Pagers::Shared(&mut wq),
                            Some(wp) => Pagers::Split { q: &mut wq, p: wp },
                        };
                        for leaf in *chunk {
                            let items = leaf_items(probe_q, pagers.q(), *leaf);
                            process_leaf(
                                probe_q,
                                probe_p,
                                &mut pagers,
                                &items,
                                self_join,
                                opts,
                                &mut pairs,
                                &mut stats,
                            );
                        }
                    }
                    WorkerOutput {
                        pairs,
                        stats,
                        io_q: wq.stats(),
                        io_p: wp.map(|w| w.stats()),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("RCJ worker thread panicked"))
            .collect()
    });

    // Deterministic merge: chunk order is leaf order is sequential order.
    // The sink can stop the *reporting* early, but counters and I/O are
    // always fully absorbed — the work has already happened.
    let mut stats = RcjStats::default();
    let mut reporting = true;
    for w in results {
        stats.merge(w.stats);
        pager_q.borrow_mut().absorb(w.io_q);
        if let Some(io) = w.io_p {
            pager_p.borrow_mut().absorb(io);
        }
        if reporting {
            for pr in w.pairs {
                if !sink.push(pr) {
                    reporting = false;
                    break;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_constructor_folds_to_sequential() {
        assert_eq!(Executor::threads(0), Executor::Sequential);
        assert_eq!(Executor::threads(1), Executor::Sequential);
        assert_eq!(Executor::threads(4), Executor::Parallel { threads: 4 });
        assert_eq!(Executor::Sequential.worker_count(), 1);
        assert_eq!(Executor::Parallel { threads: 8 }.worker_count(), 8);
    }
}
