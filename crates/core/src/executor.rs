//! The pluggable execution layer of the RCJ engine.
//!
//! The outer-leaf loop of every RCJ algorithm is embarrassingly parallel:
//! leaf groups of `T_Q` touch disjoint slices of the output and all index
//! access is read-only. What made the seed single-threaded was the
//! storage layer (one `Rc<RefCell<_>>` pager), not the algorithms — so
//! the executor parallelises at exactly that seam. Two design decisions
//! carry the parallel cold-cache fix:
//!
//! * **One shared cache, not `workers` cold ones.** Every worker reads
//!   the `Arc`-shared read-only
//!   [`PageSnapshot`](ringjoin_storage::PageSnapshot) through a
//!   [`PooledPager`](ringjoin_storage::PooledPager) accounting into the
//!   pager's cached [shared pool](ringjoin_storage::Pager::shared_pool)
//!   — a sharded clock-sweep cache at the **same total budget** as the
//!   sequential LRU. Hot inner nodes faulted by one worker are hits for
//!   every other worker (and for later runs: the pool stays warm across
//!   joins over an unmodified pager).
//! * **Work stealing, merged by leaf index.** The outer leaf list is
//!   seeded into per-worker deques as contiguous chunks weighted by
//!   **leaf spatial extent** (a cheap locality-aware proxy for work on
//!   skewed `T_Q`), and an idle worker steals a bounded batch from the
//!   **tail** of a loaded peer — the end farthest from the victim's own
//!   scan position, so locality within each deque survives the steal.
//!   Every emitted pair is tagged with its **global leaf index** through
//!   the [`TaggedPairSink`](crate::TaggedPairSink) seam; a stable merge
//!   on that tag reproduces the sequential emission order byte for byte
//!   regardless of which worker processed which leaf — the same merge
//!   contract the sharded server uses.
//!
//! Per-worker [`RcjStats`] and [`IoStats`] are plain sums over leaf
//! groups, so merging them ([`RcjStats::merge`],
//! [`Pager::absorb`](ringjoin_storage::Pager::absorb)) yields the exact
//! sequential totals — parallel CPU counters and `logical_reads` are
//! deterministic; only the hit/fault split varies with scheduling (two
//! workers racing on a cold page may both fault it), which is why the
//! bench guard gates faults with a tolerance and logical reads exactly.
//!
//! Workers are plain `std::thread::scope` threads. Pairs leave the
//! executor through the caller's [`PairSink`](crate::PairSink); the
//! sequential path honors a sink's early-exit request leaf by leaf, the
//! parallel path after its deterministic merge.

use crate::index::{IndexProbe, NodeRef};
use crate::join::{leaf_items, process_leaf, RcjOptions, TagAdapter};
use crate::stats::RcjStats;
use crate::stream::PairSink;
use ringjoin_storage::{IoStats, PageAccess, PageId, PooledPager, Prefetcher, SharedPager};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Mutex;

/// Execution mode of an RCJ run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Executor {
    /// Process the outer leaves one by one through the shared pager —
    /// the paper's original cost model.
    Sequential,
    /// Schedule the outer leaves across `threads` work-stealing workers
    /// over the shared buffer pool. Output is byte-identical to
    /// [`Executor::Sequential`].
    Parallel {
        /// Number of worker threads (values ≤ 1 behave sequentially).
        threads: usize,
    },
}

impl Executor {
    /// An executor for `n` worker threads: [`Executor::Sequential`] for
    /// `n ≤ 1`, [`Executor::Parallel`] otherwise.
    pub fn threads(n: usize) -> Executor {
        if n <= 1 {
            Executor::Sequential
        } else {
            Executor::Parallel { threads: n }
        }
    }

    /// Reads the executor from the `RINGJOIN_THREADS` environment
    /// variable (unset or empty mean sequential). This is the
    /// [`Default`], so every entry point — tests included — can be
    /// switched to the parallel engine without touching code.
    ///
    /// # Panics
    /// Panics on a set-but-unparsable value, and on `0` — matching the
    /// CLI's `--threads` validation, a thread *count* must be at least
    /// one (unset the variable for the default). Silently coercing a
    /// typo to sequential would let a CI lane that exists to exercise
    /// the parallel engine go green while testing nothing parallel.
    pub fn from_env() -> Executor {
        match std::env::var("RINGJOIN_THREADS") {
            Ok(v) if v.trim().is_empty() => Executor::Sequential,
            Ok(v) => {
                let n: usize = v.trim().parse().unwrap_or_else(|_| {
                    panic!("RINGJOIN_THREADS must be a thread count, got {v:?}")
                });
                assert!(
                    n >= 1,
                    "RINGJOIN_THREADS must be at least 1 (got 0); unset it for the default"
                );
                Executor::threads(n)
            }
            Err(_) => Executor::Sequential,
        }
    }

    /// The number of workers this executor would use.
    pub fn worker_count(&self) -> usize {
        match self {
            Executor::Sequential => 1,
            Executor::Parallel { threads } => (*threads).max(1),
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Page-access handles for the two sides of a join.
///
/// Sequential runs hand out two clones of the shared pager(s); parallel
/// workers hand out their private pooled pagers — one if both trees live
/// in the same pager (always true for self-joins), two otherwise.
pub(crate) enum Pagers<'a> {
    /// Both trees through one handle.
    Shared(&'a mut dyn PageAccess),
    /// Separate handles for the outer (`q`) and inner (`p`) tree.
    Split {
        /// Outer-tree access.
        q: &'a mut dyn PageAccess,
        /// Inner-tree access.
        p: &'a mut dyn PageAccess,
    },
}

impl Pagers<'_> {
    /// Access to the outer tree's pages.
    pub(crate) fn q(&mut self) -> &mut dyn PageAccess {
        match self {
            Pagers::Shared(pg) => *pg,
            Pagers::Split { q, .. } => *q,
        }
    }

    /// Access to the inner tree's pages.
    pub(crate) fn p(&mut self) -> &mut dyn PageAccess {
        match self {
            Pagers::Shared(pg) => *pg,
            Pagers::Split { p, .. } => *p,
        }
    }
}

/// Runs the per-leaf driver over `leaves` under the executor chosen in
/// `opts`, emitting pairs into `sink` in deterministic leaf order and
/// returning the accumulated CPU-side counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    let workers = opts.executor.worker_count().min(leaves.len().max(1));
    if workers <= 1 {
        return run_sequential(
            probe_q, probe_p, pager_q, pager_p, leaves, self_join, opts, sink,
        );
    }
    run_parallel(
        probe_q, probe_p, pager_q, pager_p, leaves, workers, self_join, opts, sink,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sequential<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    let mut stats = RcjStats::default();
    let mut pgq = pager_q;
    let mut pgp = pager_p;
    let mut pagers = Pagers::Split {
        q: &mut pgq,
        p: &mut pgp,
    };
    for leaf in leaves {
        let items = leaf_items(probe_q, pagers.q(), *leaf);
        if !process_leaf(
            probe_q,
            probe_p,
            &mut pagers,
            &items,
            self_join,
            opts,
            sink,
            &mut stats,
        ) {
            break;
        }
    }
    stats
}

// ---------------------------------------------------------------------
// The work-stealing scheduler
// ---------------------------------------------------------------------

/// Upper bound on the leaves moved by one steal. Stealing half the
/// victim's tail balances fast, but an unbounded grab from a huge deque
/// would just relocate the imbalance; a batch bound keeps every steal a
/// small, cache-friendly contiguous run.
const STEAL_BATCH: usize = 32;

/// Number of upcoming leaf pages a worker hands the background
/// [`Prefetcher`] each time it refreshes its lookahead (store-backed
/// runs only). Deep enough that staging overlaps the verification of
/// the current chunk, shallow enough not to flood a tight buffer
/// budget with pages that would be evicted before their turn.
const PREFETCH_WINDOW: usize = 16;

/// Scheduling weight of one outer leaf group: its spatial extent
/// (rectangle half-perimeter). On skewed `T_Q` a wide leaf spans more of
/// the inner tree — more filter sub-trees opened, more verification
/// probes — so extent-weighted seeding hands each worker comparable
/// *work*, not just comparable leaf counts. The `1.0` floor keeps
/// zero-extent leaves (duplicate-heavy data) and non-finite regions (a
/// root standing in for the whole plane) schedulable.
fn leaf_weight(leaf: &NodeRef) -> f64 {
    let margin = leaf.region.margin();
    if margin.is_finite() && margin > 0.0 {
        1.0 + margin
    } else {
        1.0
    }
}

/// Seeds the per-worker deques: contiguous runs of leaf positions whose
/// cumulative extent weight is balanced across workers. Contiguity
/// preserves the Section 3.4 locality argument within each deque; the
/// weighting front-loads balance so stealing is a correction, not the
/// primary scheduler.
fn seed_queues(leaves: &[NodeRef], workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    let total: f64 = leaves.iter().map(leaf_weight).sum();
    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    let mut chunk = 0usize;
    let mut acc = 0.0;
    for (pos, leaf) in leaves.iter().enumerate() {
        queues[chunk].push_back(pos);
        acc += leaf_weight(leaf);
        // Cut to the next chunk once this one carries its share of the
        // total weight; an over-heavy leaf (one giant group on skewed
        // data) closes its chunk immediately instead of dragging
        // neighbours along.
        while chunk + 1 < workers && acc >= total * (chunk + 1) as f64 / workers as f64 {
            chunk += 1;
        }
    }
    queues.into_iter().map(Mutex::new).collect()
}

/// Takes the next leaf position for worker `w`: its own deque's front,
/// or a bounded batch stolen from the tail of the first non-empty peer
/// (scanned round-robin from `w + 1`). Returns `None` when every deque
/// is empty at scan time — a racing peer may still repopulate one, in
/// which case that peer simply finishes the work itself.
fn next_leaf(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(pos) = queues[w].lock().expect("worker deque poisoned").pop_front() {
        return Some(pos);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        let mut vq = queues[victim].lock().expect("worker deque poisoned");
        let len = vq.len();
        if len == 0 {
            continue;
        }
        // Bounded tail steal: up to half the victim's remaining leaves,
        // capped at STEAL_BATCH, taken from the end farthest from the
        // victim's own scan position.
        let take = len.div_ceil(2).min(STEAL_BATCH);
        let mut stolen = vq.split_off(len - take);
        drop(vq);
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            queues[w]
                .lock()
                .expect("worker deque poisoned")
                .extend(stolen);
        }
        return first;
    }
    None
}

/// Per-worker result, merged deterministically by leaf tag.
struct WorkerOutput {
    /// Pairs tagged with the position of their outer leaf group in the
    /// scheduled leaf list.
    tagged: Vec<(usize, crate::RcjPair)>,
    stats: RcjStats,
    io_q: IoStats,
    io_p: Option<IoStats>,
}

#[allow(clippy::too_many_arguments)]
fn run_parallel<PQ: IndexProbe, PP: IndexProbe>(
    probe_q: &PQ,
    probe_p: &PP,
    pager_q: SharedPager,
    pager_p: SharedPager,
    leaves: &[NodeRef],
    workers: usize,
    self_join: bool,
    opts: &RcjOptions,
    sink: &mut dyn PairSink,
) -> RcjStats {
    // One page source and one shared pool per distinct pager: trees
    // sharing a pager (the paper's setup, and every self-join) share
    // both, exactly as they share one LRU buffer sequentially. The pool
    // is cached in the pager, so repeated runs keep it warm. A
    // disk-native pager hands out its store instead of a resident
    // snapshot — the pool's frames become the only RAM copy.
    let one_pager = Rc::ptr_eq(&pager_q, &pager_p);
    let (source_q, pool_q, epoch_q) = {
        let mut pg = pager_q.borrow_mut();
        (pg.page_source(), pg.shared_pool(), pg.epoch())
    };
    let source_pool_p = if one_pager {
        None
    } else {
        let mut pg = pager_p.borrow_mut();
        Some((pg.page_source(), pg.shared_pool(), pg.epoch()))
    };

    // The prefetch schedule rides on the outer (`T_Q`) store: the
    // extent-weighted chunks the workers claim are known in advance, so
    // a background thread can stage each worker's upcoming leaf pages
    // while it verifies the current ones.
    let prefetcher = source_q.store().map(|store| {
        Prefetcher::spawn_versioned(pool_q.clone(), std::sync::Arc::clone(store), epoch_q)
    });

    let queues = seed_queues(leaves, workers);

    let results: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let source_q = source_q.clone();
                let source_pool_p = source_pool_p.clone();
                let pool_q = pool_q.clone();
                let queues = &queues;
                let prefetcher = prefetcher.as_ref();
                scope.spawn(move || {
                    let mut tagged: Vec<(usize, crate::RcjPair)> = Vec::new();
                    let mut stats = RcjStats::default();
                    let mut wq = PooledPager::versioned(source_q, pool_q, epoch_q);
                    let mut wp =
                        source_pool_p.map(|(s, pool, e)| PooledPager::versioned(s, pool, e));
                    {
                        let mut pagers = match wp.as_mut() {
                            None => Pagers::Shared(&mut wq),
                            Some(wp) => Pagers::Split { q: &mut wq, p: wp },
                        };
                        // Claims until the next lookahead refresh: each
                        // refresh stages the next window of this
                        // worker's own deque (steals land on the tail,
                        // so the front stays an accurate schedule).
                        let mut until_refresh = 0usize;
                        while let Some(pos) = next_leaf(queues, w) {
                            if let Some(pf) = prefetcher {
                                if until_refresh == 0 {
                                    let upcoming: Vec<PageId> = {
                                        let dq = queues[w].lock().expect("worker deque poisoned");
                                        dq.iter()
                                            .take(PREFETCH_WINDOW)
                                            .map(|&p| leaves[p].page)
                                            .collect()
                                    };
                                    until_refresh = (upcoming.len() / 2).max(1);
                                    pf.request(upcoming);
                                } else {
                                    until_refresh -= 1;
                                }
                            }
                            let items = leaf_items(probe_q, pagers.q(), leaves[pos]);
                            let mut tag_sink = TagAdapter {
                                leaf: pos,
                                inner: &mut tagged,
                            };
                            process_leaf(
                                probe_q,
                                probe_p,
                                &mut pagers,
                                &items,
                                self_join,
                                opts,
                                &mut tag_sink,
                                &mut stats,
                            );
                        }
                    }
                    WorkerOutput {
                        tagged,
                        stats,
                        io_q: wq.stats(),
                        io_p: wp.map(|w| w.stats()),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("RCJ worker thread panicked"))
            .collect()
    });

    // Deterministic merge: every leaf is processed by exactly one worker
    // and its pairs are contiguous in that worker's emission order, so a
    // stable sort on the leaf tag reconstructs the sequential sequence
    // exactly — whichever worker ended up with which leaf. Counters and
    // I/O are always fully absorbed (the work has already happened); the
    // sink can only stop the *reporting* early.
    let mut stats = RcjStats::default();
    let mut merged: Vec<(usize, crate::RcjPair)> = Vec::new();
    for w in results {
        stats.merge(w.stats);
        pager_q.borrow_mut().absorb(w.io_q);
        if let Some(io) = w.io_p {
            pager_p.borrow_mut().absorb(io);
        }
        merged.extend(w.tagged);
    }
    merged.sort_by_key(|(leaf, _)| *leaf);
    for (_, pr) in merged {
        if !sink.push(pr) {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::{pt, Rect};

    #[test]
    fn threads_constructor_folds_to_sequential() {
        assert_eq!(Executor::threads(0), Executor::Sequential);
        assert_eq!(Executor::threads(1), Executor::Sequential);
        assert_eq!(Executor::threads(4), Executor::Parallel { threads: 4 });
        assert_eq!(Executor::Sequential.worker_count(), 1);
        assert_eq!(Executor::Parallel { threads: 8 }.worker_count(), 8);
    }

    fn leaf(w: f64) -> NodeRef {
        NodeRef {
            page: ringjoin_storage::PageId(0),
            region: Rect::new(pt(0.0, 0.0), pt(w, 0.0)),
        }
    }

    #[test]
    fn seeding_is_contiguous_complete_and_weight_balanced() {
        // Nine leaves: one hugely wide, eight slim. Equal-count chunking
        // would give worker 0 the giant *plus* a third of the rest;
        // weighted seeding isolates the giant.
        let leaves: Vec<NodeRef> = [1000.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
            .iter()
            .map(|&w| leaf(w))
            .collect();
        let queues = seed_queues(&leaves, 3);
        let chunks: Vec<Vec<usize>> = queues
            .iter()
            .map(|q| q.lock().unwrap().iter().copied().collect())
            .collect();
        // Complete and contiguous.
        let flat: Vec<usize> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, (0..9).collect::<Vec<_>>());
        // The giant leaf dominates two-thirds of the weight: it must sit
        // alone in its chunk (its midpoint lands in worker 0's band and
        // every slim leaf's midpoint lands past it).
        assert_eq!(chunks[0], vec![0]);
        assert!(!chunks[1].is_empty() || !chunks[2].is_empty());
    }

    #[test]
    fn degenerate_weights_still_schedule_every_leaf() {
        // Zero-extent and non-finite regions fall back to unit weight.
        let inf = f64::INFINITY;
        let leaves = vec![
            leaf(0.0),
            NodeRef {
                page: ringjoin_storage::PageId(0),
                region: Rect::new(pt(-inf, -inf), pt(inf, inf)),
            },
            leaf(0.0),
            leaf(5.0),
        ];
        let queues = seed_queues(&leaves, 8);
        let mut flat: Vec<usize> = queues
            .iter()
            .flat_map(|q| q.lock().unwrap().iter().copied().collect::<Vec<_>>())
            .collect();
        flat.sort_unstable();
        assert_eq!(flat, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stealing_drains_everything_exactly_once() {
        let leaves: Vec<NodeRef> = (0..100).map(|_| leaf(1.0)).collect();
        // Pathological seed: everything on worker 0 — the other three
        // live purely off steals.
        let queues: Vec<Mutex<VecDeque<usize>>> = vec![
            Mutex::new((0..100).collect()),
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::new()),
            Mutex::new(VecDeque::new()),
        ];
        let _ = leaves;
        let processed: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let queues = &queues;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(pos) = next_leaf(queues, w) {
                            mine.push(pos);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<usize> = processed.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..100).collect::<Vec<_>>(),
            "lost or duplicated leaves"
        );
    }
}
