//! The ring-constrained join (RCJ) — the core contribution of Yiu,
//! Karras and Mamoulis, *"Ring-constrained Join: Deriving Fair Middleman
//! Locations from Pointsets via a Geometric Constraint"* (EDBT 2008).
//!
//! Given two pointsets `P` and `Q` indexed by disk-based R*-trees, the RCJ
//! returns every pair `⟨p, q⟩` whose smallest enclosing circle contains no
//! other point of `P ∪ Q`. The circle center is a *fair middleman
//! location*: equidistant from `p` and `q`, minimising the maximum
//! distance to both, and — because the circle is empty — guaranteed that
//! `p` and `q` are the nearest members of their datasets for anyone
//! standing there. Unlike the ε-distance join or k-closest-pairs, the
//! constraint is purely geometric and parameter-free, and adapts to local
//! data density.
//!
//! # The session API: Engine → Plan → Stream
//!
//! The documented entry point is the three-layer query API:
//!
//! * [`Engine`] — a session owning a shared pager and named datasets
//!   ([`Engine::load`] + [`LoadBuilder::index`] with
//!   [`IndexKind::Rtree`] or [`IndexKind::Quadtree`]); datasets persist
//!   across queries and the two sides of one join may mix index kinds.
//! * [`Plan`] — [`Engine::query`] builders ([`QueryBuilder::join`],
//!   [`QueryBuilder::self_join`], [`QueryBuilder::top_k`], ...) resolve
//!   into an inspectable plan: concrete algorithm (with
//!   [`RcjAlgorithm::Auto`] resolved by the [`planner`]'s calibrated
//!   cost model), index kinds, executor, and per-algorithm cost
//!   estimates. `Plan` implements `Display` — this is the CLI's
//!   `explain`.
//! * [`RcjStream`] — [`Plan::stream`] consumes results lazily
//!   (leaf-batch by leaf-batch, bounded memory, early exit for top-k),
//!   while [`Plan::collect`] materialises the classic [`RcjOutput`].
//!
//! # Quickstart
//!
//! ```
//! use ringjoin_core::{Engine, IndexKind, RcjAlgorithm};
//! use ringjoin_geom::{pt, Item};
//!
//! let mut engine = Engine::new();
//! let restaurants =
//!     (0..50).map(|i| Item::new(i, pt((i % 7) as f64 * 13.0, (i % 5) as f64 * 17.0)));
//! let residences =
//!     (0..80).map(|i| Item::new(i, pt((i % 11) as f64 * 9.0, (i % 13) as f64 * 7.0)));
//! engine.load("restaurants", restaurants.collect()).index(IndexKind::Rtree);
//! engine.load("residences", residences.collect()).index(IndexKind::Quadtree);
//!
//! // Inspect before running: Auto resolves via the cost model.
//! let plan = engine.query().join("residences", "restaurants").plan()?;
//! assert_ne!(plan.algorithm(), RcjAlgorithm::Auto);
//! println!("{plan}");
//!
//! // Stream lazily (bounded memory) ...
//! for pair in plan.stream().take(3) {
//!     println!("recycling station at {} serving restaurant {} and residence {}",
//!              pair.center(), pair.p.id, pair.q.id);
//! }
//! // ... or materialise the classic output shape.
//! let out = plan.collect();
//! assert!(out.stats.result_pairs > 0);
//! # Ok::<(), ringjoin_core::EngineError>(())
//! ```
//!
//! # Compat: the one-shot function API
//!
//! The paper-shaped one-shot calls remain and delegate to the same
//! sink-based drivers the engine runs (every pre-engine test doubles as
//! a regression test for the redesign):
//!
//! ```
//! use ringjoin_core::{rcj_join, RcjOptions};
//! use ringjoin_rtree::{bulk_load, Item};
//! use ringjoin_storage::{MemDisk, Pager};
//! use ringjoin_geom::pt;
//!
//! let pager = Pager::new(MemDisk::new(1024), 32).into_shared();
//! let restaurants = (0..50).map(|i| Item::new(i, pt((i % 7) as f64 * 13.0, (i % 5) as f64 * 17.0)));
//! let residences = (0..80).map(|i| Item::new(i, pt((i % 11) as f64 * 9.0, (i % 13) as f64 * 7.0)));
//! let tp = bulk_load(pager.clone(), restaurants.collect());
//! let tq = bulk_load(pager.clone(), residences.collect());
//!
//! let out = rcj_join(&tq, &tp, &RcjOptions::default());
//! assert!(out.stats.result_pairs > 0);
//! ```
//!
//! # Algorithms
//!
//! * [`rcj_brute`] — the `O(|P|·|Q|)` oracle.
//! * [`RcjAlgorithm::Inj`] — Index Nested Loop Join (Algorithms 2–5): a
//!   per-point filter built on incremental nearest-neighbour search with
//!   the half-plane pruning of Lemmas 1/3, followed by bulk circle
//!   verification (Algorithm 3).
//! * [`RcjAlgorithm::Bij`] — Bulk INJ (Algorithms 6–7): one filter and
//!   one verification per *leaf* of `T_Q`, slashing tree traversals.
//! * [`RcjAlgorithm::Obj`] — Optimized BIJ (Lemma 5): sibling points of
//!   the same leaf prune for each other at zero extra I/O — the paper's
//!   winner across all experiments.
//! * [`RcjAlgorithm::Auto`] — defer to the [`planner`]'s calibrated
//!   cost model at plan time.
//!
//! Plus, beyond the paper's evaluation:
//!
//! * [`rcj_self_join`] — the self-RCJ (postboxes application).
//! * [`metric_rcj`] — the Section 6 "future work" generalisation to
//!   `L1`/`L∞` metrics, via the mirror-point reformulation of Lemma 1.
//! * [`RcjIndex`]/[`IndexProbe`] — the drivers are index-agnostic: the
//!   same INJ/BIJ/OBJ code runs over R*-trees, quadtrees, and any index
//!   that can expand a node into items and region-bounded children.
//! * [`Executor`] — sequential or deterministic multi-threaded
//!   execution ([`Executor::Parallel`] output is identical to
//!   sequential, pair for pair); `RINGJOIN_THREADS` switches the
//!   session default.
//! * [`PairSink`]/[`rcj_join_into`] — the drivers emit pairs instead of
//!   materialising them; streams, early exit and custom sinks all hang
//!   off this seam.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod brute;
mod engine;
mod executor;
mod filter;
mod index;
mod join;
pub mod metric_rcj;
mod pair;
pub mod planner;
mod stats;
mod stream;
mod verify;

pub use brute::{brute_candidates, rcj_brute, rcj_brute_self};
pub use engine::{
    DatasetHandle, Engine, EngineError, IndexKind, LoadBuilder, Plan, QueryBuilder, UpdateBuilder,
};
pub use executor::Executor;
pub use filter::{bulk_filter, bulk_filter_with, filter, filter_with, BulkFilterResult};
pub use index::{IndexEntry, IndexProbe, NodeRef, QuadTreeProbe, RTreeProbe, RcjIndex};
pub use join::{
    leaf_regions, rcj_join, rcj_join_into, rcj_join_leaves_into, rcj_join_leaves_pooled,
    rcj_self_join, rcj_self_join_into, rcj_self_join_leaves_into, rcj_self_join_leaves_pooled,
    OuterOrder, RcjAlgorithm, RcjOptions, RcjOutput,
};
pub use pair::{pair_keys, sort_by_diameter, RcjPair};
pub use stats::RcjStats;
pub use stream::{
    rcj_self_stream, rcj_self_stream_by_diameter, rcj_self_stream_by_diameter_in, rcj_stream,
    rcj_stream_by_diameter, rcj_stream_by_diameter_in, PairSink, RcjStream, TaggedPairSink,
};
pub use verify::{verify, verify_with};
