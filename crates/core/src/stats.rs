//! Run statistics for the RCJ algorithms.

/// Counters reported by an RCJ run.
///
/// `candidate_pairs` is the paper's Table 4 metric: the total number of
/// `⟨p, q⟩` pairs that survive the filter step and must be verified. The
/// other counters support the cost decomposition of Figures 13–18 (I/O
/// statistics live in [`ringjoin_storage::IoStats`], captured by the
/// caller around the join).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RcjStats {
    /// Pairs produced by the filter step (Table 4's "number of candidate
    /// pairs").
    pub candidate_pairs: u64,
    /// Pairs that survived verification — the RCJ result cardinality.
    pub result_pairs: u64,
    /// Entries deheaped across all filter invocations (CPU-side filter
    /// effort).
    pub filter_heap_pops: u64,
    /// Index nodes expanded (= pages read) by the filter step. Together
    /// with [`RcjStats::verify_node_visits`] this splits the total node
    /// accesses by phase — the per-phase unit costs the
    /// [`planner`](crate::planner) calibrates.
    pub filter_node_reads: u64,
    /// Nodes visited by the verification step (CPU-side verify effort,
    /// and the verify-phase share of node accesses).
    pub verify_node_visits: u64,
}

impl RcjStats {
    /// Component-wise sum — aggregates per-leaf runs, and per-worker
    /// counters of a parallel run into the same totals a sequential run
    /// reports (every counter is a plain sum over leaf groups, so the
    /// merge of any partition equals the sequential figure).
    pub fn merge(&mut self, other: RcjStats) {
        self.candidate_pairs += other.candidate_pairs;
        self.result_pairs += other.result_pairs;
        self.filter_heap_pops += other.filter_heap_pops;
        self.filter_node_reads += other.filter_node_reads;
        self.verify_node_visits += other.verify_node_visits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_of_any_partition_equals_the_total() {
        // Chunked counters merged in any order sum to the same totals —
        // the invariant the parallel executor's aggregation rests on.
        let parts = [
            RcjStats {
                candidate_pairs: 5,
                result_pairs: 1,
                filter_heap_pops: 100,
                filter_node_reads: 20,
                verify_node_visits: 7,
            },
            RcjStats::default(),
            RcjStats {
                candidate_pairs: 3,
                result_pairs: 2,
                filter_heap_pops: 50,
                filter_node_reads: 10,
                verify_node_visits: 11,
            },
        ];
        let mut fwd = RcjStats::default();
        let mut rev = RcjStats::default();
        for s in parts {
            fwd.merge(s);
        }
        for s in parts.iter().rev() {
            rev.merge(*s);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.candidate_pairs, 8);
        assert_eq!(fwd.filter_heap_pops, 150);
        assert_eq!(fwd.filter_node_reads, 30);
        assert_eq!(fwd.verify_node_visits, 18);
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = RcjStats {
            candidate_pairs: 1,
            result_pairs: 2,
            filter_heap_pops: 3,
            filter_node_reads: 5,
            verify_node_visits: 4,
        };
        a.merge(RcjStats {
            candidate_pairs: 10,
            result_pairs: 20,
            filter_heap_pops: 30,
            filter_node_reads: 50,
            verify_node_visits: 40,
        });
        assert_eq!(a.candidate_pairs, 11);
        assert_eq!(a.result_pairs, 22);
        assert_eq!(a.filter_heap_pops, 33);
        assert_eq!(a.filter_node_reads, 55);
        assert_eq!(a.verify_node_visits, 44);
    }
}
