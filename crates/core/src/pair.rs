//! Result pairs of the ring-constrained join.

use ringjoin_geom::{Circle, Point};
use ringjoin_rtree::Item;
use std::fmt;

/// A result pair `⟨p, q⟩` of the ring-constrained join.
///
/// Each pair is semantically a *circle*: the smallest circle enclosing `p`
/// and `q`. The paper's applications consume the derived data —
/// [`RcjPair::center`] is the fair middleman location (equidistant from
/// both facilities, minimising the maximum distance to them), and
/// [`RcjPair::radius`] is the "ring" radius used to rank recommendations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RcjPair {
    /// The member of the inner dataset `P`.
    pub p: Item,
    /// The member of the outer dataset `Q`.
    pub q: Item,
}

impl RcjPair {
    /// Creates a pair.
    #[inline]
    pub fn new(p: Item, q: Item) -> Self {
        RcjPair { p, q }
    }

    /// The smallest circle enclosing the pair.
    #[inline]
    pub fn circle(&self) -> Circle {
        Circle::from_diameter(self.p.point, self.q.point)
    }

    /// The fair middleman location: the circle center.
    #[inline]
    pub fn center(&self) -> Point {
        self.p.point.midpoint(self.q.point)
    }

    /// The ring radius (half the pair distance).
    #[inline]
    pub fn radius(&self) -> f64 {
        0.5 * self.p.point.dist(self.q.point)
    }

    /// The ring diameter (the pair distance) — the sort key suggested for
    /// the tourist-recommendation application.
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.p.point.dist(self.q.point)
    }

    /// Identity key `(p.id, q.id)` for set comparisons between algorithms.
    #[inline]
    pub fn key(&self) -> (u64, u64) {
        (self.p.id, self.q.id)
    }
}

impl fmt::Display for RcjPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<p{}, q{}> center={} r={:.3}",
            self.p.id,
            self.q.id,
            self.center(),
            self.radius()
        )
    }
}

/// Sorts pairs by ascending ring diameter (tourist-recommendation order),
/// ties broken by ids for determinism.
pub fn sort_by_diameter(pairs: &mut [RcjPair]) {
    pairs.sort_by(|a, b| {
        a.diameter()
            .total_cmp(&b.diameter())
            .then_with(|| a.key().cmp(&b.key()))
    });
}

/// Normalises a pair list into sorted `(p.id, q.id)` keys, the canonical
/// form used when comparing algorithm outputs.
pub fn pair_keys(pairs: &[RcjPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = pairs.iter().map(RcjPair::key).collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;

    #[test]
    fn derived_geometry() {
        let pair = RcjPair::new(Item::new(1, pt(0.0, 0.0)), Item::new(2, pt(6.0, 8.0)));
        assert_eq!(pair.center(), pt(3.0, 4.0));
        assert_eq!(pair.radius(), 5.0);
        assert_eq!(pair.diameter(), 10.0);
        assert_eq!(pair.circle().center, pt(3.0, 4.0));
        assert_eq!(pair.key(), (1, 2));
    }

    #[test]
    fn diameter_sort_is_deterministic() {
        let a = RcjPair::new(Item::new(1, pt(0.0, 0.0)), Item::new(1, pt(2.0, 0.0)));
        let b = RcjPair::new(Item::new(2, pt(0.0, 0.0)), Item::new(2, pt(1.0, 0.0)));
        let c = RcjPair::new(Item::new(0, pt(5.0, 0.0)), Item::new(9, pt(7.0, 0.0)));
        let mut v = vec![a, b, c];
        sort_by_diameter(&mut v);
        assert_eq!(v[0].key(), (2, 2));
        // a and c tie on diameter; id order breaks the tie.
        assert_eq!(v[1].key(), (0, 9));
        assert_eq!(v[2].key(), (1, 1));
    }

    #[test]
    fn center_is_equidistant_fairness() {
        let pair = RcjPair::new(Item::new(1, pt(1.0, 7.0)), Item::new(2, pt(-3.0, 2.0)));
        let c = pair.center();
        assert!((c.dist(pair.p.point) - c.dist(pair.q.point)).abs() < 1e-12);
        assert!((c.dist(pair.p.point) - pair.radius()).abs() < 1e-12);
    }
}
