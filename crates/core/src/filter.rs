//! The filter step (Algorithms 2 and 7 of the paper), index-agnostic.
//!
//! Given a query point `q ∈ Q`, the filter retrieves from the index of
//! `P` a *candidate set* `S` of points that may form RCJ pairs with `q`.
//! It runs the incremental nearest-neighbour traversal of Hjaltason &
//! Samet from `q`, interleaved with the half-plane pruning of Lemmas 1
//! and 3: an entry strictly inside `Ψ⁻(q, p)` for any already-discovered
//! candidate `p ∈ S` can be discarded — points (Lemma 1) outright,
//! subtree regions (Lemma 3) with their whole subtree. Because points
//! arrive in ascending distance from `q`, close points enter `S` first
//! and their pruning regions are largest (Section 3.1), which is what
//! keeps `|S|` tiny in practice.
//!
//! The traversal is written against [`IndexProbe`], so the same code
//! filters through R-tree MBRs and quadtree quadrant regions — Lemma 3
//! only needs the region to bound the subtree's points. Page access goes
//! through an explicit [`PageAccess`], so the same code also runs on the
//! shared sequential pager and on per-worker buffers.
//!
//! The bulk variant (Algorithm 7) filters a whole leaf node of `T_Q` in a
//! single traversal of `T_P`, ordered by distance from the leaf centroid;
//! an entry is discarded only when it is prunable *for every* `q` in the
//! leaf. With the symmetric rule of Lemma 5 enabled (the OBJ algorithm),
//! sibling points of `q`'s leaf act as additional pruners at zero I/O
//! cost.

use crate::index::{IndexEntry, IndexProbe, NodeRef, RcjIndex};
use crate::stats::RcjStats;
use ringjoin_geom::{prunes, HalfPlane, Item, Point, Rect};
use ringjoin_storage::PageAccess;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue element of the filter traversal, ordered by ascending
/// `key` (squared distance from the reference point).
struct HeapElem {
    key: f64,
    seq: u64,
    target: Target,
}

enum Target {
    /// An unvisited node with its subtree-bounding region (kept for
    /// deheap-time Lemma 3 tests).
    Node(NodeRef),
    /// A data point awaiting its Lemma 1 test.
    Point(Item),
}

impl PartialEq for HeapElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapElem {}
impl PartialOrd for HeapElem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapElem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Algorithm 2: candidate retrieval for a single query point, through
/// the tree's own pager (see [`filter_with`] for the executor-facing
/// variant).
///
/// `exclude_id` removes one identity from consideration — the query point
/// itself during a self-join, where `T_P` is the same tree that contains
/// `q` and the degenerate pair `⟨q, q⟩` must not be generated.
///
/// Returns the candidate set `S` in the order of discovery (ascending
/// distance from `q`).
pub fn filter<I: RcjIndex>(
    tree_p: &I,
    q: Point,
    exclude_id: Option<u64>,
    stats: &mut RcjStats,
) -> Vec<Item> {
    let mut pg = tree_p.pager();
    filter_with(&tree_p.probe(), &mut pg, q, exclude_id, stats)
}

/// [`filter`] over an explicit probe and page-access handle — the form
/// the executor's workers call with their private buffers.
pub fn filter_with(
    probe: &impl IndexProbe,
    pg: &mut dyn PageAccess,
    q: Point,
    exclude_id: Option<u64>,
    stats: &mut RcjStats,
) -> Vec<Item> {
    let mut s: Vec<Item> = Vec::new();
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(HeapElem {
        key: 0.0,
        seq,
        target: Target::Node(probe.root()),
    });

    let mut entries: Vec<IndexEntry> = Vec::new();
    while let Some(elem) = heap.pop() {
        stats.filter_heap_pops += 1;
        match elem.target {
            Target::Node(node) => {
                // Lemma 3 at deheap time: S may have grown since this
                // entry was enqueued.
                if rect_pruned(q, &s, node.region) {
                    continue;
                }
                entries.clear();
                stats.filter_node_reads += 1;
                probe.expand(pg, node, &mut entries);
                for e in &entries {
                    seq += 1;
                    match e {
                        IndexEntry::Item(it) => heap.push(HeapElem {
                            key: q.dist_sq(it.point),
                            seq,
                            target: Target::Point(*it),
                        }),
                        IndexEntry::Node(child) => heap.push(HeapElem {
                            key: child.region.mindist_sq(q),
                            seq,
                            target: Target::Node(*child),
                        }),
                    }
                }
            }
            Target::Point(it) => {
                if exclude_id == Some(it.id) {
                    continue;
                }
                if !point_pruned(q, &s, it.point) {
                    s.push(it);
                }
            }
        }
    }
    s
}

/// Lemma 1: is `x` inside `Ψ⁻(q, p)` for some pruner `p`?
#[inline]
fn point_pruned(q: Point, pruners: &[Item], x: Point) -> bool {
    pruners.iter().any(|p| prunes(q, p.point, x))
}

/// Lemma 3: is the region fully inside `Ψ⁻(q, p)` for some pruner `p`?
#[inline]
fn rect_pruned(q: Point, pruners: &[Item], r: Rect) -> bool {
    pruners
        .iter()
        .any(|p| HalfPlane::pruning_region(q, p.point).contains_rect(r))
}

/// Output of the bulk filter: one candidate set per point of the leaf.
pub struct BulkFilterResult {
    /// `sets[i]` is the candidate set of `leaf_points[i]`.
    pub sets: Vec<Vec<Item>>,
}

/// Algorithm 7 + Section 4.2: bulk candidate retrieval for all points of
/// one leaf node of `T_Q`, through the tree's own pager (see
/// [`bulk_filter_with`] for the executor-facing variant).
///
/// * `leaf_points` — the points `V` of the leaf.
/// * `symmetric` — enables the Lemma 5 rule (the OBJ optimisation):
///   points of `V − {q}` prune on behalf of `q` even before `q.S` has any
///   member.
/// * `exclude_same_id` — self-join mode: a `T_P` point with the same id
///   as `q` is `q` itself and never becomes its own candidate.
pub fn bulk_filter<I: RcjIndex>(
    tree_p: &I,
    leaf_points: &[Item],
    symmetric: bool,
    exclude_same_id: bool,
    stats: &mut RcjStats,
) -> BulkFilterResult {
    let mut pg = tree_p.pager();
    bulk_filter_with(
        &tree_p.probe(),
        &mut pg,
        leaf_points,
        symmetric,
        exclude_same_id,
        stats,
    )
}

/// [`bulk_filter`] over an explicit probe and page-access handle.
pub fn bulk_filter_with(
    probe: &impl IndexProbe,
    pg: &mut dyn PageAccess,
    leaf_points: &[Item],
    symmetric: bool,
    exclude_same_id: bool,
    stats: &mut RcjStats,
) -> BulkFilterResult {
    let n = leaf_points.len();
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); n];
    if n == 0 {
        return BulkFilterResult { sets };
    }

    // The reference location: centroid of the leaf's points.
    let centroid = {
        let (sx, sy) = leaf_points.iter().fold((0.0f64, 0.0f64), |(sx, sy), it| {
            (sx + it.point.x, sy + it.point.y)
        });
        Point::new(sx / n as f64, sy / n as f64)
    };

    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(HeapElem {
        key: 0.0,
        seq,
        target: Target::Node(probe.root()),
    });

    // Pruner enumeration for leaf point `i`: its candidate set plus (under
    // the symmetric rule) every sibling point of the leaf.
    let rect_pruned_for = |i: usize, sets: &[Vec<Item>], r: Rect| -> bool {
        let q = leaf_points[i].point;
        if rect_pruned(q, &sets[i], r) {
            return true;
        }
        if symmetric {
            for (j, sib) in leaf_points.iter().enumerate() {
                if j != i && HalfPlane::pruning_region(q, sib.point).contains_rect(r) {
                    return true;
                }
            }
        }
        false
    };
    let point_pruned_for = |i: usize, sets: &[Vec<Item>], x: Point| -> bool {
        let q = leaf_points[i].point;
        if point_pruned(q, &sets[i], x) {
            return true;
        }
        if symmetric {
            for (j, sib) in leaf_points.iter().enumerate() {
                if j != i && prunes(q, sib.point, x) {
                    return true;
                }
            }
        }
        false
    };

    let mut entries: Vec<IndexEntry> = Vec::new();
    while let Some(elem) = heap.pop() {
        stats.filter_heap_pops += 1;
        match elem.target {
            Target::Node(node) => {
                // Discard only if prunable with respect to *every* leaf
                // point (Algorithm 7, line 7).
                if (0..n).all(|i| rect_pruned_for(i, &sets, node.region)) {
                    continue;
                }
                entries.clear();
                stats.filter_node_reads += 1;
                probe.expand(pg, node, &mut entries);
                for e in &entries {
                    seq += 1;
                    match e {
                        IndexEntry::Item(it) => heap.push(HeapElem {
                            key: centroid.dist_sq(it.point),
                            seq,
                            target: Target::Point(*it),
                        }),
                        IndexEntry::Node(child) => heap.push(HeapElem {
                            key: child.region.mindist_sq(centroid),
                            seq,
                            target: Target::Node(*child),
                        }),
                    }
                }
            }
            Target::Point(it) => {
                for i in 0..n {
                    if exclude_same_id && it.id == leaf_points[i].id {
                        continue;
                    }
                    if !point_pruned_for(i, &sets, it.point) {
                        sets[i].push(it);
                    }
                }
            }
        }
    }

    BulkFilterResult { sets }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;
    use ringjoin_rtree::{bulk_load, RTree};
    use ringjoin_storage::{MemDisk, Pager};

    fn tree_of(points: &[(f64, f64)]) -> RTree {
        let pager = Pager::new(MemDisk::new(1024), 64).into_shared();
        let items: Vec<Item> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(i as u64, pt(x, y)))
            .collect();
        bulk_load(pager, items)
    }

    /// Brute-force reference for the candidate set: `p` is a candidate of
    /// `q` iff no *closer-or-equal ranked* point of `P` prunes it. The
    /// incremental discovery order means `S` is exactly the set of points
    /// not pruned by any point of `P` that precedes them in distance
    /// order and itself survived.
    fn naive_filter(points: &[(f64, f64)], q: Point) -> Vec<u64> {
        let mut order: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (q.dist_sq(pt(x, y)), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut s: Vec<usize> = Vec::new();
        for &(_, i) in &order {
            let x = pt(points[i].0, points[i].1);
            if !s
                .iter()
                .any(|&j| prunes(q, pt(points[j].0, points[j].1), x))
            {
                s.push(i);
            }
        }
        let mut ids: Vec<u64> = s.into_iter().map(|i| i as u64).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn filter_matches_naive_reference() {
        let points: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let a = i as f64 * 0.7;
                (
                    5000.0 + 4000.0 * (a.sin() * (i as f64 / 200.0)),
                    5000.0 + 4000.0 * (a.cos() * ((i * 7 % 200) as f64 / 200.0)),
                )
            })
            .collect();
        let tree = tree_of(&points);
        let mut stats = RcjStats::default();
        for q in [pt(5000.0, 5000.0), pt(100.0, 9000.0), pt(7200.0, 3500.0)] {
            let mut got: Vec<u64> = filter(&tree, q, None, &mut stats)
                .into_iter()
                .map(|it| it.id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, naive_filter(&points, q), "at query {q:?}");
        }
        assert!(stats.filter_heap_pops > 0);
    }

    #[test]
    fn filter_excludes_identity() {
        let points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
        let tree = tree_of(&points);
        let mut stats = RcjStats::default();
        let s = filter(&tree, pt(1.0, 0.0), Some(1), &mut stats);
        assert!(s.iter().all(|it| it.id != 1));
        assert!(!s.is_empty());
    }

    #[test]
    fn figure6_walkthrough_prunes_far_groups() {
        // Figure 6 of the paper: q on the left, four leaf groups; after
        // p1 and p4 enter S, everything else is pruned.
        let q = pt(0.0, 5.0);
        // e1 group (closest): p1 nearest to q, p2, p3 behind it.
        // e2 group: p4 survives (different direction), p5, p6 behind.
        // e3, e4 groups: far right, fully pruned.
        let points = [
            (2.0, 5.0), // 0 = p1
            (3.2, 6.4), // 1 = p2 (behind p1's line, same direction)
            (3.4, 4.0), // 2 = p3
            (1.5, 0.5), // 3 = p4 (south direction, inside p1's line x=2)
            (3.6, 0.2), // 4 = p5
            (4.0, 1.4), // 5 = p6
            (9.0, 6.0), // 6..: far east, pruned by p1
            (9.5, 5.5),
            (10.0, 4.0),
            (11.0, 6.5),
            (12.0, 5.0),
            (12.5, 3.5),
        ];
        let tree = tree_of(&points);
        let mut stats = RcjStats::default();
        let s: Vec<u64> = filter(&tree, q, None, &mut stats)
            .into_iter()
            .map(|it| it.id)
            .collect();
        assert!(s.contains(&0), "p1 must be a candidate: {s:?}");
        assert!(s.contains(&3), "p4 must be a candidate: {s:?}");
        assert!(
            !s.iter().any(|id| *id >= 6),
            "far-east groups must be pruned: {s:?}"
        );
        assert_eq!(s, naive_filter(&points, q));
    }

    #[test]
    fn bulk_filter_supersets_single_filters() {
        // Per the paper, BIJ's candidate sets can only be larger than
        // INJ's (the traversal order is optimised for the centroid, so
        // per-point pruning kicks in later) — but each per-point set must
        // still contain every true candidate, i.e. be a superset of the
        // single filter run *restricted to unpruned points*... The precise
        // invariant testable here: every single-filter candidate appears
        // in the bulk set for the same q.
        let points: Vec<(f64, f64)> = (0..150)
            .map(|i| {
                (
                    ((i * 37) % 100) as f64 * 10.0,
                    ((i * 61) % 100) as f64 * 10.0,
                )
            })
            .collect();
        let tree = tree_of(&points);
        let leaf: Vec<Item> = [(120.0, 340.0), (180.0, 410.0), (90.0, 400.0)]
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Item::new(1000 + i as u64, pt(x, y)))
            .collect();
        let mut stats = RcjStats::default();
        let bulk = bulk_filter(&tree, &leaf, false, false, &mut stats);
        for (i, q) in leaf.iter().enumerate() {
            let single = filter(&tree, q.point, None, &mut stats);
            let bulk_ids: std::collections::HashSet<u64> =
                bulk.sets[i].iter().map(|it| it.id).collect();
            for it in single {
                assert!(
                    bulk_ids.contains(&it.id),
                    "bulk set for q{i} lost candidate {}",
                    it.id
                );
            }
        }
    }

    #[test]
    fn symmetric_pruning_never_loses_true_candidates_and_shrinks_sets() {
        let points: Vec<(f64, f64)> = (0..200)
            .map(|i| (((i * 53) % 97) as f64 * 11.0, ((i * 29) % 89) as f64 * 13.0))
            .collect();
        let tree = tree_of(&points);
        let leaf: Vec<Item> = (0..8)
            .map(|i| {
                Item::new(
                    2000 + i as u64,
                    pt(300.0 + 40.0 * i as f64, 500.0 + 25.0 * (i % 3) as f64),
                )
            })
            .collect();
        let mut stats = RcjStats::default();
        let plain = bulk_filter(&tree, &leaf, false, false, &mut stats);
        let symmetric = bulk_filter(&tree, &leaf, true, false, &mut stats);
        let plain_total: usize = plain.sets.iter().map(Vec::len).sum();
        let sym_total: usize = symmetric.sets.iter().map(Vec::len).sum();
        assert!(
            sym_total <= plain_total,
            "symmetric pruning must not enlarge candidate sets ({sym_total} > {plain_total})"
        );
        // No point pruned by a sibling may be a genuine RCJ partner: if
        // sibling q' prunes p for q, then q' is strictly inside
        // circle(q, p), so the pair is invalid. Verify via brute force.
        for (i, q) in leaf.iter().enumerate() {
            let sym_ids: std::collections::HashSet<u64> =
                symmetric.sets[i].iter().map(|it| it.id).collect();
            for p in &plain.sets[i] {
                if !sym_ids.contains(&p.id) {
                    // must be invalidated by some sibling
                    let invalidated = leaf.iter().enumerate().any(|(j, sib)| {
                        j != i
                            && ringjoin_geom::Circle::strictly_contains_diameter(
                                sib.point, q.point, p.point,
                            )
                    });
                    assert!(invalidated, "symmetric rule wrongly pruned p{}", p.id);
                }
            }
        }
    }
}
