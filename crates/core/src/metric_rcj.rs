//! RCJ under non-Euclidean metrics — the Section 6 "future work"
//! generalisation.
//!
//! The paper's closing section asks how the ring constraint transfers to
//! the Manhattan distance and other metrics. We adopt the canonical
//! *midpoint ball* (see [`ringjoin_geom::Metric`]) as the ring: centered
//! at the coordinate-wise midpoint with radius `d(p, q) / 2` — a smallest
//! enclosing ball in every `Lp` metric.
//!
//! # The mirror-point reformulation of Lemma 1
//!
//! The Euclidean pruning rule generalises cleanly. For a query `q` and a
//! known point `s`, define the **mirror point** `m = 2s − q` (the
//! reflection of `q` through `s`). Then for *any* norm:
//!
//! ```text
//! s strictly inside midball(q, x)   ⟺   d(x, m) < d(x, q)
//! ```
//!
//! because `2·(s − mid(q, x)) = m − x`, so `2·d(s, mid) < d(q, x)` is
//! exactly `d(x, m) < d(x, q)`. Under `L2` the region
//! `{x : d(x, m) < d(x, q)}` is the open half-plane beyond the bisector
//! of `q` and `m` — precisely the `Ψ⁻(q, s)` of Lemma 1 (the bisector of
//! `q` and its reflection through `s` is the line through `s`
//! perpendicular to `qs`). Under `L1`/`L∞` the bisector region is not
//! convex, so rectangle containment cannot be decided by corner tests;
//! we prune an MBR `e` with the conservative sufficient condition
//! `maxdist(m, e) < mindist(q, e)` and prune individual points exactly.
//!
//! This keeps the algorithm exact in every metric, with weaker (but
//! sound) subtree pruning outside `L2`.

use crate::pair::RcjPair;
use crate::stats::RcjStats;
use ringjoin_geom::{Metric, Point, Rect};
use ringjoin_rtree::{Item, NodeEntry, RTree};
use ringjoin_storage::PageId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Output of a metric RCJ run.
#[derive(Clone, Debug)]
pub struct MetricRcjOutput {
    /// Result pairs (same shape as the Euclidean join's).
    pub pairs: Vec<RcjPair>,
    /// Run counters.
    pub stats: RcjStats,
}

/// Computes the ring-constrained join under an arbitrary [`Metric`].
///
/// For [`Metric::L2`] this produces exactly the same result set as
/// [`crate::rcj_join`] (property-tested); for `L1`/`L∞` it produces the
/// midpoint-ball RCJ of the paper's future-work section.
pub fn metric_rcj_join(tq: &RTree, tp: &RTree, metric: Metric) -> MetricRcjOutput {
    run(tq, tp, metric, false)
}

/// Self-join variant of [`metric_rcj_join`]; pairs reported once with
/// `p.id < q.id`.
pub fn metric_rcj_self_join(tree: &RTree, metric: Metric) -> MetricRcjOutput {
    run(tree, tree, metric, true)
}

fn run(tq: &RTree, tp: &RTree, metric: Metric, self_join: bool) -> MetricRcjOutput {
    let mut out = MetricRcjOutput {
        pairs: Vec::new(),
        stats: RcjStats::default(),
    };
    let mut leaves: Vec<PageId> = Vec::new();
    tq.for_each_leaf_df(|page, _| leaves.push(page));
    for page in leaves {
        let node = tq.read_node(page);
        for q in node.items() {
            let exclude = self_join.then_some(q.id);
            let cands = metric_filter(tp, q.point, metric, exclude, &mut out.stats);
            out.stats.candidate_pairs += cands.len() as u64;
            let pairs: Vec<RcjPair> = cands.into_iter().map(|p| RcjPair::new(p, q)).collect();
            let mut alive = vec![true; pairs.len()];
            metric_verify(tq, &pairs, metric, &mut alive, &mut out.stats);
            if !self_join {
                metric_verify(tp, &pairs, metric, &mut alive, &mut out.stats);
            }
            for (i, pr) in pairs.into_iter().enumerate() {
                if alive[i] && (!self_join || pr.p.id < pr.q.id) {
                    out.pairs.push(pr);
                }
            }
        }
    }
    out.stats.result_pairs = out.pairs.len() as u64;
    out
}

struct HeapElem {
    key: f64,
    seq: u64,
    target: Target,
}
enum Target {
    Node(PageId, Rect),
    Point(Item),
}
impl PartialEq for HeapElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapElem {}
impl PartialOrd for HeapElem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapElem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Metric analogue of Algorithm 2: incremental search from `q` (under
/// `metric`) with mirror-point pruning.
fn metric_filter(
    tree_p: &RTree,
    q: Point,
    metric: Metric,
    exclude_id: Option<u64>,
    stats: &mut RcjStats,
) -> Vec<Item> {
    let mut s: Vec<Item> = Vec::new();
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(HeapElem {
        key: 0.0,
        seq,
        target: Target::Node(
            tree_p.root_page(),
            Rect::new(
                Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                Point::new(f64::INFINITY, f64::INFINITY),
            ),
        ),
    });
    // Mirror points of the discovered candidates.
    let mut mirrors: Vec<Point> = Vec::new();

    while let Some(elem) = heap.pop() {
        stats.filter_heap_pops += 1;
        match elem.target {
            Target::Node(page, mbr) => {
                // Conservative subtree prune: every x in the MBR is
                // strictly closer to some mirror than to q.
                let pruned = mirrors
                    .iter()
                    .any(|m| metric.maxdist_rect(*m, mbr) < metric.mindist_rect(q, mbr));
                if pruned {
                    continue;
                }
                let node = tree_p.read_node(page);
                for e in &node.entries {
                    seq += 1;
                    match e {
                        NodeEntry::Item(it) => heap.push(HeapElem {
                            key: metric.dist(q, it.point),
                            seq,
                            target: Target::Point(*it),
                        }),
                        NodeEntry::Child { mbr, page } => heap.push(HeapElem {
                            key: metric.mindist_rect(q, *mbr),
                            seq,
                            target: Target::Node(*page, *mbr),
                        }),
                    }
                }
            }
            Target::Point(it) => {
                if exclude_id == Some(it.id) {
                    continue;
                }
                // Exact point prune: some candidate s is strictly inside
                // the midball of (q, it) — evaluated in the endpoint-exact
                // form rather than via the mirror to avoid constructing
                // 2s - q in floating point.
                let pruned = s
                    .iter()
                    .any(|cand| metric.strictly_inside_midball(cand.point, q, it.point));
                if !pruned {
                    mirrors.push(Point::new(2.0 * it.point.x - q.x, 2.0 * it.point.y - q.y));
                    s.push(it);
                }
            }
        }
    }
    s
}

/// Metric analogue of Algorithm 3 for a batch of candidate pairs of one
/// query point.
fn metric_verify(
    tree: &RTree,
    pairs: &[RcjPair],
    metric: Metric,
    alive: &mut [bool],
    stats: &mut RcjStats,
) {
    let idxs: Vec<usize> = (0..pairs.len()).filter(|&i| alive[i]).collect();
    if idxs.is_empty() {
        return;
    }
    metric_verify_node(tree, tree.root_page(), &idxs, pairs, metric, alive, stats);
}

fn metric_verify_node(
    tree: &RTree,
    page: PageId,
    idxs: &[usize],
    pairs: &[RcjPair],
    metric: Metric,
    alive: &mut [bool],
    stats: &mut RcjStats,
) {
    stats.verify_node_visits += 1;
    let node = tree.read_node(page);
    if node.is_leaf() {
        for e in &node.entries {
            if let NodeEntry::Item(it) = e {
                for &i in idxs {
                    if alive[i]
                        && metric.strictly_inside_midball(
                            it.point,
                            pairs[i].p.point,
                            pairs[i].q.point,
                        )
                    {
                        alive[i] = false;
                    }
                }
            }
        }
        return;
    }
    for e in &node.entries {
        if let NodeEntry::Child { mbr, page: child } = e {
            let mut sub: Vec<usize> = Vec::new();
            for &i in idxs {
                if !alive[i] {
                    continue;
                }
                // Descend iff the MBR reaches the ball's interior: the
                // midball is inscribed in its bounding rect, so test the
                // metric distance from the midpoint.
                let p = pairs[i].p.point;
                let q = pairs[i].q.point;
                let mid = p.midpoint(q);
                let r = 0.5 * metric.dist(p, q);
                if metric.mindist_rect(mid, *mbr) < r * (1.0 + 1e-9) {
                    sub.push(i);
                }
            }
            if !sub.is_empty() {
                metric_verify_node(tree, *child, &sub, pairs, metric, alive, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::pair_keys;
    use crate::{rcj_join, RcjOptions};
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager, SharedPager};

    fn pager() -> SharedPager {
        Pager::new(MemDisk::new(1024), 64).into_shared()
    }

    fn lcg_items(n: usize, seed: u64, span: f64, base: u64) -> Vec<Item> {
        ringjoin_testsupport::lcg_points(n, seed, span)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(base + i as u64, pt(x, y)))
            .collect()
    }

    fn brute_metric(ps: &[Item], qs: &[Item], metric: Metric) -> Vec<(u64, u64)> {
        let mut keys = Vec::new();
        for &p in ps {
            for &q in qs {
                let blocked = |x: &Item| metric.strictly_inside_midball(x.point, p.point, q.point);
                if !ps.iter().any(blocked) && !qs.iter().any(blocked) {
                    keys.push((p.id, q.id));
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    #[test]
    fn l2_metric_join_equals_euclidean_join() {
        let ps = lcg_items(100, 3, 500.0, 0);
        let qs = lcg_items(120, 5, 500.0, 0);
        let pg = pager();
        let tp = bulk_load(pg.clone(), ps.clone());
        let tq = bulk_load(pg.clone(), qs.clone());
        let euclid = rcj_join(&tq, &tp, &RcjOptions::default());
        let metric = metric_rcj_join(&tq, &tp, Metric::L2);
        assert_eq!(pair_keys(&euclid.pairs), pair_keys(&metric.pairs));
    }

    #[test]
    fn l1_and_linf_match_brute_force() {
        let ps = lcg_items(80, 11, 300.0, 0);
        let qs = lcg_items(90, 17, 300.0, 0);
        let pg = pager();
        let tp = bulk_load(pg.clone(), ps.clone());
        let tq = bulk_load(pg.clone(), qs.clone());
        for metric in [Metric::L1, Metric::Linf] {
            let out = metric_rcj_join(&tq, &tp, metric);
            assert_eq!(
                pair_keys(&out.pairs),
                brute_metric(&ps, &qs, metric),
                "{metric:?}"
            );
        }
    }

    #[test]
    fn metrics_give_different_result_sets() {
        // Sanity: the generalisation is not a no-op — on a skewed layout
        // the three metrics disagree somewhere.
        let ps = lcg_items(60, 23, 100.0, 0);
        let qs = lcg_items(60, 29, 100.0, 0);
        let l2 = brute_metric(&ps, &qs, Metric::L2);
        let l1 = brute_metric(&ps, &qs, Metric::L1);
        let li = brute_metric(&ps, &qs, Metric::Linf);
        assert!(l1 != l2 || li != l2, "expected some metric disagreement");
    }

    #[test]
    fn metric_self_join_l1() {
        let items = lcg_items(70, 31, 200.0, 0);
        let pg = pager();
        let tree = bulk_load(pg.clone(), items.clone());
        let out = metric_rcj_self_join(&tree, Metric::L1);
        // Brute self-join under L1.
        let mut expect = Vec::new();
        for (i, &p) in items.iter().enumerate() {
            for &q in &items[i + 1..] {
                let blocked =
                    |x: &Item| Metric::L1.strictly_inside_midball(x.point, p.point, q.point);
                if !items.iter().any(blocked) {
                    let (lo, hi) = if p.id < q.id {
                        (p.id, q.id)
                    } else {
                        (q.id, p.id)
                    };
                    expect.push((lo, hi));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(pair_keys(&out.pairs), expect);
    }
}
