//! Lazy, bounded-memory result streaming for the RCJ.
//!
//! The paper's algorithms are described as "compute the whole join" —
//! but their structure is naturally incremental: every driver processes
//! the outer tree one leaf group at a time, and each leaf group's
//! contribution is final the moment it is produced. This module exposes
//! that seam in two pieces:
//!
//! * [`PairSink`] — the emission half. The generic INJ/BIJ/OBJ drivers
//!   report result pairs through this trait instead of pushing into a
//!   `Vec`; a sink may stop the run early. `Vec<RcjPair>` implements it
//!   (never stopping), which is all [`rcj_join`](crate::rcj_join) needs
//!   to keep its one-shot shape.
//! * [`RcjStream`] — the consumption half: a lazy iterator over result
//!   pairs. Three sources back it:
//!   * **sequential leaf order** — one outer leaf group per pull through
//!     the shared pager; exactly the sequential executor, suspended
//!     between leaves;
//!   * **parallel leaf order** — outer leaves are processed in *waves*
//!     of `workers × 4` leaves on scoped threads over per-worker
//!     [`PooledPager`](ringjoin_storage::PooledPager)s that all account
//!     into the pager's cached
//!     [shared pool](ringjoin_storage::Pager::shared_pool), merged by
//!     chunk index. The pair sequence is **identical** to the
//!     sequential stream (and to [`rcj_join`](crate::rcj_join) under
//!     either executor); memory stays bounded by one wave, and the
//!     cache stays warm across waves and across runs;
//!   * **ascending ring diameter** — an index-agnostic incremental
//!     distance join (Hjaltason–Samet) over the two probes, with each
//!     candidate lazily verified. Since candidate distance *is* ring
//!     diameter, taking the first `k` pairs answers a top-k query with
//!     early exit: the traversal never expands subtree pairs further
//!     than the `k`-th diameter.
//!
//! The engine's [`Plan::stream`](crate::Plan::stream) picks the source;
//! the free functions [`rcj_stream`], [`rcj_self_stream`],
//! [`rcj_stream_by_diameter`] and [`rcj_self_stream_by_diameter`] build
//! streams directly over trees.

use crate::executor::Pagers;
use crate::index::{IndexEntry, IndexProbe, NodeRef, RcjIndex};
use crate::join::{leaf_items, outer_leaves, process_leaf, RcjOptions};
use crate::pair::RcjPair;
use crate::stats::RcjStats;
use crate::verify::verify_with;
use ringjoin_geom::{Item, Rect};
use ringjoin_storage::{PooledPager, SharedPager};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

/// Receiver of RCJ result pairs.
///
/// The join drivers emit every verified pair through a sink. Returning
/// `false` asks the driver to stop: the sequential executor abandons the
/// remaining outer leaves (see [`rcj_join_into`](crate::rcj_join_into)),
/// which is what gives streams and top-k queries their early exit.
pub trait PairSink {
    /// Receives one result pair; returns `false` to stop the run.
    fn push(&mut self, pair: RcjPair) -> bool;
}

/// The materialising sink: plain collection, never stops.
impl PairSink for Vec<RcjPair> {
    fn push(&mut self, pair: RcjPair) -> bool {
        self.push(pair);
        true
    }
}

/// Receiver of RCJ result pairs tagged with the **global outer-leaf
/// index** that produced them.
///
/// The tag is what makes distributed execution mergeable: a shard
/// router runs [`rcj_join_leaves_into`](crate::rcj_join_leaves_into)
/// over disjoint leaf subsets and orders the union of tagged pairs by
/// leaf index, reproducing the single-engine output byte for byte (the
/// router adds its own shard id as provenance). Returning `false` asks
/// the driver to stop early, as with [`PairSink`].
pub trait TaggedPairSink {
    /// Receives one result pair produced by outer leaf group `leaf`;
    /// returns `false` to stop the run.
    fn push(&mut self, leaf: usize, pair: RcjPair) -> bool;
}

/// The materialising tagged sink: collects `(leaf, pair)`, never stops.
impl TaggedPairSink for Vec<(usize, RcjPair)> {
    fn push(&mut self, leaf: usize, pair: RcjPair) -> bool {
        self.push((leaf, pair));
        true
    }
}

/// Internal supplier of pair batches (one outer leaf group, one wave of
/// leaf groups, or one diameter-ordered candidate per call).
trait BatchSource {
    /// Appends the next batch of pairs to `out` (possibly none), charging
    /// counters to `stats`. Returns `false` when the stream is exhausted.
    fn next_batch(&mut self, out: &mut Vec<RcjPair>, stats: &mut RcjStats) -> bool;
}

/// A lazy iterator over RCJ result pairs.
///
/// Built by [`Plan::stream`](crate::Plan::stream) or the free
/// [`rcj_stream`]-family constructors. Leaf-order streams yield exactly
/// the [`rcj_join`](crate::rcj_join) output — same pairs, same order —
/// while holding at most one leaf batch (sequential) or one wave
/// (parallel) in memory. Diameter-order streams yield pairs in ascending
/// ring diameter with early exit.
pub struct RcjStream {
    source: Box<dyn BatchSource>,
    buf: VecDeque<RcjPair>,
    scratch: Vec<RcjPair>,
    stats: RcjStats,
    limit: Option<usize>,
    yielded: usize,
}

impl RcjStream {
    fn new(source: Box<dyn BatchSource>) -> Self {
        RcjStream {
            source,
            buf: VecDeque::new(),
            scratch: Vec::new(),
            stats: RcjStats::default(),
            limit: None,
            yielded: 0,
        }
    }

    /// Caps the stream at `k` pairs: after the `k`-th pair the stream
    /// ends and no further index page is read. This is the top-k early
    /// exit when combined with a diameter-ordered stream.
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Counters accumulated so far. `result_pairs` counts the pairs
    /// *produced* by the underlying driver (at least the pairs yielded;
    /// a leaf-order stream may have buffered a few more from the current
    /// batch).
    pub fn stats(&self) -> RcjStats {
        self.stats
    }
}

impl Iterator for RcjStream {
    type Item = RcjPair;

    fn next(&mut self) -> Option<RcjPair> {
        if self.limit.is_some_and(|k| self.yielded >= k) {
            return None;
        }
        while self.buf.is_empty() {
            self.scratch.clear();
            if !self.source.next_batch(&mut self.scratch, &mut self.stats) {
                return None;
            }
            self.buf.extend(self.scratch.drain(..));
        }
        self.yielded += 1;
        self.buf.pop_front()
    }
}

// ---------------------------------------------------------------------
// Leaf-order sources
// ---------------------------------------------------------------------

/// Sequential source: one outer leaf group per batch — the sequential
/// executor, suspended between leaf groups.
///
/// The source is **pinned to the epoch it was opened at**: construction
/// captures each pager's page source, shared pool and current epoch into
/// private [`PooledPager`] handles, so a mutation batch
/// ([`Pager::begin_epoch`](ringjoin_storage::Pager::begin_epoch)) landing
/// while the stream is suspended between batches cannot change what the
/// remaining batches read — the stream drains the snapshot it started on.
struct SeqLeafSource<PQ: IndexProbe, PP: IndexProbe> {
    probe_q: PQ,
    probe_p: PP,
    /// Owning pagers, kept to absorb the pinned handles' I/O counters
    /// when the stream is dropped (consumed or abandoned).
    pager_q: SharedPager,
    pager_p: SharedPager,
    /// Pinned outer-tree handle at stream-open epoch.
    wq: PooledPager,
    /// Pinned inner-tree handle; `None` when both trees share a pager
    /// (always true for self-joins).
    wp: Option<PooledPager>,
    leaves: Vec<NodeRef>,
    pos: usize,
    self_join: bool,
    opts: RcjOptions,
}

impl<PQ: IndexProbe, PP: IndexProbe> SeqLeafSource<PQ, PP> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        probe_q: PQ,
        probe_p: PP,
        pager_q: SharedPager,
        pager_p: SharedPager,
        leaves: Vec<NodeRef>,
        self_join: bool,
        opts: RcjOptions,
    ) -> Self {
        let one_pager = Rc::ptr_eq(&pager_q, &pager_p);
        let wq = {
            let mut pg = pager_q.borrow_mut();
            let (source, pool, epoch) = (pg.page_source(), pg.shared_pool(), pg.epoch());
            PooledPager::versioned(source, pool, epoch)
        };
        let wp = (!one_pager).then(|| {
            let mut pg = pager_p.borrow_mut();
            let (source, pool, epoch) = (pg.page_source(), pg.shared_pool(), pg.epoch());
            PooledPager::versioned(source, pool, epoch)
        });
        SeqLeafSource {
            probe_q,
            probe_p,
            pager_q,
            pager_p,
            wq,
            wp,
            leaves,
            pos: 0,
            self_join,
            opts,
        }
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> BatchSource for SeqLeafSource<PQ, PP> {
    fn next_batch(&mut self, out: &mut Vec<RcjPair>, stats: &mut RcjStats) -> bool {
        if self.pos >= self.leaves.len() {
            return false;
        }
        let leaf = self.leaves[self.pos];
        self.pos += 1;
        let mut pagers = match self.wp.as_mut() {
            None => Pagers::Shared(&mut self.wq),
            Some(wp) => Pagers::Split {
                q: &mut self.wq,
                p: wp,
            },
        };
        let items = leaf_items(&self.probe_q, pagers.q(), leaf);
        process_leaf(
            &self.probe_q,
            &self.probe_p,
            &mut pagers,
            &items,
            self.self_join,
            &self.opts,
            out,
            stats,
        );
        true
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> Drop for SeqLeafSource<PQ, PP> {
    /// Folds the pinned handles' I/O counters back into the owning
    /// pagers, mirroring [`ParLeafSource`]'s accounting.
    fn drop(&mut self) {
        self.pager_q.borrow_mut().absorb(self.wq.stats());
        if let Some(wp) = &self.wp {
            self.pager_p.borrow_mut().absorb(wp.stats());
        }
    }
}

/// Number of outer leaf groups each worker processes per wave of the
/// parallel stream. Small enough to bound buffered output, large enough
/// to amortise the scoped-thread spawn.
const WAVE_LEAVES_PER_WORKER: usize = 4;

/// One parallel worker's persistent state across waves: its pooled
/// handle(s) over the shared snapshot. The cache itself lives in the
/// pager's shared pool — residency survives waves, workers, and whole
/// runs; only the per-worker counters are private here.
struct WaveWorker {
    wq: PooledPager,
    wp: Option<PooledPager>,
}

/// Parallel source: waves of `workers × WAVE_LEAVES_PER_WORKER` leaf
/// groups on scoped threads, merged by chunk index — the same
/// deterministic order as the sequential stream.
struct ParLeafSource<PQ: IndexProbe, PP: IndexProbe> {
    probe_q: PQ,
    probe_p: PP,
    /// Owning pagers, kept to absorb the per-worker I/O counters when
    /// the stream is dropped (consumed or abandoned).
    pager_q: SharedPager,
    pager_p: SharedPager,
    workers: Vec<WaveWorker>,
    leaves: Vec<NodeRef>,
    pos: usize,
    self_join: bool,
    opts: RcjOptions,
    /// Background staging thread for disk-native runs: claiming a wave
    /// requests the *next* wave's leaf pages so store I/O overlaps
    /// verification. `None` for resident sources.
    prefetcher: Option<ringjoin_storage::Prefetcher>,
}

impl<PQ: IndexProbe, PP: IndexProbe> ParLeafSource<PQ, PP> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        probe_q: PQ,
        probe_p: PP,
        pager_q: SharedPager,
        pager_p: SharedPager,
        leaves: Vec<NodeRef>,
        workers: usize,
        self_join: bool,
        opts: RcjOptions,
    ) -> Self {
        let one_pager = Rc::ptr_eq(&pager_q, &pager_p);
        let (source_q, pool_q, epoch_q) = {
            let mut pg = pager_q.borrow_mut();
            (pg.page_source(), pg.shared_pool(), pg.epoch())
        };
        let source_pool_p = (!one_pager).then(|| {
            let mut pg = pager_p.borrow_mut();
            (pg.page_source(), pg.shared_pool(), pg.epoch())
        });
        let prefetcher = source_q.store().map(|store| {
            ringjoin_storage::Prefetcher::spawn_versioned(
                pool_q.clone(),
                std::sync::Arc::clone(store),
                epoch_q,
            )
        });
        let workers = (0..workers)
            .map(|_| WaveWorker {
                wq: PooledPager::versioned(source_q.clone(), pool_q.clone(), epoch_q),
                wp: source_pool_p
                    .clone()
                    .map(|(s, pool, e)| PooledPager::versioned(s, pool, e)),
            })
            .collect();
        ParLeafSource {
            probe_q,
            probe_p,
            pager_q,
            pager_p,
            workers,
            leaves,
            pos: 0,
            self_join,
            opts,
            prefetcher,
        }
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> BatchSource for ParLeafSource<PQ, PP> {
    fn next_batch(&mut self, out: &mut Vec<RcjPair>, stats: &mut RcjStats) -> bool {
        if self.pos >= self.leaves.len() {
            return false;
        }
        let wave_len =
            (self.workers.len() * WAVE_LEAVES_PER_WORKER).min(self.leaves.len() - self.pos);
        let wave = &self.leaves[self.pos..self.pos + wave_len];
        self.pos += wave_len;
        let chunk_len = wave_len.div_ceil(self.workers.len()).max(1);
        if let Some(pf) = &self.prefetcher {
            // This wave is claimed; stage the next wave's leaf pages in
            // the background while the workers verify this one.
            let next_len =
                (self.workers.len() * WAVE_LEAVES_PER_WORKER).min(self.leaves.len() - self.pos);
            pf.request(
                self.leaves[self.pos..self.pos + next_len]
                    .iter()
                    .map(|leaf| leaf.page)
                    .collect(),
            );
        }

        let probe_q = self.probe_q;
        let probe_p = self.probe_p;
        let self_join = self.self_join;
        let opts = self.opts;
        let results: Vec<(Vec<RcjPair>, RcjStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .chunks(chunk_len)
                .zip(self.workers.iter_mut())
                .map(|(chunk, worker)| {
                    scope.spawn(move || {
                        let mut pairs: Vec<RcjPair> = Vec::new();
                        let mut wstats = RcjStats::default();
                        let mut pagers = match worker.wp.as_mut() {
                            None => Pagers::Shared(&mut worker.wq),
                            Some(wp) => Pagers::Split {
                                q: &mut worker.wq,
                                p: wp,
                            },
                        };
                        for leaf in chunk {
                            let items = leaf_items(&probe_q, pagers.q(), *leaf);
                            process_leaf(
                                &probe_q,
                                &probe_p,
                                &mut pagers,
                                &items,
                                self_join,
                                &opts,
                                &mut pairs,
                                &mut wstats,
                            );
                        }
                        (pairs, wstats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("RCJ stream worker panicked"))
                .collect()
        });
        // Chunk order is leaf order is sequential order.
        for (pairs, wstats) in results {
            out.extend(pairs);
            stats.merge(wstats);
        }
        true
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> Drop for ParLeafSource<PQ, PP> {
    /// Folds the per-worker I/O counters back into the owning pagers so
    /// aggregate statistics match the whole-run executor's accounting
    /// even for partially consumed streams.
    fn drop(&mut self) {
        let mut pq = self.pager_q.borrow_mut();
        for w in &self.workers {
            pq.absorb(w.wq.stats());
        }
        drop(pq);
        let mut pp = self.pager_p.borrow_mut();
        for w in &self.workers {
            if let Some(wp) = &w.wp {
                pp.absorb(wp.stats());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Diameter-order source (top-k)
// ---------------------------------------------------------------------

/// Traversal target of the incremental distance join: an index node (with
/// its subtree-bounding region) or a data item.
#[derive(Clone, Copy)]
enum CpRef {
    Node(NodeRef),
    Item(Item),
}

impl CpRef {
    fn rect(&self) -> Rect {
        match self {
            CpRef::Node(n) => n.region,
            CpRef::Item(it) => Rect::from_point(it.point),
        }
    }
}

/// Heap element: a pair of targets ordered by ascending mindist; ties
/// order node expansions first, then item pairs by ascending pair key
/// (see [`CpElem::rank`]), then insertion sequence.
struct CpElem {
    key: f64,
    seq: u64,
    a: CpRef,
    b: CpRef,
}

impl CpElem {
    /// Tie rank among elements at the same distance key: elements still
    /// containing a node come first (a node at mindist `d` may hide a
    /// pair of diameter exactly `d` with a smaller key, so it must be
    /// expanded before any tied pair is emitted), then item-item pairs
    /// in ascending pair key. This makes the emission order of
    /// equal-diameter pairs **canonical** — independent of traversal
    /// history — which is what lets a sharded k-bounded merge keyed on
    /// `(diameter, pair key)` reproduce the single-engine stream byte
    /// for byte even through exact ties (duplicate coordinates).
    fn rank(&self) -> (u8, (u64, u64)) {
        match (&self.a, &self.b) {
            (CpRef::Item(p), CpRef::Item(q)) => (1, (p.id, q.id)),
            _ => (0, (0, 0)),
        }
    }
}

impl PartialEq for CpElem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for CpElem {}
impl PartialOrd for CpElem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CpElem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed comparisons: BinaryHeap is a max-heap, and the
        // traversal needs the smallest (key, rank, seq) on top.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.rank().cmp(&self.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Diameter-ordered source: an index-agnostic incremental distance join
/// over the two probes (`a` targets from `T_P`, `b` targets from `T_Q`),
/// lazily verifying each candidate. Candidate distance equals ring
/// diameter, so the emission order is ascending diameter and every RCJ
/// pair eventually appears (the traversal enumerates `P × Q`
/// exhaustively if fully drained).
/// Like the leaf-order sources, the traversal is **pinned to the epoch
/// it was opened at**: expansion and verification read through private
/// [`PooledPager`] handles captured at construction, so a top-k stream
/// being drained incrementally keeps its answer set stable across
/// concurrent mutation batches.
struct DiameterSource<PQ: IndexProbe, PP: IndexProbe> {
    probe_q: PQ,
    probe_p: PP,
    /// Owning pagers, kept to absorb the pinned handles' I/O counters
    /// when the stream is dropped (consumed or abandoned).
    pager_q: SharedPager,
    pager_p: SharedPager,
    /// Pinned `Q`-side handle at stream-open epoch.
    wq: PooledPager,
    /// Pinned `P`-side handle; `None` when both trees share a pager
    /// (always true for self-joins) — the `Q` handle serves both sides.
    wp: Option<PooledPager>,
    heap: BinaryHeap<CpElem>,
    seq: u64,
    self_join: bool,
    verify: bool,
    face_rule: bool,
    /// Restriction of the `Q` side to one shard's cell: only pairs whose
    /// `q` lies in the region (half-open membership, so adjacent cells
    /// partition boundary points) are emitted, and `q`-subtrees disjoint
    /// from the region are never expanded. `None` = unrestricted.
    q_region: Option<Rect>,
}

impl<PQ: IndexProbe, PP: IndexProbe> DiameterSource<PQ, PP> {
    fn new(
        probe_q: PQ,
        probe_p: PP,
        pager_q: SharedPager,
        pager_p: SharedPager,
        self_join: bool,
        q_region: Option<Rect>,
        opts: &RcjOptions,
    ) -> Self {
        let one_pager = Rc::ptr_eq(&pager_q, &pager_p);
        let wq = {
            let mut pg = pager_q.borrow_mut();
            let (source, pool, epoch) = (pg.page_source(), pg.shared_pool(), pg.epoch());
            PooledPager::versioned(source, pool, epoch)
        };
        let wp = (!one_pager).then(|| {
            let mut pg = pager_p.borrow_mut();
            let (source, pool, epoch) = (pg.page_source(), pg.shared_pool(), pg.epoch());
            PooledPager::versioned(source, pool, epoch)
        });
        let mut src = DiameterSource {
            probe_q,
            probe_p,
            pager_q,
            pager_p,
            wq,
            wp,
            heap: BinaryHeap::new(),
            seq: 0,
            self_join,
            verify: !opts.skip_verification,
            face_rule: !opts.no_face_rule,
            q_region,
        };
        src.push(CpRef::Node(probe_p.root()), CpRef::Node(probe_q.root()));
        src
    }

    /// May the `Q`-side target `b` still produce an in-region `q`?
    /// Nodes use a (conservative, closed) intersection test; items use
    /// the exact half-open membership.
    fn q_side_admissible(&self, b: &CpRef) -> bool {
        match (self.q_region, b) {
            (None, _) => true,
            (Some(region), CpRef::Node(n)) => n.region.intersects(region),
            (Some(region), CpRef::Item(it)) => region.contains_point_half_open(it.point),
        }
    }

    fn push(&mut self, a: CpRef, b: CpRef) {
        if !self.q_side_admissible(&b) {
            // Outside this shard's cell: the subtree (or point) cannot
            // contribute an owned pair, so it never enters the heap.
            return;
        }
        let key = match (&a, &b) {
            (CpRef::Item(p), CpRef::Item(q)) => p.point.dist_sq(q.point),
            _ => a.rect().mindist_rect_sq(b.rect()),
        };
        self.seq += 1;
        self.heap.push(CpElem {
            key,
            seq: self.seq,
            a,
            b,
        });
    }

    /// Expands the `a`-side node against a fixed `b` target.
    fn expand_a(&mut self, node: NodeRef, b: CpRef, stats: &mut RcjStats) {
        stats.filter_node_reads += 1;
        let mut entries: Vec<IndexEntry> = Vec::new();
        let wp = self.wp.as_mut().unwrap_or(&mut self.wq);
        self.probe_p.expand(wp, node, &mut entries);
        for e in entries {
            let a = match e {
                IndexEntry::Item(it) => CpRef::Item(it),
                IndexEntry::Node(n) => CpRef::Node(n),
            };
            self.push(a, b);
        }
    }

    /// Expands the `b`-side node against a fixed `a` target.
    fn expand_b(&mut self, a: CpRef, node: NodeRef, stats: &mut RcjStats) {
        stats.filter_node_reads += 1;
        let mut entries: Vec<IndexEntry> = Vec::new();
        self.probe_q.expand(&mut self.wq, node, &mut entries);
        for e in entries {
            let b = match e {
                IndexEntry::Item(it) => CpRef::Item(it),
                IndexEntry::Node(n) => CpRef::Node(n),
            };
            self.push(a, b);
        }
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> BatchSource for DiameterSource<PQ, PP> {
    fn next_batch(&mut self, out: &mut Vec<RcjPair>, stats: &mut RcjStats) -> bool {
        while let Some(elem) = self.heap.pop() {
            stats.filter_heap_pops += 1;
            match (elem.a, elem.b) {
                (CpRef::Item(p), CpRef::Item(q)) => {
                    if self.self_join && p.id >= q.id {
                        // Self-joins see each unordered pair from both
                        // sides (and each point against itself); report
                        // once, smaller id first.
                        continue;
                    }
                    let pair = RcjPair::new(p, q);
                    stats.candidate_pairs += 1;
                    let mut alive = [true];
                    if self.verify {
                        verify_with(
                            &self.probe_q,
                            &mut self.wq,
                            &[pair],
                            &mut alive,
                            self.face_rule,
                            stats,
                        );
                        if alive[0] && !self.self_join {
                            let wp = self.wp.as_mut().unwrap_or(&mut self.wq);
                            verify_with(
                                &self.probe_p,
                                wp,
                                &[pair],
                                &mut alive,
                                self.face_rule,
                                stats,
                            );
                        }
                    }
                    if alive[0] {
                        stats.result_pairs += 1;
                        out.push(pair);
                        return true;
                    }
                }
                (CpRef::Node(na), b @ CpRef::Node(nb)) => {
                    // Expand the larger node first (classic heuristic).
                    if na.region.area() >= nb.region.area() {
                        self.expand_a(na, b, stats);
                    } else {
                        self.expand_b(CpRef::Node(na), nb, stats);
                    }
                }
                (CpRef::Node(na), b @ CpRef::Item(_)) => self.expand_a(na, b, stats),
                (a @ CpRef::Item(_), CpRef::Node(nb)) => self.expand_b(a, nb, stats),
            }
        }
        false
    }
}

impl<PQ: IndexProbe, PP: IndexProbe> Drop for DiameterSource<PQ, PP> {
    /// Folds the pinned handles' I/O counters back into the owning
    /// pagers, mirroring [`ParLeafSource`]'s accounting.
    fn drop(&mut self) {
        self.pager_q.borrow_mut().absorb(self.wq.stats());
        if let Some(wp) = &self.wp {
            self.pager_p.borrow_mut().absorb(wp.stats());
        }
    }
}

// ---------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------

fn leaf_stream<IQ: RcjIndex, IP: RcjIndex>(
    tq: &IQ,
    tp: &IP,
    self_join: bool,
    opts: &RcjOptions,
) -> RcjStream {
    // `Auto` resolves exactly as in the one-shot path.
    let opts = RcjOptions {
        algorithm: opts.algorithm.resolve(&tq.summary()),
        ..*opts
    };
    let leaves = outer_leaves(tq, &opts);
    let workers = opts.executor.worker_count().min(leaves.len().max(1));
    if workers <= 1 {
        RcjStream::new(Box::new(SeqLeafSource::new(
            tq.probe(),
            tp.probe(),
            tq.pager(),
            tp.pager(),
            leaves,
            self_join,
            opts,
        )))
    } else {
        RcjStream::new(Box::new(ParLeafSource::new(
            tq.probe(),
            tp.probe(),
            tq.pager(),
            tp.pager(),
            leaves,
            workers,
            self_join,
            opts,
        )))
    }
}

/// Lazily streams the RCJ of `(tq, tp)` in deterministic leaf order —
/// the same pairs in the same order as
/// [`rcj_join`](crate::rcj_join) with the same options, with memory
/// bounded by one leaf batch (sequential executor) or one wave
/// (parallel executor).
pub fn rcj_stream<IQ: RcjIndex, IP: RcjIndex>(tq: &IQ, tp: &IP, opts: &RcjOptions) -> RcjStream {
    leaf_stream(tq, tp, false, opts)
}

/// Lazily streams the self-RCJ of one dataset; the streaming analogue of
/// [`rcj_self_join`](crate::rcj_self_join).
pub fn rcj_self_stream<I: RcjIndex>(tree: &I, opts: &RcjOptions) -> RcjStream {
    leaf_stream(tree, tree, true, opts)
}

/// Streams the RCJ of `(tq, tp)` in **ascending ring diameter** order —
/// the tourist-recommendation ranking. Combine with
/// [`RcjStream::limit`] (or just `take(k)`) for a top-k query with
/// early exit: only the index regions within the `k`-th diameter are
/// ever expanded. Honors `opts.skip_verification` and
/// `opts.no_face_rule`; the executor choice is ignored (the incremental
/// traversal is inherently sequential).
pub fn rcj_stream_by_diameter<IQ: RcjIndex, IP: RcjIndex>(
    tq: &IQ,
    tp: &IP,
    opts: &RcjOptions,
) -> RcjStream {
    RcjStream::new(Box::new(DiameterSource::new(
        tq.probe(),
        tp.probe(),
        tq.pager(),
        tp.pager(),
        false,
        None,
        opts,
    )))
}

/// [`rcj_stream_by_diameter`] restricted to one shard's cell: only
/// pairs whose `q` lies in `q_region` (half-open membership:
/// min-inclusive, max-exclusive) are emitted, and `Q`-subtrees disjoint
/// from the region are never expanded.
///
/// Running this stream per cell of a space partition yields **disjoint**
/// sub-streams whose union is exactly the unrestricted stream — so a
/// shard router can merge per-shard diameter-ordered streams with a
/// k-bounded heap and keep the top-k early exit across shards.
pub fn rcj_stream_by_diameter_in<IQ: RcjIndex, IP: RcjIndex>(
    tq: &IQ,
    tp: &IP,
    q_region: Rect,
    opts: &RcjOptions,
) -> RcjStream {
    RcjStream::new(Box::new(DiameterSource::new(
        tq.probe(),
        tp.probe(),
        tq.pager(),
        tp.pager(),
        false,
        Some(q_region),
        opts,
    )))
}

/// Diameter-ordered self-RCJ stream; each unordered pair appears once,
/// smaller id first. See [`rcj_stream_by_diameter`].
pub fn rcj_self_stream_by_diameter<I: RcjIndex>(tree: &I, opts: &RcjOptions) -> RcjStream {
    RcjStream::new(Box::new(DiameterSource::new(
        tree.probe(),
        tree.probe(),
        tree.pager(),
        tree.pager(),
        true,
        None,
        opts,
    )))
}

/// [`rcj_self_stream_by_diameter`] restricted to one shard's cell: a
/// pair `{i, j}` (reported `p.id < q.id`) is owned by the cell that
/// contains its **larger-id** endpoint, so per-cell streams partition
/// the self-join result exactly as the bichromatic variant does. See
/// [`rcj_stream_by_diameter_in`].
pub fn rcj_self_stream_by_diameter_in<I: RcjIndex>(
    tree: &I,
    q_region: Rect,
    opts: &RcjOptions,
) -> RcjStream {
    RcjStream::new(Box::new(DiameterSource::new(
        tree.probe(),
        tree.probe(),
        tree.pager(),
        tree.pager(),
        true,
        Some(q_region),
        opts,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pair_keys, rcj_join, rcj_self_join, sort_by_diameter, Executor, RcjAlgorithm};
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager, SharedPager};

    fn pager() -> SharedPager {
        Pager::new(MemDisk::new(512), 64).into_shared()
    }

    fn items(n: usize, seed: u64, span: f64) -> Vec<Item> {
        ringjoin_testsupport::lcg_points(n, seed, span)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(i as u64, pt(x, y)))
            .collect()
    }

    #[test]
    fn sequential_stream_equals_materialised_join() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(400, 3, 2000.0));
        let tq = bulk_load(pg.clone(), items(400, 5, 2000.0));
        for algo in [RcjAlgorithm::Inj, RcjAlgorithm::Bij, RcjAlgorithm::Obj] {
            let opts = RcjOptions::algorithm(algo).with_executor(Executor::Sequential);
            let full = rcj_join(&tq, &tp, &opts);
            let mut stream = rcj_stream(&tq, &tp, &opts);
            let streamed: Vec<RcjPair> = stream.by_ref().collect();
            assert_eq!(streamed, full.pairs, "{}", algo.name());
            assert_eq!(stream.stats(), full.stats, "{}", algo.name());
        }
    }

    #[test]
    fn parallel_stream_equals_materialised_join() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(500, 7, 3000.0));
        let tq = bulk_load(pg.clone(), items(500, 11, 3000.0));
        for threads in [2, 4, 8] {
            let opts = RcjOptions::default().with_executor(Executor::Parallel { threads });
            let full = rcj_join(&tq, &tp, &opts);
            let mut stream = rcj_stream(&tq, &tp, &opts);
            let streamed: Vec<RcjPair> = stream.by_ref().collect();
            assert_eq!(streamed, full.pairs, "threads={threads}");
            assert_eq!(stream.stats(), full.stats, "threads={threads}");
        }
    }

    #[test]
    fn parallel_stream_absorbs_io_counters() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(400, 13, 2500.0));
        let tq = bulk_load(pg.clone(), items(400, 17, 2500.0));
        let opts = RcjOptions::default().with_executor(Executor::Parallel { threads: 4 });

        let before = pg.borrow().stats();
        let seq_opts = RcjOptions::default().with_executor(Executor::Sequential);
        let _ = rcj_join(&tq, &tp, &seq_opts);
        let seq_reads = pg.borrow().stats().since(before).logical_reads;

        let before = pg.borrow().stats();
        {
            let stream = rcj_stream(&tq, &tp, &opts);
            let _: Vec<RcjPair> = stream.collect();
        } // drop absorbs worker counters
        let par_reads = pg.borrow().stats().since(before).logical_reads;
        assert_eq!(seq_reads, par_reads);
    }

    #[test]
    fn self_join_stream_equals_materialised() {
        let pg = pager();
        let tree = bulk_load(pg.clone(), items(400, 19, 1500.0));
        for threads in [1, 4] {
            let opts = RcjOptions::default().with_executor(Executor::threads(threads));
            let full = rcj_self_join(&tree, &opts);
            let streamed: Vec<RcjPair> = rcj_self_stream(&tree, &opts).collect();
            assert_eq!(streamed, full.pairs, "threads={threads}");
        }
    }

    #[test]
    fn diameter_stream_is_sorted_and_complete() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(150, 23, 800.0));
        let tq = bulk_load(pg.clone(), items(150, 29, 800.0));
        let opts = RcjOptions::default();
        let all: Vec<RcjPair> = rcj_stream_by_diameter(&tq, &tp, &opts).collect();
        for w in all.windows(2) {
            assert!(w[0].diameter() <= w[1].diameter());
        }
        let full = rcj_join(&tq, &tp, &opts);
        assert_eq!(pair_keys(&all), pair_keys(&full.pairs));
    }

    #[test]
    fn diameter_stream_prefix_matches_sorted_join() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(300, 31, 2000.0));
        let tq = bulk_load(pg.clone(), items(300, 37, 2000.0));
        let opts = RcjOptions::default();
        let mut full = rcj_join(&tq, &tp, &opts).pairs;
        sort_by_diameter(&mut full);
        let top: Vec<RcjPair> = rcj_stream_by_diameter(&tq, &tp, &opts).limit(25).collect();
        assert_eq!(top.len(), 25);
        for (s, f) in top.iter().zip(full.iter()) {
            assert_eq!(s.key(), f.key());
        }
    }

    #[test]
    fn diameter_self_stream_reports_each_pair_once() {
        let pg = pager();
        let tree = bulk_load(pg.clone(), items(200, 41, 1000.0));
        let opts = RcjOptions::default();
        let all: Vec<RcjPair> = rcj_self_stream_by_diameter(&tree, &opts).collect();
        for pr in &all {
            assert!(pr.p.id < pr.q.id);
        }
        let full = rcj_self_join(&tree, &opts);
        assert_eq!(pair_keys(&all), pair_keys(&full.pairs));
    }

    #[test]
    fn region_restricted_diameter_streams_partition_the_result() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(200, 51, 1000.0));
        let tq = bulk_load(pg.clone(), items(200, 53, 1000.0));
        let opts = RcjOptions::default();
        let all: Vec<RcjPair> = rcj_stream_by_diameter(&tq, &tp, &opts).collect();
        // Two half-open cells split at x = 500: every q belongs to
        // exactly one, so the union of the restricted streams is the
        // unrestricted stream.
        let inf = f64::INFINITY;
        let left = Rect::new(ringjoin_geom::pt(-inf, -inf), ringjoin_geom::pt(500.0, inf));
        let right = Rect::new(ringjoin_geom::pt(500.0, -inf), ringjoin_geom::pt(inf, inf));
        let mut union: Vec<RcjPair> = Vec::new();
        for cell in [left, right] {
            let part: Vec<RcjPair> = rcj_stream_by_diameter_in(&tq, &tp, cell, &opts).collect();
            for w in part.windows(2) {
                assert!(w[0].diameter() <= w[1].diameter());
            }
            for pr in &part {
                assert!(cell.contains_point_half_open(pr.q.point));
            }
            union.extend(part);
        }
        assert_eq!(pair_keys(&union), pair_keys(&all));

        // Self-join: ownership is by the larger-id endpoint (reported as
        // the pair's q side), partitioning the result the same way.
        let tree = bulk_load(pg.clone(), items(180, 57, 800.0));
        let self_all: Vec<RcjPair> = rcj_self_stream_by_diameter(&tree, &opts).collect();
        let mut self_union: Vec<RcjPair> = Vec::new();
        for cell in [left, right] {
            let part: Vec<RcjPair> = rcj_self_stream_by_diameter_in(&tree, cell, &opts).collect();
            for pr in &part {
                assert!(pr.p.id < pr.q.id);
                assert!(cell.contains_point_half_open(pr.q.point));
            }
            self_union.extend(part);
        }
        assert_eq!(pair_keys(&self_union), pair_keys(&self_all));
    }

    #[test]
    fn limit_stops_reading_pages() {
        let pg = pager();
        let tp = bulk_load(pg.clone(), items(600, 43, 4000.0));
        let tq = bulk_load(pg.clone(), items(600, 47, 4000.0));
        let opts = RcjOptions::default();

        let before = pg.borrow().stats();
        let top: Vec<RcjPair> = rcj_stream_by_diameter(&tq, &tp, &opts).limit(5).collect();
        let topk_reads = pg.borrow().stats().since(before).logical_reads;
        assert_eq!(top.len(), 5);

        let before = pg.borrow().stats();
        let full = rcj_join(
            &tq,
            &tp,
            &RcjOptions::default().with_executor(Executor::Sequential),
        );
        let full_reads = pg.borrow().stats().since(before).logical_reads;
        assert!(full.pairs.len() > 5);
        assert!(
            topk_reads < full_reads,
            "top-5 stream read {topk_reads} pages, full join {full_reads}"
        );
    }
}
