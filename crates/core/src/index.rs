//! The index abstraction the join drivers are generic over.
//!
//! Section 3 of the paper notes the RCJ methodology "is directly
//! applicable to other hierarchical spatial indexes". Making that claim
//! executable needs surprisingly little from an index:
//!
//! 1. a **node-expansion primitive** — decode one node into data items
//!    and child references, each child carrying a region that bounds its
//!    subtree's points. The filter's Lemma 3 pruning and the
//!    verification's disjoint-entry rule are valid for *any*
//!    subtree-bounding region (MBRs, quadrants, ...);
//! 2. the **root** to start from;
//! 3. one **capability flag**: whether regions are *minimal* (every face
//!    touches a data point, as for R-tree MBRs). The face-inside-circle
//!    verification shortcut is only sound on minimal regions — a
//!    quadtree quadrant face strictly inside a circle guarantees
//!    nothing, a porting subtlety the paper's remark glosses over.
//!
//! [`IndexProbe`] captures exactly that. It is deliberately a tiny
//! `Copy + Send + Sync + 'static` value (root page plus decode
//! parameters) with **no** interior page access of its own: every read
//! goes through the [`PageAccess`] argument, which is how the same
//! driver code runs sequentially over the owning [`SharedPager`] and in
//! parallel over per-worker
//! [`PooledPager`](ringjoin_storage::PooledPager)s. [`RcjIndex`] ties a
//! probe to the tree that owns the pages, and additionally describes the
//! dataset ([`RcjIndex::summary`]) so the
//! [`planner`](crate::planner) can cost queries without touching pages.
//!
//! Both built-in indexes implement the traits here: the R*-tree
//! ([`RTreeProbe`]) and the bucket PR quadtree ([`QuadTreeProbe`]).

use crate::planner::DatasetSummary;
use ringjoin_geom::{Item, Point, Rect};
use ringjoin_quadtree::{quadrant, quadtree_decode, QNode, QuadTree};
use ringjoin_rtree::{NodeCodec, NodeEntry, RTree};
use ringjoin_storage::{read_page_as, PageAccess, PageId, SharedPager};

/// A reference to an index node: its page plus a region bounding every
/// point in its subtree (an MBR for R-trees, a quadrant region for
/// quadtrees).
#[derive(Clone, Copy, Debug)]
pub struct NodeRef {
    /// Page holding the node.
    pub page: PageId,
    /// Region bounding the subtree's points.
    pub region: Rect,
}

/// One entry obtained by expanding a node.
#[derive(Clone, Copy, Debug)]
pub enum IndexEntry {
    /// A data record stored in the node.
    Item(Item),
    /// A child (or overflow-continuation) node.
    Node(NodeRef),
}

/// A compact, thread-shareable traversal handle for one spatial index.
///
/// All INJ/BIJ/OBJ driver logic — leaf enumeration, the incremental-NN
/// filter, circle verification — is written once against this trait; see
/// the crate's [`filter`](crate::filter_with), [`verify`](crate::verify_with)
/// and [`rcj_join`](crate::rcj_join). The `'static` bound keeps probes
/// storable inside long-lived values such as [`RcjStream`](crate::RcjStream);
/// a probe is a value (codec parameters plus a root page), never a
/// borrow of its tree.
pub trait IndexProbe: Copy + Send + Sync + 'static {
    /// The root node. Its region may be conservative (the R-tree uses
    /// the whole plane rather than reading the root's MBR); drivers
    /// never apply pruning tests to the root region itself.
    fn root(&self) -> NodeRef;

    /// `true` if subtree regions are minimal, i.e. every region face
    /// touches a data point. Gates the face-inside-circle verification
    /// rule.
    fn minimal_regions(&self) -> bool;

    /// Decodes the node at `node` through `pg` and appends its entries
    /// to `out` in storage order. Child regions must bound the child's
    /// subtree; overflow continuations reuse the node's own region.
    fn expand(&self, pg: &mut dyn PageAccess, node: NodeRef, out: &mut Vec<IndexEntry>);
}

/// An index the RCJ drivers can run over.
pub trait RcjIndex {
    /// The thread-shareable traversal handle.
    type Probe: IndexProbe;

    /// Creates a probe for this tree.
    fn probe(&self) -> Self::Probe;

    /// The pager owning this tree's pages: the sequential access path,
    /// and the source of the snapshot the parallel executor hands to its
    /// workers.
    fn pager(&self) -> SharedPager;

    /// Catalog-style description of the indexed dataset (cardinality,
    /// page counts, index kind) — the input of the
    /// [`planner`](crate::planner)'s cost model. Must be O(1): summaries
    /// are consulted at plan time, before any page is read.
    fn summary(&self) -> DatasetSummary;
}

/// [`IndexProbe`] of the R*-tree: the node codec plus the root page.
#[derive(Clone, Copy, Debug)]
pub struct RTreeProbe {
    codec: NodeCodec,
    root: PageId,
}

impl IndexProbe for RTreeProbe {
    fn root(&self) -> NodeRef {
        // The root's MBR is unknown without a read, and pruning the root
        // would be pointless anyway: bound it by the whole plane.
        NodeRef {
            page: self.root,
            region: Rect::new(
                Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                Point::new(f64::INFINITY, f64::INFINITY),
            ),
        }
    }

    fn minimal_regions(&self) -> bool {
        true
    }

    fn expand(&self, pg: &mut dyn PageAccess, node: NodeRef, out: &mut Vec<IndexEntry>) {
        let decoded = read_page_as(pg, node.page, |bytes| self.codec.decode(bytes));
        for e in &decoded.entries {
            match e {
                NodeEntry::Item(it) => out.push(IndexEntry::Item(*it)),
                NodeEntry::Child { mbr, page } => out.push(IndexEntry::Node(NodeRef {
                    page: *page,
                    region: *mbr,
                })),
            }
        }
    }
}

impl RcjIndex for RTree {
    type Probe = RTreeProbe;

    fn probe(&self) -> RTreeProbe {
        RTreeProbe {
            codec: self.codec(),
            root: self.root_page(),
        }
    }

    fn pager(&self) -> SharedPager {
        self.pager()
    }

    fn summary(&self) -> DatasetSummary {
        DatasetSummary::new(
            "rtree",
            self.len(),
            self.node_pages(),
            self.codec().leaf_capacity as u64,
        )
    }
}

/// [`IndexProbe`] of the bucket PR quadtree: the root page plus the
/// covered region (quadrant regions are derived, not stored).
///
/// There is no quadtree-specific join code: INJ, BIJ and OBJ run through
/// the shared generic drivers, and all this probe contributes is node
/// expansion over quadrant regions (Lemma 3's pruning test applies to
/// *any* region that bounds the subtree's points), with overflow-chain
/// pages surfacing as continuation nodes.
///
/// One capability does **not** transfer, and the probe says so: the
/// verification step's face-inside-circle rule relies on region
/// *minimality* — every face of an R-tree MBR touches a data point —
/// and quadrant regions are fixed-space partitions with no such
/// guarantee. [`IndexProbe::minimal_regions`] therefore answers `false`
/// here, and the generic verification falls back to the point-inside and
/// region-intersects rules alone — a porting subtlety the paper's
/// Section 3 remark glosses over.
#[derive(Clone, Copy, Debug)]
pub struct QuadTreeProbe {
    root: PageId,
    region: Rect,
}

impl IndexProbe for QuadTreeProbe {
    fn root(&self) -> NodeRef {
        NodeRef {
            page: self.root,
            region: self.region,
        }
    }

    fn minimal_regions(&self) -> bool {
        // Quadrants partition space, not data: a face strictly inside a
        // circle guarantees no point inside, so the face rule is unsound.
        false
    }

    fn expand(&self, pg: &mut dyn PageAccess, node: NodeRef, out: &mut Vec<IndexEntry>) {
        match read_page_as(pg, node.page, quadtree_decode) {
            QNode::Leaf { items, next } => {
                out.extend(items.into_iter().map(IndexEntry::Item));
                if !next.is_invalid() {
                    // Overflow chains bound the same quadrant region.
                    out.push(IndexEntry::Node(NodeRef {
                        page: next,
                        region: node.region,
                    }));
                }
            }
            QNode::Internal { children } => {
                for (qi, child) in children.iter().enumerate() {
                    if !child.is_invalid() {
                        out.push(IndexEntry::Node(NodeRef {
                            page: *child,
                            region: quadrant(node.region, qi),
                        }));
                    }
                }
            }
        }
    }
}

impl RcjIndex for QuadTree {
    type Probe = QuadTreeProbe;

    fn probe(&self) -> QuadTreeProbe {
        QuadTreeProbe {
            root: self.root_page(),
            region: self.region(),
        }
    }

    fn pager(&self) -> SharedPager {
        self.pager()
    }

    fn summary(&self) -> DatasetSummary {
        DatasetSummary::new(
            "quadtree",
            self.len(),
            self.node_pages(),
            self.leaf_capacity() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pair_keys, rcj_join, RcjAlgorithm, RcjOptions};
    use ringjoin_geom::{pt, Circle};
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager};

    #[test]
    fn rtree_probe_expands_every_item_exactly_once() {
        let pager = Pager::new(MemDisk::new(256), 64).into_shared();
        let items: Vec<Item> = (0..300)
            .map(|i| Item::new(i, pt((i % 17) as f64, (i % 23) as f64)))
            .collect();
        let tree = bulk_load(pager.clone(), items);
        let probe = tree.probe();
        assert!(probe.minimal_regions());

        // Exhaustive DF walk through the trait only.
        let mut pg = RcjIndex::pager(&tree);
        let mut stack = vec![probe.root()];
        let mut seen = Vec::new();
        while let Some(node) = stack.pop() {
            let mut entries = Vec::new();
            probe.expand(&mut pg, node, &mut entries);
            for e in entries {
                match e {
                    IndexEntry::Item(it) => seen.push(it.id),
                    IndexEntry::Node(child) => {
                        // Child regions bound their subtrees (spot check:
                        // the region is inside the parent's).
                        assert!(node.region.contains_point(child.region.min));
                        assert!(node.region.contains_point(child.region.max));
                        stack.push(child);
                    }
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
    }

    #[test]
    fn summaries_describe_the_trees() {
        let pager = Pager::new(MemDisk::new(512), 64).into_shared();
        let items: Vec<Item> = (0..500)
            .map(|i| Item::new(i, pt((i % 31) as f64 * 3.0, (i % 29) as f64 * 5.0)))
            .collect();
        let rt = bulk_load(pager.clone(), items.clone());
        let s = rt.summary();
        assert_eq!(s.kind, "rtree");
        assert_eq!(s.items, 500);
        assert_eq!(s.pages, rt.node_pages());
        assert!(s.leaf_pages >= 1 && s.leaf_pages <= s.pages);

        let region = Rect::new(pt(0.0, 0.0), pt(100.0, 150.0));
        let mut qt = QuadTree::new(pager, region);
        for it in &items {
            qt.insert(it.id, it.point);
        }
        let s = qt.summary();
        assert_eq!(s.kind, "quadtree");
        assert_eq!(s.items, 500);
        assert_eq!(s.pages, qt.node_pages());
        assert!(s.leaf_pages >= 1);
    }

    // --- Quadtree probe behaviour (moved here with the probe itself when
    // the dependency edge flipped: core now owns both built-in probes).

    fn lcg(n: usize, seed: u64) -> Vec<(f64, f64)> {
        ringjoin_testsupport::lcg_points(n, seed, 1000.0)
    }

    fn build_quad(points: &[(f64, f64)]) -> QuadTree {
        let pager = Pager::new(MemDisk::new(256), 64).into_shared();
        let mut t = QuadTree::new(pager, Rect::new(pt(0.0, 0.0), pt(1000.0, 1000.0)));
        for (i, &(x, y)) in points.iter().enumerate() {
            t.insert(i as u64, pt(x, y));
        }
        t
    }

    fn brute(ps: &[(f64, f64)], qs: &[(f64, f64)]) -> Vec<(u64, u64)> {
        let inside = |x: (f64, f64), a: (f64, f64), b: (f64, f64)| {
            Circle::strictly_contains_diameter(pt(x.0, x.1), pt(a.0, a.1), pt(b.0, b.1))
        };
        let mut keys = Vec::new();
        for (i, &p) in ps.iter().enumerate() {
            for (j, &q) in qs.iter().enumerate() {
                let blocked =
                    ps.iter().any(|&x| inside(x, p, q)) || qs.iter().any(|&x| inside(x, p, q));
                if !blocked {
                    keys.push((i as u64, j as u64));
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    #[test]
    fn all_generic_algorithms_match_brute_force_on_quadtrees() {
        let ps = lcg(150, 5);
        let qs = lcg(150, 9);
        let tp = build_quad(&ps);
        let tq = build_quad(&qs);
        let expect = brute(&ps, &qs);
        assert!(!expect.is_empty());
        for algo in [RcjAlgorithm::Inj, RcjAlgorithm::Bij, RcjAlgorithm::Obj] {
            let out = rcj_join(&tq, &tp, &RcjOptions::algorithm(algo));
            assert_eq!(
                pair_keys(&out.pairs),
                expect,
                "{} over quadtrees disagrees with brute force",
                algo.name()
            );
        }
    }

    #[test]
    fn quadtree_rcj_on_clustered_data() {
        // Two tight clusters: cross-cluster pairs are mostly blocked.
        let mut ps = Vec::new();
        let mut qs = Vec::new();
        for i in 0..60 {
            let o = (i % 8) as f64;
            ps.push((100.0 + o, 100.0 + (i / 8) as f64));
            qs.push((105.0 + o, 103.0 + (i / 8) as f64));
        }
        let tp = build_quad(&ps);
        let tq = build_quad(&qs);
        let out = rcj_join(&tq, &tp, &RcjOptions::default());
        assert_eq!(pair_keys(&out.pairs), brute(&ps, &qs));
    }

    #[test]
    fn duplicate_flood_joins_through_overflow_chains() {
        // 300 co-located points chain past MAX_DEPTH; the probe must
        // surface chain pages as continuation nodes, or the join would
        // silently lose most of the data.
        let pager = Pager::new(MemDisk::new(256), 64).into_shared();
        let region = Rect::new(pt(0.0, 0.0), pt(100.0, 100.0));
        let mut tq = QuadTree::new(pager.clone(), region);
        for i in 0..300u64 {
            tq.insert(i, pt(50.0, 50.0));
        }
        let mut tp = QuadTree::new(pager, region);
        tp.insert(0, pt(10.0, 10.0));
        // The co-located q's sit exactly ON each other's circles (never
        // strictly inside), so every one of the 300 pairs qualifies.
        let out = rcj_join(&tq, &tp, &RcjOptions::default());
        assert_eq!(out.pairs.len(), 300);
    }
}
