//! The index abstraction the join drivers are generic over.
//!
//! Section 3 of the paper notes the RCJ methodology "is directly
//! applicable to other hierarchical spatial indexes". Making that claim
//! executable needs surprisingly little from an index:
//!
//! 1. a **node-expansion primitive** — decode one node into data items
//!    and child references, each child carrying a region that bounds its
//!    subtree's points. The filter's Lemma 3 pruning and the
//!    verification's disjoint-entry rule are valid for *any*
//!    subtree-bounding region (MBRs, quadrants, ...);
//! 2. the **root** to start from;
//! 3. one **capability flag**: whether regions are *minimal* (every face
//!    touches a data point, as for R-tree MBRs). The face-inside-circle
//!    verification shortcut is only sound on minimal regions — a
//!    quadtree quadrant face strictly inside a circle guarantees
//!    nothing, a porting subtlety the paper's remark glosses over.
//!
//! [`IndexProbe`] captures exactly that. It is deliberately a tiny
//! `Copy + Send + Sync` value (root page plus decode parameters) with
//! **no** interior page access of its own: every read goes through the
//! [`PageAccess`] argument, which is how the same driver code runs
//! sequentially over the owning [`SharedPager`] and in parallel over
//! per-worker [`WorkerPager`](ringjoin_storage::WorkerPager)s.
//! [`RcjIndex`] ties a probe to the tree that owns the pages.

use ringjoin_geom::{Item, Point, Rect};
use ringjoin_rtree::{NodeCodec, NodeEntry, RTree};
use ringjoin_storage::{read_page_as, PageAccess, PageId, SharedPager};

/// A reference to an index node: its page plus a region bounding every
/// point in its subtree (an MBR for R-trees, a quadrant region for
/// quadtrees).
#[derive(Clone, Copy, Debug)]
pub struct NodeRef {
    /// Page holding the node.
    pub page: PageId,
    /// Region bounding the subtree's points.
    pub region: Rect,
}

/// One entry obtained by expanding a node.
#[derive(Clone, Copy, Debug)]
pub enum IndexEntry {
    /// A data record stored in the node.
    Item(Item),
    /// A child (or overflow-continuation) node.
    Node(NodeRef),
}

/// A compact, thread-shareable traversal handle for one spatial index.
///
/// All INJ/BIJ/OBJ driver logic — leaf enumeration, the incremental-NN
/// filter, circle verification — is written once against this trait; see
/// the crate's [`filter`](crate::filter_with), [`verify`](crate::verify_with)
/// and [`rcj_join`](crate::rcj_join).
pub trait IndexProbe: Copy + Send + Sync {
    /// The root node. Its region may be conservative (the R-tree uses
    /// the whole plane rather than reading the root's MBR); drivers
    /// never apply pruning tests to the root region itself.
    fn root(&self) -> NodeRef;

    /// `true` if subtree regions are minimal, i.e. every region face
    /// touches a data point. Gates the face-inside-circle verification
    /// rule.
    fn minimal_regions(&self) -> bool;

    /// Decodes the node at `node` through `pg` and appends its entries
    /// to `out` in storage order. Child regions must bound the child's
    /// subtree; overflow continuations reuse the node's own region.
    fn expand(&self, pg: &mut dyn PageAccess, node: NodeRef, out: &mut Vec<IndexEntry>);
}

/// An index the RCJ drivers can run over.
pub trait RcjIndex {
    /// The thread-shareable traversal handle.
    type Probe: IndexProbe;

    /// Creates a probe for this tree.
    fn probe(&self) -> Self::Probe;

    /// The pager owning this tree's pages: the sequential access path,
    /// and the source of the snapshot the parallel executor hands to its
    /// workers.
    fn pager(&self) -> SharedPager;
}

/// [`IndexProbe`] of the R*-tree: the node codec plus the root page.
#[derive(Clone, Copy, Debug)]
pub struct RTreeProbe {
    codec: NodeCodec,
    root: PageId,
}

impl IndexProbe for RTreeProbe {
    fn root(&self) -> NodeRef {
        // The root's MBR is unknown without a read, and pruning the root
        // would be pointless anyway: bound it by the whole plane.
        NodeRef {
            page: self.root,
            region: Rect::new(
                Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                Point::new(f64::INFINITY, f64::INFINITY),
            ),
        }
    }

    fn minimal_regions(&self) -> bool {
        true
    }

    fn expand(&self, pg: &mut dyn PageAccess, node: NodeRef, out: &mut Vec<IndexEntry>) {
        let decoded = read_page_as(pg, node.page, |bytes| self.codec.decode(bytes));
        for e in &decoded.entries {
            match e {
                NodeEntry::Item(it) => out.push(IndexEntry::Item(*it)),
                NodeEntry::Child { mbr, page } => out.push(IndexEntry::Node(NodeRef {
                    page: *page,
                    region: *mbr,
                })),
            }
        }
    }
}

impl RcjIndex for RTree {
    type Probe = RTreeProbe;

    fn probe(&self) -> RTreeProbe {
        RTreeProbe {
            codec: self.codec(),
            root: self.root_page(),
        }
    }

    fn pager(&self) -> SharedPager {
        self.pager()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringjoin_geom::pt;
    use ringjoin_rtree::bulk_load;
    use ringjoin_storage::{MemDisk, Pager};

    #[test]
    fn rtree_probe_expands_every_item_exactly_once() {
        let pager = Pager::new(MemDisk::new(256), 64).into_shared();
        let items: Vec<Item> = (0..300)
            .map(|i| Item::new(i, pt((i % 17) as f64, (i % 23) as f64)))
            .collect();
        let tree = bulk_load(pager.clone(), items);
        let probe = tree.probe();
        assert!(probe.minimal_regions());

        // Exhaustive DF walk through the trait only.
        let mut pg = tree.pager();
        let mut stack = vec![probe.root()];
        let mut seen = Vec::new();
        while let Some(node) = stack.pop() {
            let mut entries = Vec::new();
            probe.expand(&mut pg, node, &mut entries);
            for e in entries {
                match e {
                    IndexEntry::Item(it) => seen.push(it.id),
                    IndexEntry::Node(child) => {
                        // Child regions bound their subtrees (spot check:
                        // the region is inside the parent's).
                        assert!(node.region.contains_point(child.region.min));
                        assert!(node.region.contains_point(child.region.max));
                        stack.push(child);
                    }
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..300u64).collect::<Vec<_>>());
    }
}
